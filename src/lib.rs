//! # ec2-workflow-sim
//!
//! A from-scratch Rust reproduction of *Data Sharing Options for Scientific
//! Workflows on Amazon EC2* (Juve, Deelman, Vahi, Mehta, Berriman, Berman,
//! Maechling — SC 2010).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`simcore`] — deterministic discrete-event kernel with max–min fair
//!   fluid-flow I/O resources.
//! * [`vcluster`] — EC2-like virtual cluster: instance types, ephemeral
//!   disks with the first-write penalty, RAID 0, NICs.
//! * [`wfdag`] — scientific workflow DAG model (tasks, files, dependencies).
//! * [`wfstorage`] — the five storage options of the paper plus XtreemFS:
//!   local disk, NFS, GlusterFS (NUFA / distribute), PVFS, Amazon S3.
//! * [`wfengine`] — Pegasus/DAGMan/Condor-like workflow management system.
//! * [`wfgen`] — synthetic Montage / Broadband / Epigenome generators and a
//!   wfprof-style profiler.
//! * [`wfcost`] — 2010 Amazon billing model (per-hour vs per-second).
//! * [`expt`] — the experiment harness that regenerates every table and
//!   figure of the paper.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology.

#![warn(missing_docs)]

pub use expt;
pub use simcore;
pub use vcluster;
pub use wfcost;
pub use wfdag;
pub use wfengine;
pub use wfgen;
pub use wfstorage;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use expt::{Cell, CellResult};
    pub use simcore::{Sim, SimDuration, SimTime};
    pub use vcluster::{Cluster, ClusterSpec, InstanceType};
    pub use wfcost::{BillingGranularity, CostModel};
    pub use wfdag::Workflow;
    pub use wfengine::{RunConfig, RunStats, SchedulerPolicy};
    pub use wfgen::{broadband, epigenome, montage};
    pub use wfstorage::StorageKind;
}
