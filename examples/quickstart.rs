//! Quickstart: build a small workflow, run it on a 2-node virtual cluster
//! with GlusterFS, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfdag::WorkflowBuilder;
use ec2_workflow_sim::wfengine::run_workflow;

fn main() {
    // A classic diamond workflow: split -> two parallel analyses -> join.
    // Files carry the data; edges are derived from producer/consumer
    // relationships (the paper's model of workflow data sharing, §I).
    let mut b = WorkflowBuilder::new("diamond");
    let raw = b.file("raw.dat", 200_000_000); // 200 MB input
    let left = b.file("left.dat", 80_000_000);
    let right = b.file("right.dat", 80_000_000);
    let l_out = b.file("left.out", 10_000_000);
    let r_out = b.file("right.out", 10_000_000);
    let summary = b.file("summary.txt", 1_000_000);

    b.task(
        "split",
        "splitter",
        5.0,
        512 << 20,
        vec![raw],
        vec![left, right],
    );
    b.task(
        "analyze_l",
        "analyzer",
        30.0,
        1 << 30,
        vec![left],
        vec![l_out],
    );
    b.task(
        "analyze_r",
        "analyzer",
        30.0,
        1 << 30,
        vec![right],
        vec![r_out],
    );
    b.task(
        "join",
        "joiner",
        8.0,
        512 << 20,
        vec![l_out, r_out],
        vec![summary],
    );
    let wf = b.build().expect("valid DAG");

    println!(
        "workflow: {} tasks, {} files, critical path {:.0}s of compute",
        wf.task_count(),
        wf.file_count(),
        ec2_workflow_sim::wfdag::critical_path_secs(&wf),
    );

    // Run it on two c1.xlarge workers sharing data through GlusterFS in
    // NUFA mode — the paper's all-round best performer.
    let cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
    let stats = run_workflow(wf, cfg).expect("run completes");

    println!(
        "makespan: {:.1}s over {} tasks",
        stats.makespan_secs, stats.tasks
    );
    println!(
        "I/O fraction: {:.1}% ({:.1}s I/O vs {:.1}s compute across slots)",
        stats.io_fraction() * 100.0,
        stats.total_io_secs,
        stats.total_cpu_secs
    );

    // What did it cost? Amazon billed by the hour in 2010, rounding up.
    let model = CostModel::default();
    let usage = ec2_workflow_sim::wfcost::UsageReport {
        wall_secs: stats.makespan_secs,
        instances: vec![(InstanceType::C1Xlarge, 2)],
        s3_puts: 0,
        s3_gets: 0,
        s3_peak_bytes: 0,
    };
    for g in BillingGranularity::BOTH {
        let cost = model.workflow_cost(&usage, g);
        println!("cost ({g:?}): ${:.3}", cost.total_dollars());
    }
}
