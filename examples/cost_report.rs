//! Figs 5–7: the cost of every (application, storage, cluster-size) cell
//! under Amazon's 2010 per-hour billing and hypothetical per-second
//! billing.
//!
//! ```text
//! cargo run --release --example cost_report
//! ```

use ec2_workflow_sim::expt::{cost_figure, render, runtime_figure};
use ec2_workflow_sim::wfgen::App;

fn main() {
    for (app, number) in [
        (App::Montage, 5u32),
        (App::Epigenome, 6),
        (App::Broadband, 7),
    ] {
        let fig = runtime_figure(app, 42);
        let cf = cost_figure(&fig);
        print!("{}", render::cost_figure(&cf, number));

        // The paper's takeaway (§VI): cost follows performance, per-second
        // billing is always cheaper, and the cheapest plan uses few nodes.
        let cheapest = cf
            .rows
            .iter()
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .expect("rows");
        println!(
            "  cheapest {} configuration: {} on {} node(s) at ${:.2}/run\n",
            app.label(),
            cheapest.0.label(),
            cheapest.1,
            cheapest.2
        );
    }
}
