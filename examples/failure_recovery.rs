//! Failure injection and DAGMan-style retries: what transient task
//! failures cost a Broadband run, and when the retry budget gives out.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfengine::{run_workflow, FailureModel, RunError};
use ec2_workflow_sim::wfgen::App;

fn main() {
    println!("Broadband (tiny instance) on GlusterFS(NUFA) @ 2 nodes\n");
    println!(
        "{:<22} {:>10} {:>9} {:>10}",
        "failure probability", "makespan", "retries", "outcome"
    );
    for prob in [0.0, 0.05, 0.15, 0.30, 0.50] {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob,
            max_retries: 10,
        });
        match run_workflow(App::Broadband.tiny_workflow(), cfg) {
            Ok(stats) => println!(
                "{:<22} {:>9.1}s {:>9} {:>10}",
                format!("{:.0}%", prob * 100.0),
                stats.makespan_secs,
                stats.retries,
                "completed"
            ),
            Err(RunError::RetriesExhausted { task }) => println!(
                "{:<22} {:>10} {:>9} {:>10}",
                format!("{:.0}%", prob * 100.0),
                "-",
                "-",
                format!("aborted at {task}")
            ),
            Err(e) => println!("unexpected error: {e}"),
        }
    }

    // A hopeless configuration: every attempt fails.
    let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
    cfg.failures = Some(FailureModel {
        prob: 1.0,
        max_retries: 2,
    });
    let err = run_workflow(App::Broadband.tiny_workflow(), cfg).unwrap_err();
    println!("\nwith p=100% the run aborts as expected: {err}");
}
