//! §III.C: the EC2 ephemeral-disk first-write penalty, measured
//! end-to-end on the simulated devices, plus the initialization trade-off
//! the paper analyses (zero-filling 50 GB takes ~42 minutes — almost as
//! long as running Montage itself).
//!
//! ```text
//! cargo run --release --example disk_microbench
//! ```

use ec2_workflow_sim::expt::{microbench, render};
use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfengine::run_workflow;
use ec2_workflow_sim::wfgen::App;

fn main() {
    let bench = microbench::run();
    print!("{}", render::microbench(&bench));

    // The paper's economic argument: initializing ephemeral storage IS a
    // first write, so it runs at the penalised rate. 50 GB at the
    // single-disk 20 MB/s is the paper's "~42 minutes"; even at the RAID
    // array's aggregate first-write rate it takes ~10 minutes.
    let one = bench.rows.iter().find(|r| r.disks == 1).expect("disk row");
    let raid = bench.rows.iter().find(|r| r.disks == 4).expect("raid row");
    let single_init = 50_000.0 / one.first_write_mbps;
    let raid_init = 50_000.0 / raid.first_write_mbps;
    println!(
        "\nzero-filling 50 GB: {:.0} min at the single-disk first-write rate (paper: ~42 min), {:.0} min across the RAID array",
        single_init / 60.0,
        raid_init / 60.0
    );

    // Ablation A1: what the penalty costs Montage on a single node.
    let stock = run_workflow(
        App::Montage.paper_workflow(),
        RunConfig::cell(StorageKind::Local, 1),
    )
    .expect("stock run");
    let mut cfg = RunConfig::cell(StorageKind::Local, 1);
    cfg.initialize_disks = true;
    let inited = run_workflow(App::Montage.paper_workflow(), cfg).expect("initialized run");
    println!(
        "Montage Local@1: {:.0}s stock vs {:.0}s with initialized disks ({:+.1}%)",
        stock.makespan_secs,
        inited.makespan_secs,
        (inited.makespan_secs / stock.makespan_secs - 1.0) * 100.0
    );
    println!(
        "initialization ({:.0} min) vs saving ({:.0} min): {}",
        raid_init / 60.0,
        (stock.makespan_secs - inited.makespan_secs) / 60.0,
        if raid_init > stock.makespan_secs - inited.makespan_secs {
            "not worth it for a single run — the paper's conclusion (§III.C)"
        } else {
            "worth it"
        }
    );
}
