//! How much does the S3 whole-file client cache buy for Broadband?
//!
//! §IV.A of the paper describes the cache the authors added to the
//! workflow management system ("each file is transferred from S3 to a
//! given node only once"), and §V.C credits it for S3's Broadband win.
//! This example replays that comparison and also tries the data-aware
//! scheduler the paper suggests as future work.
//!
//! ```text
//! cargo run --release --example broadband_cache
//! ```

use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfengine::run_workflow;
use ec2_workflow_sim::wfgen::App;
use ec2_workflow_sim::wfstorage::{S3Config, StorageConfigs};

fn run(label: &str, cfg: RunConfig) {
    let stats = run_workflow(App::Broadband.paper_workflow(), cfg).expect("run");
    let (hits, misses) = (stats.op_stats.cache_hits, stats.op_stats.cache_misses);
    println!(
        "{label:<38} {:>8.0}s   GETs {:>6}  PUTs {:>6}  cache {hits}/{}",
        stats.makespan_secs,
        stats.billing.s3_gets,
        stats.billing.s3_puts,
        hits + misses,
    );
}

fn main() {
    println!("Broadband (768 tasks, 6 GB of heavily reused input) on S3, 4 workers\n");

    run(
        "with client cache (paper setup)",
        RunConfig::cell(StorageKind::S3, 4),
    );

    let mut no_cache = RunConfig::cell(StorageKind::S3, 4);
    no_cache.storage_cfgs = StorageConfigs {
        s3: Some(S3Config {
            client_cache: false,
            ..S3Config::default()
        }),
        ..StorageConfigs::default()
    };
    run("without client cache (ablation A2)", no_cache);

    let mut aware = RunConfig::cell(StorageKind::S3, 4);
    aware.scheduler = SchedulerPolicy::DataAware;
    run("cache + data-aware scheduler (A3)", aware);

    println!(
        "\nThe cache suppresses repeat GETs of the shared velocity/site files;\n\
         the data-aware scheduler (the paper's suggested improvement, §IV.A)\n\
         raises the hit rate further by placing jobs near their cached inputs."
    );
}
