//! A storage-system shootout on a custom workload: use the library the
//! way a downstream user evaluating cloud storage for their own workflow
//! would — build a synthetic DAG shaped like *your* application and sweep
//! the data-sharing options over it.
//!
//! The example models a "many small intermediate files" pipeline (the
//! regime where the paper found GlusterFS strong and S3/PVFS weak) and a
//! "few large reused inputs" pipeline (the regime where S3's client cache
//! wins), and prints both sweeps.
//!
//! ```text
//! cargo run --release --example storage_shootout
//! ```

use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfdag::Workflow;
use ec2_workflow_sim::wfengine::run_workflow;
use ec2_workflow_sim::wfgen::{synthetic, Shape, SyntheticConfig};

/// Fan-out/fan-in over many ~1 MB files (Montage's regime), built with
/// the library's parameterised synthetic generator.
fn small_file_pipeline(width: u32) -> Workflow {
    synthetic(SyntheticConfig {
        shape: Shape::FanOutFanIn,
        width,
        depth: 2,
        cpu_secs: 1.0,
        file_bytes: 1_200_000,
        peak_mem: 256 << 20,
        io_ops: 12,
        seed: 42,
    })
}

/// Deep pipelines re-reading large files (Broadband's regime).
fn big_reuse_pipeline(width: u32) -> Workflow {
    synthetic(SyntheticConfig {
        shape: Shape::Pipelines,
        width,
        depth: 4,
        cpu_secs: 25.0,
        file_bytes: 250_000_000,
        peak_mem: 2 << 30,
        io_ops: 1500,
        seed: 42,
    })
}

fn sweep(label: &str, make: impl Fn() -> Workflow) {
    println!("== {label} ==");
    println!("{:<24} {:>10}", "storage", "makespan");
    for storage in StorageKind::EVALUATED {
        let workers = if storage == StorageKind::Local { 1 } else { 4 };
        let min_ok = !matches!(
            storage,
            StorageKind::GlusterNufa | StorageKind::GlusterDistribute | StorageKind::Pvfs
        ) || workers >= 2;
        if !min_ok {
            continue;
        }
        let stats = run_workflow(make(), RunConfig::cell(storage, workers)).expect("run");
        println!(
            "{:<24} {:>9.1}s   (n={workers})",
            storage.label(),
            stats.makespan_secs
        );
    }
    println!();
}

fn main() {
    sweep("many small intermediates (Montage-like)", || {
        small_file_pipeline(300)
    });
    sweep(
        "large reused files in deep pipelines (Broadband-like)",
        || big_reuse_pipeline(24),
    );
    println!(
        "Same crossovers as the paper: on the many-small-files workload S3 and\n\
         PVFS trail badly (request/metadata overhead per file) while the POSIX\n\
         systems lead; on the heavy-I/O pipelines the central NFS server\n\
         collapses and the distributed options (NUFA, S3, PVFS) pull ahead."
    );
}
