//! Fig-2-style sweep: the paper-scale Montage workflow (10,429 tasks)
//! across every storage option and cluster size.
//!
//! ```text
//! cargo run --release --example montage_sweep [-- tiny]
//! ```
//!
//! Pass `tiny` to sweep a small same-shape instance instead (fast).

use ec2_workflow_sim::expt::Cell;
use ec2_workflow_sim::prelude::*;
use ec2_workflow_sim::wfengine::run_workflow;
use ec2_workflow_sim::wfgen::montage::{montage, MontageConfig};
use ec2_workflow_sim::wfgen::App;

fn main() {
    let tiny = std::env::args().any(|a| a == "tiny");

    if tiny {
        // Small instance: run each cell inline to show the raw API.
        let node_counts = [1u32, 2, 4, 8];
        println!("{:<24} {:>6} {:>10}", "storage", "nodes", "makespan");
        for storage in StorageKind::EVALUATED {
            for n in node_counts {
                if !Cell::new(App::Montage, storage, n).is_valid() {
                    continue;
                }
                let wf = montage(MontageConfig::tiny());
                let stats = run_workflow(wf, RunConfig::cell(storage, n)).expect("run");
                println!(
                    "{:<24} {:>6} {:>9.1}s",
                    storage.label(),
                    n,
                    stats.makespan_secs
                );
            }
        }
        return;
    }

    // Paper scale: use the harness (cells run in parallel).
    let fig = ec2_workflow_sim::expt::runtime_figure(App::Montage, 42);
    println!(
        "{}",
        ec2_workflow_sim::expt::render::runtime_figure(&fig, 2)
    );
    // Highlight the paper's headline Montage findings.
    let g2 = fig.makespan(StorageKind::GlusterNufa, 2).unwrap();
    let s2 = fig.makespan(StorageKind::S3, 2).unwrap();
    println!(
        "GlusterFS(NUFA)@2 is {:.1}x faster than S3@2 — the paper's small-file story.",
        s2 / g2
    );
}
