#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests) plus lint gates.
#
#   scripts/verify.sh          # everything below
#   scripts/verify.sh --quick  # tier-1 only
#
# Tier-1 (ROADMAP.md): cargo build --release && cargo test -q
# Oracle tests:        cargo test -q -p simcore --features oracle (the
#                      differential suite against the reference solver)
# Lint gates:          cargo clippy --workspace --all-targets -- -D warnings
#                      cargo fmt --check
#                      no #[ignore] without a reason string
# Perf smoke:          repro --bench-smoke (writes BENCH.json; asserts the
#                      incremental and reference flow engines agree, and
#                      that the disabled-bus kernel path stays within 5%
#                      of the committed baseline)
# Golden digest:       repro --golden-digest (the fixed tiny workflow must
#                      reproduce tests/golden_digest.txt bit for bit)
# Golden OTLP:         repro --golden-otlp (the fixed run must re-export
#                      tests/golden_otlp.json byte for byte)
# OTLP conformance:    the wfengine/expt otlp test targets (well-formedness
#                      proptests, edge cases, phase/cost parity), plus
#                      wfobs standing alone without default features
# Live TUI:            golden-frame + live-determinism test targets, the
#                      frame-geometry proptest, and `wfsim run --live`
#                      under TERM=dumb (must fall back to plain `live:`
#                      lines with zero ANSI escape bytes on stderr)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q --workspace

echo "== oracle: simcore differential suite =="
# The root crate has no `oracle` feature, so target the crate directly.
cargo test -q -p simcore --features oracle

echo "== lint: ignored tests must say why =="
# `#[ignore]` without `= "reason"` hides a test with no paper trail.
if grep -rn --include='*.rs' -E '#\[ignore\]' crates src tests shims; then
    echo "error: found #[ignore] without a reason string (use #[ignore = \"why\"])" >&2
    exit 1
fi

if [[ "${1:-}" == "--quick" ]]; then
    echo "verify (quick): OK"
    exit 0
fi

echo "== lint: clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== lint: rustfmt =="
cargo fmt --check

echo "== golden digest =="
cargo run --release -q -p expt --bin repro -- --golden-digest

echo "== golden OTLP =="
cargo run --release -q -p expt --bin repro -- --golden-otlp

echo "== otlp conformance =="
cargo test -q -p wfengine --test prop_otlp --test otlp_edge
cargo test -q -p expt --test otlp_parity --test folded_golden
cargo test -q -p wfobs --no-default-features

echo "== live TUI: golden frames + determinism + geometry =="
cargo test -q -p expt --test tui_golden --test live_determinism
cargo test -q -p wfobs --test prop_tui

echo "== live TUI: graceful degradation under TERM=dumb =="
cargo build --release -q -p expt
live_err="$(mktemp)"
TERM=dumb COLUMNS=100 LINES=30 ./target/release/wfsim run \
    --app montage --tiny --storage s3 --workers 2 --live \
    >/dev/null 2>"$live_err"
if grep -q $'\x1b' "$live_err"; then
    echo "error: wfsim --live leaked ANSI escapes under TERM=dumb" >&2
    exit 1
fi
if ! grep -q '^live: ' "$live_err"; then
    echo "error: wfsim --live under TERM=dumb printed no plain progress lines" >&2
    exit 1
fi
if ! grep -q '^wfsim: makespan ' "$live_err"; then
    echo "error: wfsim run printed no end-of-run summary on stderr" >&2
    exit 1
fi
rm -f "$live_err"

echo "== perf smoke =="
cargo run --release -q -p expt --bin repro -- --bench-smoke

echo "verify: OK"
