//! Billing integration: §VI's cost structure computed from real simulated
//! runs, not synthetic usage records.

use ec2_workflow_sim::expt::{run_cell, Cell};
use ec2_workflow_sim::wfgen::App;
use ec2_workflow_sim::wfstorage::StorageKind;

#[test]
fn nfs_carries_the_dedicated_server_surcharge() {
    // §VI: the extra m1.xlarge adds $0.68 per started hour.
    let nfs = run_cell(Cell::new(App::Epigenome, StorageKind::Nfs, 2), 42).unwrap();
    let gluster = run_cell(Cell::new(App::Epigenome, StorageKind::GlusterNufa, 2), 42).unwrap();
    // Both runs fit in one billed hour: NFS = 3 × $0.68, GlusterFS = 2 × $0.68.
    assert!(nfs.makespan_secs < 3600.0 && gluster.makespan_secs < 3600.0);
    assert!(
        (nfs.cost_per_hour_usd - 2.04).abs() < 1e-9,
        "{}",
        nfs.cost_per_hour_usd
    );
    assert!(
        (gluster.cost_per_hour_usd - 1.36).abs() < 1e-9,
        "{}",
        gluster.cost_per_hour_usd
    );
}

#[test]
fn s3_request_fees_scale_with_file_count() {
    // Montage (~29k file accesses) pays far more in request fees than
    // Epigenome (§VI: $0.28 vs $0.01).
    let montage = run_cell(Cell::new(App::Montage, StorageKind::S3, 2), 42).unwrap();
    let epigenome = run_cell(Cell::new(App::Epigenome, StorageKind::S3, 2), 42).unwrap();
    let fee = |c: &ec2_workflow_sim::expt::CellResult| {
        let (gets, puts) = c.s3_requests;
        puts as f64 / 1000.0 * 0.01 + gets as f64 / 10_000.0 * 0.01
    };
    assert!(
        fee(&montage) > 10.0 * fee(&epigenome),
        "{} vs {}",
        fee(&montage),
        fee(&epigenome)
    );
}

#[test]
fn per_second_billing_dominates_per_hour_everywhere() {
    for storage in [StorageKind::Nfs, StorageKind::S3, StorageKind::GlusterNufa] {
        for n in [2u32, 4] {
            let r = run_cell(Cell::new(App::Epigenome, storage, n), 42).unwrap();
            assert!(
                r.cost_per_second_usd <= r.cost_per_hour_usd + 1e-9,
                "{storage:?}@{n}"
            );
        }
    }
}

#[test]
fn cost_only_drops_with_superlinear_speedup() {
    // §VI's argument: doubling nodes halves the ideal runtime, so the
    // per-second cost can only drop if speedup is superlinear — which
    // loosely-coupled workflows essentially never achieve.
    for storage in [StorageKind::GlusterNufa, StorageKind::S3] {
        let two = run_cell(Cell::new(App::Broadband, storage, 2), 42).unwrap();
        let four = run_cell(Cell::new(App::Broadband, storage, 4), 42).unwrap();
        assert!(
            four.cost_per_second_usd >= two.cost_per_second_usd * 0.98,
            "{storage:?}: ${} @4 vs ${} @2",
            four.cost_per_second_usd,
            two.cost_per_second_usd
        );
    }
}

#[test]
fn m24_server_cost_reflects_its_price() {
    use ec2_workflow_sim::vcluster::InstanceType;
    use ec2_workflow_sim::wfengine::RunConfig;
    let mut cfg = RunConfig::cell(StorageKind::Nfs, 2);
    cfg.server_type = Some(InstanceType::M24Xlarge);
    let r = ec2_workflow_sim::expt::run_cell_with(App::Epigenome, cfg).unwrap();
    // Two c1.xlarge + one m2.4xlarge for one started hour.
    assert!(r.makespan_secs < 3600.0);
    assert!(
        (r.cost_per_hour_usd - (2.0 * 0.68 + 2.40)).abs() < 1e-9,
        "{}",
        r.cost_per_hour_usd
    );
}
