//! Integration tests for the beyond-paper tooling: the direct-transfer
//! system (F1), horizontal clustering (A6), the interchange format, and
//! the trace facilities — exercised through the public facade.

use ec2_workflow_sim::wfdag::{cluster_horizontal, from_json, to_json};
use ec2_workflow_sim::wfengine::{
    jobstate_log, phase_breakdown, run_workflow, trace, RunConfig, SchedulerPolicy,
};
use ec2_workflow_sim::wfgen::App;
use ec2_workflow_sim::wfstorage::StorageKind;

#[test]
fn direct_transfer_runs_all_apps_and_beats_nfs_for_broadband() {
    let direct = run_workflow(
        App::Broadband.paper_workflow(),
        RunConfig::cell(StorageKind::DirectTransfer, 4),
    )
    .unwrap();
    let nfs = run_workflow(
        App::Broadband.paper_workflow(),
        RunConfig::cell(StorageKind::Nfs, 4),
    )
    .unwrap();
    assert!(
        direct.makespan_secs < nfs.makespan_secs * 0.6,
        "direct {} vs nfs {}",
        direct.makespan_secs,
        nfs.makespan_secs
    );
    for app in [App::Montage, App::Epigenome] {
        let stats = run_workflow(
            app.tiny_workflow(),
            RunConfig::cell(StorageKind::DirectTransfer, 2),
        )
        .unwrap_or_else(|e| panic!("{app}: {e}"));
        assert_eq!(stats.tasks, app.tiny_workflow().task_count());
    }
}

#[test]
fn data_aware_scheduling_synergizes_with_direct_transfer() {
    // With replica tracking, the data-aware scheduler should never lose
    // to the blind one on a reuse-heavy workload.
    let blind = run_workflow(
        App::Broadband.paper_workflow(),
        RunConfig::cell(StorageKind::DirectTransfer, 4),
    )
    .unwrap();
    let mut cfg = RunConfig::cell(StorageKind::DirectTransfer, 4);
    cfg.scheduler = SchedulerPolicy::DataAware;
    let aware = run_workflow(App::Broadband.paper_workflow(), cfg).unwrap();
    assert!(
        aware.makespan_secs <= blind.makespan_secs * 1.05,
        "aware {} vs blind {}",
        aware.makespan_secs,
        blind.makespan_secs
    );
}

#[test]
fn clustered_montage_runs_and_preserves_products() {
    use ec2_workflow_sim::wfgen::montage::{montage, MontageConfig};
    let wf = montage(MontageConfig::tiny());
    let clustered = cluster_horizontal(&wf, 6);
    assert!(clustered.task_count() < wf.task_count());
    let stats = run_workflow(clustered, RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
    assert!(stats.makespan_secs > 0.0);
}

#[test]
fn workflows_survive_export_import_execute() {
    // Export → import → run must give the same makespan as running the
    // original (the interchange format carries everything the engine
    // reads).
    let wf = App::Epigenome.tiny_workflow();
    let back = from_json(&to_json(&wf)).unwrap();
    let a = run_workflow(wf, RunConfig::cell(StorageKind::S3, 2)).unwrap();
    let b = run_workflow(back, RunConfig::cell(StorageKind::S3, 2)).unwrap();
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
}

#[test]
fn traces_cover_every_task_of_a_real_run() {
    let wf = App::Broadband.tiny_workflow();
    let stats = run_workflow(wf.clone(), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
    let log = jobstate_log(&stats, &wf);
    // SUBMIT / EXECUTE / JOB_TERMINATED per task.
    assert_eq!(log.lines().count(), wf.task_count() * 3);
    let p = phase_breakdown(&stats);
    let slot_time: f64 = stats
        .records
        .iter()
        .map(|r| r.end_at.since(r.start_at).as_secs_f64())
        .sum();
    assert!((p.total() - slot_time).abs() < 1e-6);
    // The Gantt shows activity on both nodes.
    let g = trace::render_gantt(&stats, 2, 60);
    assert!(g.contains("node_0") && g.contains("node_1"));
}

#[test]
fn resource_rows_name_the_expected_hardware() {
    let stats = run_workflow(
        App::Epigenome.tiny_workflow(),
        RunConfig::cell(StorageKind::Nfs, 2),
    )
    .unwrap();
    let names: Vec<&str> = stats.resources.iter().map(|r| r.name.as_str()).collect();
    for expected in ["w0.disk", "w0.nic.in", "srv.nic.out", "nfs.ops"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    for r in &stats.resources {
        assert!((0.0..=1.0).contains(&r.mean_utilization), "{r:?}");
        assert!(r.busy_secs <= stats.makespan_secs * 1.001, "{r:?}");
    }
}
