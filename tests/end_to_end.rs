//! End-to-end integration: every application × every storage option runs
//! to completion through the full stack (generator → planner → scheduler
//! → storage → fluid-flow simulator → billing).

use ec2_workflow_sim::wfengine::{run_workflow, RunConfig, SchedulerPolicy};
use ec2_workflow_sim::wfgen::App;
use ec2_workflow_sim::wfstorage::StorageKind;

fn workers_for(storage: StorageKind, n: u32) -> Option<u32> {
    match storage {
        StorageKind::Local => (n == 1).then_some(1),
        StorageKind::GlusterNufa | StorageKind::GlusterDistribute | StorageKind::Pvfs => {
            (n >= 2).then_some(n)
        }
        _ => Some(n),
    }
}

#[test]
fn every_app_runs_on_every_storage_tiny() {
    for app in App::ALL {
        for storage in StorageKind::ALL {
            for n in [1u32, 2, 4] {
                let Some(workers) = workers_for(storage, n) else {
                    continue;
                };
                let stats = run_workflow(app.tiny_workflow(), RunConfig::cell(storage, workers))
                    .unwrap_or_else(|e| panic!("{app}/{storage:?}/{n}: {e}"));
                assert_eq!(
                    stats.tasks,
                    app.tiny_workflow().task_count(),
                    "{app}/{storage:?}/{n}"
                );
                assert!(stats.makespan_secs > 0.0);
            }
        }
    }
}

#[test]
fn runs_are_deterministic_across_processes_shapes() {
    // Same seed → identical makespan bits; different seed → (almost
    // surely) different jitter is *not* drawn here because the workflow
    // carries its own seed; the engine seed changes scheduling only.
    for storage in [
        StorageKind::Nfs,
        StorageKind::S3,
        StorageKind::GlusterDistribute,
    ] {
        let a = run_workflow(App::Broadband.tiny_workflow(), RunConfig::cell(storage, 2)).unwrap();
        let b = run_workflow(App::Broadband.tiny_workflow(), RunConfig::cell(storage, 2)).unwrap();
        assert_eq!(
            a.makespan_secs.to_bits(),
            b.makespan_secs.to_bits(),
            "{storage:?}"
        );
        assert_eq!(a.events, b.events, "{storage:?}");
        assert_eq!(a.op_stats, b.op_stats, "{storage:?}");
    }
}

#[test]
fn makespan_at_least_critical_path() {
    for app in App::ALL {
        let wf = app.tiny_workflow();
        let cp = ec2_workflow_sim::wfdag::critical_path_secs(&wf);
        let stats = run_workflow(wf, RunConfig::cell(StorageKind::Nfs, 4)).unwrap();
        assert!(
            stats.makespan_secs >= cp,
            "{app}: makespan {} < critical path {cp}",
            stats.makespan_secs
        );
    }
}

#[test]
fn data_aware_scheduler_never_loses_badly() {
    // The paper suggests data-aware scheduling should help (§IV.A); at
    // minimum it must not catastrophically regress.
    for storage in [StorageKind::S3, StorageKind::GlusterNufa] {
        let blind =
            run_workflow(App::Broadband.tiny_workflow(), RunConfig::cell(storage, 4)).unwrap();
        let mut cfg = RunConfig::cell(storage, 4);
        cfg.scheduler = SchedulerPolicy::DataAware;
        let aware = run_workflow(App::Broadband.tiny_workflow(), cfg).unwrap();
        assert!(
            aware.makespan_secs <= blind.makespan_secs * 1.15,
            "{storage:?}: aware {} vs blind {}",
            aware.makespan_secs,
            blind.makespan_secs
        );
    }
}

#[test]
fn paper_scale_epigenome_and_broadband_run_everywhere() {
    // The two smaller paper-scale workflows are fast enough to run in a
    // test; Montage at paper scale is covered by the repro harness.
    for app in [App::Epigenome, App::Broadband] {
        for storage in StorageKind::EVALUATED {
            let Some(workers) = workers_for(storage, 4).or(workers_for(storage, 1)) else {
                continue;
            };
            let stats = run_workflow(app.paper_workflow(), RunConfig::cell(storage, workers))
                .unwrap_or_else(|e| panic!("{app}/{storage:?}: {e}"));
            assert!(
                stats.makespan_secs > 100.0,
                "{app}/{storage:?} suspiciously fast"
            );
        }
    }
}

#[test]
fn s3_write_once_discipline_holds_at_scale() {
    // Every output is PUT exactly once even when tasks run on many nodes.
    let stats = run_workflow(
        App::Broadband.paper_workflow(),
        RunConfig::cell(StorageKind::S3, 8),
    )
    .unwrap();
    let wf = App::Broadband.paper_workflow();
    let produced = wf
        .tasks()
        .iter()
        .map(|t| t.outputs.len() as u64)
        .sum::<u64>();
    assert_eq!(stats.billing.s3_puts, produced, "one PUT per produced file");
}

#[test]
fn adding_workers_never_hurts_scalable_storage() {
    // GlusterFS and S3 scale with the cluster; doubling workers should
    // never increase Broadband's makespan.
    for storage in [StorageKind::GlusterNufa, StorageKind::S3] {
        let mut prev = f64::INFINITY;
        for n in [2u32, 4, 8] {
            let stats =
                run_workflow(App::Broadband.paper_workflow(), RunConfig::cell(storage, n)).unwrap();
            assert!(
                stats.makespan_secs <= prev * 1.02,
                "{storage:?}@{n}: {} vs previous {prev}",
                stats.makespan_secs
            );
            prev = stats.makespan_secs;
        }
    }
}
