//! Property-based integration tests: randomly generated workflows must
//! validate correctly, run to completion on every storage system, and
//! respect the simulator's conservation laws.

use ec2_workflow_sim::wfdag::{FileId, Workflow, WorkflowBuilder, WorkflowError};
use ec2_workflow_sim::wfengine::{run_workflow, RunConfig};
use ec2_workflow_sim::wfgen::App;
use ec2_workflow_sim::wfstorage::StorageKind;
use proptest::prelude::*;

/// A random layered DAG description: `layers[i]` tasks on layer i, each
/// reading a random subset of the previous layer's outputs.
#[derive(Debug, Clone)]
struct GenDag {
    layers: Vec<u8>,
    fanin: u8,
    file_kb: u32,
    cpu_ds: u16, // deciseconds
}

fn gen_dag() -> impl Strategy<Value = GenDag> {
    (
        proptest::collection::vec(1u8..6, 1..5),
        1u8..4,
        1u32..5000,
        1u16..300,
    )
        .prop_map(|(layers, fanin, file_kb, cpu_ds)| GenDag {
            layers,
            fanin,
            file_kb,
            cpu_ds,
        })
}

fn build(dag: &GenDag) -> Workflow {
    let mut b = WorkflowBuilder::new("random");
    let mut prev_outputs: Vec<FileId> = Vec::new();
    let mut uid = 0u32;
    for (li, &width) in dag.layers.iter().enumerate() {
        let mut outputs = Vec::new();
        for t in 0..width {
            let out = b.file(format!("f{li}_{t}"), u64::from(dag.file_kb) * 1000);
            // Deterministic pseudo-random fan-in from the previous layer.
            let inputs: Vec<FileId> = (0..dag.fanin)
                .filter_map(|_k| {
                    if prev_outputs.is_empty() {
                        None
                    } else {
                        uid = uid.wrapping_mul(1664525).wrapping_add(1013904223);
                        Some(prev_outputs[(uid as usize) % prev_outputs.len()])
                    }
                })
                .collect();
            let mut dedup = inputs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            b.task(
                format!("t{li}_{t}"),
                format!("x{li}"),
                f64::from(dag.cpu_ds) / 10.0,
                256 << 20,
                dedup,
                vec![out],
            );
            outputs.push(out);
        }
        prev_outputs = outputs;
    }
    b.build().expect("layered DAGs are acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random layered workflows validate and expose consistent structure.
    #[test]
    fn random_dags_validate(dag in gen_dag()) {
        let wf = build(&dag);
        let total: u8 = dag.layers.iter().sum();
        prop_assert_eq!(wf.task_count(), total as usize);
        // Topological order is a permutation respecting dependencies.
        let mut seen = vec![false; wf.task_count()];
        for &t in wf.topo_order() {
            for f in &wf.task(t).inputs {
                if let Some(p) = wf.file(*f).producer {
                    prop_assert!(seen[p.index()], "parent after child in topo order");
                }
            }
            seen[t.index()] = true;
        }
        // Levels increase along edges.
        for &t in wf.topo_order() {
            for f in &wf.task(t).inputs {
                if let Some(p) = wf.file(*f).producer {
                    prop_assert!(wf.task(p).level < wf.task(t).level);
                }
            }
        }
    }

    /// Every random workflow runs to completion on every storage system,
    /// and the makespan dominates the compute critical path.
    #[test]
    fn random_workflows_complete_everywhere(dag in gen_dag()) {
        let wf = build(&dag);
        let cp = ec2_workflow_sim::wfdag::critical_path_secs(&wf);
        for storage in [StorageKind::Nfs, StorageKind::GlusterDistribute, StorageKind::S3, StorageKind::Pvfs] {
            let stats = run_workflow(wf.clone(), RunConfig::cell(storage, 2))
                .unwrap_or_else(|e| panic!("{storage:?}: {e}"));
            prop_assert_eq!(stats.tasks, wf.task_count());
            prop_assert!(stats.makespan_secs >= cp, "{:?}: {} < {}", storage, stats.makespan_secs, cp);
        }
    }

    /// Identical configs are bit-deterministic on random workflows.
    #[test]
    fn random_workflows_are_deterministic(dag in gen_dag(), seed in 0u64..1000) {
        let run = || {
            let cfg = RunConfig::cell(StorageKind::GlusterNufa, 2).with_seed(seed);
            run_workflow(build(&dag), cfg).expect("runs")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        prop_assert_eq!(a.events, b.events);
    }

    /// Duplicate producers are always rejected, wherever they appear.
    #[test]
    fn double_producers_rejected(n in 2u8..20) {
        let mut b = WorkflowBuilder::new("dup");
        let f = b.file("shared", 10);
        for i in 0..n {
            b.task(format!("t{i}"), "x", 1.0, 0, vec![], vec![f]);
        }
        let rejected = matches!(b.build(), Err(WorkflowError::MultipleProducers { .. }));
        prop_assert!(rejected);
    }
}

#[test]
fn generator_workflows_satisfy_invariants() {
    // The three paper generators are just special cases of the same
    // invariants the property tests check.
    for app in App::ALL {
        let wf = app.paper_workflow();
        for &t in wf.topo_order() {
            for f in &wf.task(t).inputs {
                if let Some(p) = wf.file(*f).producer {
                    assert!(wf.task(p).level < wf.task(t).level, "{app}");
                }
            }
        }
        // Every file has at most one producer by construction; workflow
        // inputs have none.
        for f in wf.files() {
            if f.class == ec2_workflow_sim::wfdag::FileClass::Input {
                assert!(f.producer.is_none(), "{app}");
            }
        }
    }
}
