//! Shape-regression tests: the paper claims that are cheap enough to
//! verify on every `cargo test` run (Broadband and Epigenome at paper
//! scale; the full Montage figure runs under `--ignored` and in the
//! `repro` binary).

use ec2_workflow_sim::expt::faults;
use ec2_workflow_sim::expt::figures::{runtime_figure, table1, xtreemfs_note};
use ec2_workflow_sim::expt::shape;
use ec2_workflow_sim::wfgen::App;

fn assert_all_pass(checks: &[ec2_workflow_sim::expt::ShapeCheck]) {
    let failures: Vec<_> = checks.iter().filter(|c| !c.passed).collect();
    assert!(
        failures.is_empty(),
        "failed shape checks: {:#?}",
        failures
            .iter()
            .map(|c| format!("{}: {}", c.id, c.detail))
            .collect::<Vec<_>>()
    );
}

#[test]
fn fig4_broadband_shape_holds() {
    let fig = runtime_figure(App::Broadband, 42);
    assert_all_pass(&shape::check_fig4(&fig));
}

#[test]
fn fig3_epigenome_shape_holds() {
    let fig = runtime_figure(App::Epigenome, 42);
    assert_all_pass(&shape::check_fig3(&fig));
}

#[test]
fn table1_shape_holds() {
    assert_all_pass(&shape::check_table1(&table1()));
}

#[test]
fn shape_checks_are_seed_robust_for_broadband() {
    // The qualitative Broadband ordering must not depend on the engine
    // seed.
    for seed in [7u64, 1234] {
        let fig = runtime_figure(App::Broadband, seed);
        assert_all_pass(&shape::check_fig4(&fig));
    }
}

#[test]
fn f2_fault_shape_holds() {
    let study = faults::run_f2(&[App::Broadband, App::Epigenome], 42);
    assert_all_pass(&faults::check_f2(&study));
}

#[test]
fn f2_fault_checks_are_seed_robust_for_broadband() {
    // Mirrors the Broadband seed-robustness treatment above: the fault
    // degradation ordering must not depend on the engine seed.
    for seed in [7u64, 1234] {
        let study = faults::run_f2(&[App::Broadband], seed);
        assert_all_pass(&faults::check_f2(&study));
    }
}

#[test]
#[ignore = "runs the full Montage grid (~1 min); exercised by the repro binary"]
fn fig2_montage_shape_holds() {
    let fig = runtime_figure(App::Montage, 42);
    assert_all_pass(&shape::check_fig2(&fig));
}

#[test]
#[ignore = "runs everything (~2 min); exercised by the repro binary"]
fn all_19_claims_reproduce() {
    let figs: Vec<_> = App::ALL.iter().map(|a| runtime_figure(*a, 42)).collect();
    let checks = shape::check_all(&figs, &table1(), &xtreemfs_note(42));
    assert_all_pass(&checks);
}
