//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! shim. There is no crates.io access in this build environment, so this
//! proc macro parses the item token stream directly (no `syn`/`quote`) and
//! emits impls of the shim's value-tree traits.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently),
//! - enums with unit and struct variants (externally tagged, like serde).
//!
//! Unsupported (panics with a clear message): generics, tuple enum
//! variants, unions, `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Drop leading outer attributes (`#[...]`, including doc comments) and a
/// visibility modifier from the token slice, returning the new cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a field/variant list on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        parts.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parse `{ name: Ty, ... }` field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .map(|part| {
            let i = skip_attrs_and_vis(&part, 0);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level(&inner).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let variants = split_top_level(&body_tokens)
                .into_iter()
                .map(|part| {
                    let j = skip_attrs_and_vis(&part, 0);
                    let vname = match part.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde shim derive: expected variant name, got {other:?}"),
                    };
                    let fields = match part.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(parse_named_fields(g))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            panic!(
                                "serde shim derive: tuple enum variant `{name}::{vname}` \
                                 is not supported"
                            )
                        }
                        _ => Fields::Unit,
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|ix| format!("::serde::Serialize::to_value(&self.{ix})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                        Fields::Tuple(_) => unreachable!("rejected at parse time"),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(obj, {f:?})?,"))
                        .collect();
                    format!(
                        "let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected object for {name}, got {{v:?}}\")))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|ix| format!("::serde::Deserialize::from_value(&items[{ix}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected array for {name}, got {{v:?}}\")))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(::serde::DeError::custom(format!(\
                             \"expected {n} elements for {name}, got {{}}\", items.len())));\n\
                         }}\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.fields {
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(obj, {f:?})?,"))
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(format!(\
                                 \"expected object for {name}::{vname}\")))?;\n\
                                 Ok({name}::{vname} {{ {body} }})\n\
                             }}",
                            vname = v.name,
                            body = inits.join(" ")
                        ))
                    }
                    _ => None,
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => Err(::serde::DeError::custom(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     other => Err(::serde::DeError::custom(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::custom(format!(\
                             \"expected {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n")
            )
        }
    }
}

/// Derive the shim's `Serialize` (value-tree) impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

/// Derive the shim's `Deserialize` (value-tree) impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
