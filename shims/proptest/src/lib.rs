//! Offline stand-in for `proptest`: the build environment has no crates.io
//! access, so this crate provides a deterministic mini property-testing
//! harness behind the subset of the proptest API this workspace uses:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//! - [`Strategy`] with `prop_map` / `boxed`,
//! - integer and float range strategies, tuples, [`Just`],
//!   [`collection::vec`], [`option::of`], and [`prop_oneof!`],
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! There is **no shrinking**: a failing case reports its generated inputs
//! and the case index instead. Streams are seeded from the test's module
//! path, so failures are reproducible run-to-run.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator behind all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Stream keyed to a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128).wrapping_mul(n as u128)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Core trait and config
// ---------------------------------------------------------------------------

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (carried out of the test body).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Strategy implementations
// ---------------------------------------------------------------------------

/// See [`Strategy::boxed`]; cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates its payload (like `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

pub mod collection {
    //! `proptest::collection` stand-in.
    use super::*;

    /// Inclusive-exclusive element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty vec size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `elem` values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `proptest::option` stand-in.
    use super::*;

    /// Strategy for `Option<S::Value>` (None with probability 1/4, matching
    //  upstream's default bias toward Some).
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `proptest::option::of`: maybe-generate from `s`.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn p(x in 0..10u32) { ... } }`
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = {
                            let strategy = $strat;
                            $crate::Strategy::generate(&strategy, &mut rng)
                        };
                    )*
                    let args_desc = format!("{:?}", ($(&$arg,)*));
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, args_desc,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside `proptest!`; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right,
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..9.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..9.5).contains(&y));
        }

        #[test]
        fn vec_and_option_compose(
            xs in crate::collection::vec(0usize..5, 2..=6),
            maybe in crate::option::of(1u32..4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
            if let Some(v) = maybe {
                prop_assert!((1..4).contains(&v));
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v < 20, "unexpected {v}");
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert!((0..32).all(|_| a.next_u64() == b.next_u64()));
    }
}
