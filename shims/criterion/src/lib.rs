//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! behind the API surface this workspace's benches use (`Criterion`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`, `criterion_main!`,
//! `black_box`).
//!
//! Each benchmark warms up briefly, then runs timed batches until the
//! measurement budget is spent, and reports min/mean/median per-iteration
//! wall time. Tune with `CRITERION_MEASURE_MS` (default 1000) and
//! `CRITERION_WARMUP_MS` (default 200).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 200),
            measure: env_ms("CRITERION_MEASURE_MS", 1000),
            sample_size: usize::MAX,
        }
    }
}

/// Per-benchmark timing collector.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Criterion {
    /// Cap the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement budget (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Set the warmup budget (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Run `f` as the benchmark `name` and print a one-line report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        if b.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return self;
        }
        let n = b.samples.len();
        let min = b.samples[0];
        let median = b.samples[n / 2];
        let mean = b.samples.iter().sum::<Duration>() / n as u32;
        println!(
            "{name:<50} min {:>12?}  mean {:>12?}  median {:>12?}  ({n} samples)",
            min, mean, median
        );
        self
    }
}

impl Bencher {
    /// Measure repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup until the budget is spent (at least one run).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        // Timed samples: stop at the sample cap or when the budget is
        // spent, whichever comes first (always at least one sample).
        let run_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.sample_size || run_start.elapsed() >= self.measure {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group. Supports both the
/// positional form and upstream's `name = / config = / targets =` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
