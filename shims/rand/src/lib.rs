//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Only the pieces the simulator touches are provided: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen` / `gen_range`,
//! and uniform sampling for the primitive types. The statistical quality is
//! inherited from whatever [`RngCore`] backs it (see the `rand_chacha`
//! shim); nothing here attempts to be value-compatible with upstream
//! `rand`, only API-compatible.

use std::ops::Range;

/// Core entropy source: 32/64-bit uniform words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full domain (`gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire multiply-shift; the modulo bias over a 64-bit draw
                // is negligible for simulation workloads.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw over the type's full domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use crate::{Rng, RngCore, SeedableRng};
}
