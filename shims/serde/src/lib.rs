//! Offline stand-in for `serde`: the build environment has no crates.io
//! access, so this crate supplies the small API surface the workspace
//! actually uses — `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums (no `#[serde(...)]` attributes), plus a JSON-ish value tree that
//! the `serde_json` shim renders and parses.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! serialization goes through an owned [`Value`] tree. That is plenty for
//! the report files and workflow documents this repo reads and writes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Object keys keep insertion order (serialization order of the deriving
/// struct), which keeps emitted JSON stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Replacement when a struct field is missing entirely (`None` means
    /// "missing is an error"; `Option<T>` overrides this to tolerate it).
    fn absent() -> Option<Self> {
        None
    }
}

/// Field lookup used by derived `Deserialize` impls.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => T::absent().ok_or_else(|| DeError::custom(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!(
                    concat!("number out of range for ", stringify!($t), ": {}"), wide)))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!(
                    concat!("number out of range for ", stringify!($t), ": {}"), wide)))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(f64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (JSON has no inf).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let want = [$($ix),+].len();
                if items.len() != want {
                    return Err(DeError::custom(format!(
                        "expected {want}-tuple, got {} elements", items.len())));
                }
                Ok(($($name::from_value(&items[$ix])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object map, got {v:?}")))?;
        pairs
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| DeError::custom(format!("bad map key `{k}`")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
