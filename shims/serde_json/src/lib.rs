//! Offline stand-in for `serde_json`: renders and parses JSON through the
//! serde shim's [`Value`] tree. Covers the workspace's usage —
//! `to_string`, `to_string_pretty`, `from_str`, and [`Error`].

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serialize as null like serde_json's
        // arbitrary-precision mode would reject — we degrade gracefully.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing ".0" so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("montage \"8\"".into())),
            ("n".into(), Value::I64(-3)),
            ("big".into(), Value::U64(u64::MAX)),
            ("pi".into(), Value::F64(3.25)),
            ("whole".into(), Value::F64(10.0)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "xs".into(),
                Value::Array(vec![Value::I64(1), Value::I64(2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn whole_floats_keep_their_point() {
        assert_eq!(to_string(&10.0f64).unwrap(), "10.0");
        let back: f64 = from_str("10.0").unwrap();
        assert_eq!(back, 10.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let s = "line1\nline2\ttab\u{1}";
        let text = to_string(&String::from(s)).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
