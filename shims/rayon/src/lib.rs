//! Offline stand-in for `rayon`, backed by `std::thread::scope`.
//!
//! The workspace uses exactly two shapes, both implemented here with real
//! parallelism:
//!
//! - `items.par_iter().map(f).collect::<Vec<_>>()` — chunked fork/join over
//!   a slice, preserving input order;
//! - `rayon::join(a, b)` — two closures run concurrently.
//!
//! There is no work-stealing pool: each `collect` spawns scoped threads
//! (bounded by available parallelism), which is plenty for the experiment
//! grid's coarse cells.

/// Run two closures concurrently, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(a);
        let rb = b();
        (handle.join().expect("rayon::join closure panicked"), rb)
    })
}

fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    hw.min(items).max(1)
}

/// Order-preserving parallel map over a slice.
fn par_map_slice<'a, T, O, F>(items: &'a [T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&'a T) -> O + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<O>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("parallel map worker panicked"))
        .collect()
}

/// Borrowing parallel iterator over a slice (`.par_iter()`).
pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; evaluation happens in [`ParMap::collect`].
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        O: Send,
        F: Fn(&'a T) -> O + Sync,
    {
        ParMap { items: self.0, f }
    }
}

/// A mapped parallel iterator awaiting `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F> ParMap<'a, T, F>
where
    T: Sync,
{
    /// Evaluate in parallel, preserving input order.
    pub fn collect<O, C>(self) -> C
    where
        O: Send,
        F: Fn(&'a T) -> O + Sync,
        C: From<Vec<O>>,
    {
        par_map_slice(self.items, self.f).into()
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    use super::ParIter;

    /// `par_iter()` entry point for slice-backed collections.
    pub trait IntoParallelRefIterator<T> {
        /// A parallel iterator borrowing this collection's elements.
        fn par_iter(&self) -> ParIter<'_, T>;
    }

    impl<T: Sync> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter(self)
        }
    }

    impl<T: Sync> IntoParallelRefIterator<T> for Vec<T> {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter(self.as_slice())
        }
    }

    impl<T: Sync, const N: usize> IntoParallelRefIterator<T> for [T; N] {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter(self.as_slice())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_on_array() {
        let out: Vec<u32> = [1u32, 2, 3].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }
}
