//! Offline stand-in for `rand_chacha`: a genuine ChaCha stream cipher used
//! as a deterministic RNG, exposing the small API surface this workspace
//! needs (`ChaCha8Rng`, `rand_core::SeedableRng`).
//!
//! The keystream is a faithful ChaCha implementation (8 rounds for
//! `ChaCha8Rng`), but the word-consumption order is not guaranteed to match
//! upstream `rand_chacha` bit-for-bit; the workspace only relies on
//! determinism and statistical quality, not on upstream-compatible streams.

use rand::RngCore;

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS_CHACHA8: usize = 8;

/// A deterministic ChaCha8-backed generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter, 2 nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means exhausted.
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(state: &[u32; 16], rounds: usize, out: &mut [u32; 16]) {
    let mut w = *state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = w[i].wrapping_add(state[i]);
    }
}

/// SplitMix64: expands a 64-bit seed into decorrelated key material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn from_key_words(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0u32; 16],
            word: 16,
        }
    }

    fn refill(&mut self) {
        chacha_block(&self.state, ROUNDS_CHACHA8, &mut self.block);
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word = 0;
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng::from_key_words(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity check: bit balance over a few thousand words.
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u64;
        let n = 4096u64;
        for _ in 0..n {
            ones += u64::from(r.next_u32().count_ones());
        }
        let expected = n * 16;
        let tol = n; // generous ±1 bit/word
        assert!(
            ones > expected - tol && ones < expected + tol,
            "ones={ones}"
        );
    }
}
