//! Property-based tests for the fluid-flow engine and the event calendar.

use proptest::prelude::*;
use simcore::{FlowEngine, FlowSpec, Sim, SimDuration, SimTime};

/// A randomly generated flow description over `n_res` resources.
#[derive(Debug, Clone)]
struct GenFlow {
    bytes: u64,
    path: Vec<usize>,
    cap: Option<f64>,
    start_ms: u64,
}

fn gen_flow(n_res: usize) -> impl Strategy<Value = GenFlow> {
    (
        1u64..5_000_000,
        proptest::collection::vec(0..n_res, 1..=n_res.min(4)),
        proptest::option::of(1.0f64..1e8),
        0u64..10_000,
    )
        .prop_map(|(bytes, mut path, cap, start_ms)| {
            path.sort_unstable();
            path.dedup();
            GenFlow {
                bytes,
                path,
                cap,
                start_ms,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At any allocation instant: no resource is oversubscribed, no flow
    /// exceeds its cap, and every flow makes progress.
    #[test]
    fn rates_are_feasible_and_positive(
        caps in proptest::collection::vec(1e3f64..1e9, 1..5),
        flows in proptest::collection::vec(gen_flow(4), 1..30),
    ) {
        let mut fe: FlowEngine<usize> = FlowEngine::new();
        let rids: Vec<_> = caps.iter().enumerate()
            .map(|(i, c)| fe.add_resource(format!("r{i}"), *c))
            .collect();
        let mut ids = Vec::new();
        for (i, g) in flows.iter().enumerate() {
            let path: Vec<_> = g.path.iter().filter(|&&p| p < rids.len()).map(|&p| rids[p]).collect();
            let mut spec = FlowSpec::new(g.bytes, path);
            if let Some(c) = g.cap { spec = spec.with_cap(c); }
            if spec.is_instant() { continue; }
            ids.push((i, fe.start(SimTime::ZERO, spec, i)));
        }
        // Per-flow constraints.
        for (i, id) in &ids {
            let rate = fe.flow_rate(*id).unwrap();
            prop_assert!(rate > 0.0, "flow {i} has zero rate");
            if let Some(c) = flows[*i].cap {
                prop_assert!(rate <= c * (1.0 + 1e-9), "flow {i} exceeds cap: {rate} > {c}");
            }
        }
        // Per-resource conservation.
        for (ri, rid) in rids.iter().enumerate() {
            let mut total = 0.0;
            for (i, id) in &ids {
                let path = &flows[*i].path;
                if path.iter().any(|&p| p < rids.len() && rids[p] == *rid) {
                    total += fe.flow_rate(*id).unwrap();
                }
            }
            prop_assert!(total <= caps[ri] * (1.0 + 1e-6),
                "resource {ri} oversubscribed: {total} > {}", caps[ri]);
        }
    }

    /// Driving random flows to completion conserves bytes: each resource's
    /// accumulated byte count equals the sum of the flows that crossed it.
    #[test]
    fn bytes_are_conserved_end_to_end(
        caps in proptest::collection::vec(1e4f64..1e8, 1..4),
        flows in proptest::collection::vec(gen_flow(3), 1..20),
    ) {
        let mut sim: Sim<()> = Sim::new();
        let rids: Vec<_> = caps.iter().enumerate()
            .map(|(i, c)| sim.add_resource(format!("r{i}"), *c))
            .collect();
        let mut expected = vec![0u64; rids.len()];
        for g in &flows {
            let path: Vec<_> = g.path.iter().filter(|&&p| p < rids.len()).map(|&p| rids[p]).collect();
            for r in &path {
                expected[r.index()] += g.bytes;
            }
            let mut spec = FlowSpec::new(g.bytes, path);
            if let Some(c) = g.cap { spec = spec.with_cap(c); }
            let at = SimTime::from_nanos(g.start_ms * 1_000_000);
            sim.schedule_at(at, move |s, _| { s.start_flow(spec, |_, _| {}); });
        }
        sim.run(&mut ());
        let (started, completed) = sim.flow_counters();
        prop_assert_eq!(started, completed, "all flows must complete");
        for (i, rid) in rids.iter().enumerate() {
            let got = sim.resource_stats(*rid).bytes;
            let want = expected[i] as f64;
            prop_assert!((got - want).abs() <= want.max(1.0) * 1e-6 + 1.0,
                "resource {i}: accounted {got} vs expected {want}");
        }
    }

    /// The same schedule produces bit-identical completion sequences.
    #[test]
    fn completion_order_is_deterministic(
        caps in proptest::collection::vec(1e4f64..1e8, 1..4),
        flows in proptest::collection::vec(gen_flow(3), 1..20),
    ) {
        let run = || {
            let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
            let rids: Vec<_> = caps.iter().enumerate()
                .map(|(i, c)| sim.add_resource(format!("r{i}"), *c))
                .collect();
            for (fi, g) in flows.iter().enumerate() {
                let path: Vec<_> = g.path.iter().filter(|&&p| p < rids.len()).map(|&p| rids[p]).collect();
                let mut spec = FlowSpec::new(g.bytes, path);
                if let Some(c) = g.cap { spec = spec.with_cap(c); }
                let at = SimTime::from_nanos(g.start_ms * 1_000_000);
                sim.schedule_at(at, move |s, _| {
                    s.start_flow(spec, move |s, log: &mut Vec<(u64, usize)>| {
                        log.push((s.now().as_nanos(), fi));
                    });
                });
            }
            let mut log = Vec::new();
            sim.run(&mut log);
            log
        };
        prop_assert_eq!(run(), run());
    }

    /// Calendar events always fire in non-decreasing time order.
    #[test]
    fn event_times_are_monotonic(times in proptest::collection::vec(0u64..1_000_000u64, 1..50)) {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |s, log: &mut Vec<u64>| {
                log.push(s.now().as_nanos());
            });
        }
        let mut log = Vec::new();
        sim.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(log, sorted);
    }

    /// schedule_in(d) fires exactly d after the present.
    #[test]
    fn relative_scheduling_is_exact(d in 0u64..10_000_000_000u64) {
        let mut sim: Sim<Option<u64>> = Sim::new();
        sim.schedule_in(SimDuration::from_nanos(d), |s, out: &mut Option<u64>| {
            *out = Some(s.now().as_nanos());
        });
        let mut out = None;
        sim.run(&mut out);
        prop_assert_eq!(out, Some(d));
    }
}
