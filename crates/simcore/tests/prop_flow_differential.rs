//! Differential property tests: the incremental [`FlowEngine`] against the
//! preserved reference solver [`NaiveFlowEngine`] (the `oracle` feature).
//!
//! Both engines are driven through the *same* randomly generated schedule
//! of flow arrivals, cancellations, and completions (completions are
//! ordered by the oracle and applied to both). After every event the
//! engines must agree on:
//!
//! * the rate of every active flow, **bit for bit** — component-scoped
//!   progressive filling performs the same arithmetic as a global
//!   recompute restricted to the touched component;
//! * the next completion instant. When every flow shares a common
//!   resource the graph is one connected component and the incremental
//!   engine syncs at every event, so predictions are bit-identical; with
//!   disjoint components the lazy engine coalesces several small
//!   `remaining -= rate·dt` steps into one, which can move a prediction
//!   by a few ULPs (bounded here at relative 1e-12, ≥2 ns).

use proptest::prelude::*;
use simcore::naive::NaiveFlowEngine;
use simcore::{FlowEngine, FlowId, FlowSpec, SimTime};
use wfobs::RunDigest;

/// A randomly generated flow description over `n_res` resources.
#[derive(Debug, Clone)]
struct GenFlow {
    bytes: u64,
    path: Vec<usize>,
    cap: Option<f64>,
    start_ms: u64,
}

fn gen_flow(n_res: usize) -> impl Strategy<Value = GenFlow> {
    (
        1u64..5_000_000,
        proptest::collection::vec(0..n_res, 1..=n_res.min(4)),
        proptest::option::of(10.0f64..1e8),
        0u64..8_000,
    )
        .prop_map(|(bytes, mut path, cap, start_ms)| {
            path.sort_unstable();
            path.dedup();
            GenFlow {
                bytes,
                path,
                cap,
                start_ms,
            }
        })
}

/// One scheduled mutation of the engines.
enum Op {
    /// Start the flow at this index of the generated list.
    Start(usize),
    /// Cancel the `k`-th flow ever started (if still active).
    Cancel(usize),
    /// Cancel every active flow touching resource `r` in one burst — the
    /// flow-level shape of a node crash (the engine cancels all of a dead
    /// node's transfers inside a single event).
    Crash(usize),
}

/// Drive both engines through the same schedule, asserting agreement after
/// every event. `tol_ns(t)` bounds the allowed next-completion divergence
/// at simulated nanosecond `t`.
fn run_differential(
    caps: &[f64],
    flows: &[GenFlow],
    cancels: &[(usize, u64)],
    crashes: &[(usize, u64)],
    force_shared: bool,
    tol_ns: impl Fn(u64) -> u64,
) -> Result<(), TestCaseError> {
    let mut naive: NaiveFlowEngine<usize> = NaiveFlowEngine::new();
    let mut inc: FlowEngine<usize> = FlowEngine::new();
    let rids_n: Vec<_> = caps
        .iter()
        .enumerate()
        .map(|(i, c)| naive.add_resource(format!("r{i}"), *c))
        .collect();
    let rids_i: Vec<_> = caps
        .iter()
        .enumerate()
        .map(|(i, c)| inc.add_resource(format!("r{i}"), *c))
        .collect();

    // Merge starts and cancels into one deterministic timeline.
    let mut ops: Vec<(u64, usize, Op)> = Vec::new();
    for (i, g) in flows.iter().enumerate() {
        ops.push((g.start_ms * 1_000_000, ops.len(), Op::Start(i)));
    }
    for &(k, ms) in cancels {
        ops.push((ms * 1_000_000, ops.len(), Op::Cancel(k)));
    }
    for &(r, ms) in crashes {
        ops.push((ms * 1_000_000, ops.len(), Op::Crash(r % caps.len())));
    }
    ops.sort_by_key(|&(t, seq, _)| (t, seq));

    let mut paths: Vec<(FlowId, Vec<usize>)> = Vec::new();
    let mut started: Vec<FlowId> = Vec::new();
    let mut active: Vec<FlowId> = Vec::new();
    let mut op_ix = 0;
    let mut completions = 0u32;
    let mut cancelled = 0u32;
    // One streaming digest per engine over everything each engine reports
    // (rate bits after every event, completion payloads): if the digests
    // agree at the end, the whole observed streams agreed record for
    // record — the same replay-verification contract `RunStats::digest`
    // offers at the workflow level.
    let mut dig_n = RunDigest::new(0x0b5);
    let mut dig_i = RunDigest::new(0x0b5);

    loop {
        let next_op = ops.get(op_ix).map(|&(t, _, _)| t);
        let next_done = naive.next_completion();
        let step_op = match (next_op, next_done) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Events beat flow completions on ties, mirroring `Sim::run`.
            (Some(q), Some((t, _))) => q <= t.as_nanos(),
        };

        if step_op {
            let (t_ns, _, ref op) = ops[op_ix];
            op_ix += 1;
            let now = SimTime::from_nanos(t_ns);
            match *op {
                Op::Start(i) => {
                    let g = &flows[i];
                    let mut path: Vec<usize> =
                        g.path.iter().copied().filter(|&p| p < caps.len()).collect();
                    if force_shared && !path.contains(&0) {
                        path.insert(0, 0);
                    }
                    let build = |rids: &[simcore::ResourceId]| {
                        let mut spec =
                            FlowSpec::new(g.bytes, path.iter().map(|&p| rids[p]).collect());
                        if let Some(c) = g.cap {
                            spec = spec.with_cap(c);
                        }
                        spec
                    };
                    let spec = build(&rids_n);
                    if spec.is_instant() {
                        continue;
                    }
                    let id_n = naive.start(now, spec, i);
                    let id_i = inc.start(now, build(&rids_i), i);
                    prop_assert_eq!(id_n, id_i, "flow ids diverged");
                    paths.push((id_n, path));
                    started.push(id_n);
                    active.push(id_n);
                }
                Op::Cancel(k) => {
                    if started.is_empty() {
                        continue;
                    }
                    let id = started[k % started.len()];
                    let got_n = naive.cancel(now, id);
                    let got_i = inc.cancel(now, id);
                    prop_assert_eq!(got_n, got_i, "cancel payloads diverged");
                    if active.contains(&id) {
                        cancelled += 1;
                    }
                    active.retain(|&a| a != id);
                }
                Op::Crash(r) => {
                    let victims: Vec<FlowId> = active
                        .iter()
                        .copied()
                        .filter(|id| {
                            paths
                                .iter()
                                .any(|(pid, path)| pid == id && path.contains(&r))
                        })
                        .collect();
                    for id in victims {
                        let got_n = naive.cancel(now, id);
                        let got_i = inc.cancel(now, id);
                        prop_assert_eq!(got_n, got_i, "crash-cancel payloads diverged");
                        active.retain(|&a| a != id);
                        cancelled += 1;
                    }
                }
            }
        } else {
            let (t_n, id_n) = next_done.unwrap();
            let (t_i, id_i) = inc
                .next_completion()
                .expect("incremental engine has no completion");
            let tol = tol_ns(t_n.as_nanos());
            let dt = t_n.as_nanos().abs_diff(t_i.as_nanos());
            prop_assert!(
                dt <= tol,
                "next completion diverged: naive {t_n:?}/{id_n:?} vs incremental {t_i:?}/{id_i:?}"
            );
            if tol == 0 {
                prop_assert_eq!(id_n, id_i, "completion order diverged");
            }
            // The oracle's choice drives both engines.
            let done_n = naive.complete(t_n, id_n);
            let done_i = inc.complete(t_n, id_n);
            prop_assert_eq!(done_n, done_i, "completion payloads diverged");
            dig_n.absorb_bytes(&(done_n as u64).to_le_bytes());
            dig_i.absorb_bytes(&(done_i as u64).to_le_bytes());
            active.retain(|&a| a != id_n);
            completions += 1;
        }

        // After every event: identical rate vectors, bit for bit.
        for &id in &active {
            let rn = naive.flow_rate(id).expect("active in oracle");
            let ri = inc.flow_rate(id).expect("active in incremental");
            dig_n.absorb_bytes(&rn.to_bits().to_le_bytes());
            dig_i.absorb_bytes(&ri.to_bits().to_le_bytes());
            prop_assert_eq!(
                rn.to_bits(),
                ri.to_bits(),
                "rate diverged for {:?}: naive {} vs incremental {}",
                id,
                rn,
                ri
            );
        }
        prop_assert_eq!(naive.active_flows(), inc.active_flows());
    }

    prop_assert!(completions + cancelled > 0 || flows.iter().all(|f| f.bytes == 0));
    prop_assert_eq!(naive.flow_counters(), inc.flow_counters());
    prop_assert_eq!(
        dig_n.count(),
        dig_i.count(),
        "engines reported different record counts"
    );
    prop_assert_eq!(
        dig_n.value(),
        dig_i.value(),
        "observed-stream digests diverged"
    );
    prop_assert_eq!(inc.active_flows(), 0);
    // Byte accounting agrees to rounding (the engines accumulate resource
    // statistics with differently-associated but equivalent arithmetic).
    for (rn, ri) in rids_n.iter().zip(&rids_i) {
        let bn = naive.resource_stats(*rn).bytes;
        let bi = inc.resource_stats(*ri).bytes;
        prop_assert!(
            (bn - bi).abs() <= bn.abs().max(1.0) * 1e-9,
            "resource bytes diverged: {bn} vs {bi}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fully connected case: every flow crosses resource 0, so the graph is
    /// always a single component and the incremental engine must match the
    /// oracle **bit for bit** — rates, completion instants, and completion
    /// order.
    #[test]
    fn single_component_is_bit_identical(
        caps in proptest::collection::vec(1e3f64..1e9, 1..5),
        flows in proptest::collection::vec(gen_flow(4), 1..40),
        cancels in proptest::collection::vec((0usize..64, 0u64..10_000), 0..8),
    ) {
        run_differential(&caps, &flows, &cancels, &[], true, |_| 0)?;
    }

    /// General case: random paths form multiple components that split and
    /// merge as flows come and go. Rates must still agree bit for bit;
    /// completion predictions may drift by the lazy-sync rounding bound.
    #[test]
    fn multi_component_rates_exact_times_tight(
        caps in proptest::collection::vec(1e3f64..1e9, 2..6),
        flows in proptest::collection::vec(gen_flow(5), 1..40),
        cancels in proptest::collection::vec((0usize..64, 0u64..10_000), 0..8),
    ) {
        // Relative 1e-12 of the completion instant, floored at 2 ns.
        run_differential(&caps, &flows, &cancels, &[], false,
            |t| 2 + (t as f64 * 1e-12) as u64)?;
    }

    /// Crash-shaped schedules, shared-resource case: random bursts cancel
    /// every flow touching one resource inside a single event — the exact
    /// load a node crash puts on the engine (all of a dead node's
    /// transfers die at once). Bit-identical agreement is still required.
    #[test]
    fn crash_bursts_single_component_bit_identical(
        caps in proptest::collection::vec(1e3f64..1e9, 1..5),
        flows in proptest::collection::vec(gen_flow(4), 1..40),
        crashes in proptest::collection::vec((0usize..8, 0u64..10_000), 1..6),
    ) {
        run_differential(&caps, &flows, &[], &crashes, true, |_| 0)?;
    }

    /// Crash-shaped schedules over disjoint components, mixed with plain
    /// cancels: mass-cancel bursts tear whole components down while others
    /// keep filling. Rates stay bit-exact, predictions within the
    /// lazy-sync bound.
    #[test]
    fn crash_bursts_multi_component(
        caps in proptest::collection::vec(1e3f64..1e9, 2..6),
        flows in proptest::collection::vec(gen_flow(5), 1..40),
        cancels in proptest::collection::vec((0usize..64, 0u64..10_000), 0..8),
        crashes in proptest::collection::vec((0usize..8, 0u64..10_000), 1..6),
    ) {
        run_differential(&caps, &flows, &cancels, &crashes, false,
            |t| 2 + (t as f64 * 1e-12) as u64)?;
    }
}
