//! Fluid-flow model of shared I/O resources.
//!
//! Disks, NICs and servers are *resources* with a fixed capacity in bytes
//! per second. An I/O operation is a *flow*: a number of bytes pushed across
//! a path of resources, optionally subject to a per-flow rate cap (used to
//! model e.g. the EC2 ephemeral-disk first-write penalty, or the per-stream
//! throughput limit of an S3 connection).
//!
//! Active flows receive a **max–min fair share**: the progressive-filling
//! algorithm raises every flow's rate together until a resource saturates
//! (or a flow hits its cap), freezes the affected flows, and continues with
//! the rest. Rates are recomputed whenever a flow starts, completes, or is
//! cancelled. Between recomputations every flow progresses linearly, so the
//! next completion time is exact.
//!
//! This is the classic flow-level network simulation used by SimGrid-style
//! simulators; it captures contention crossovers (e.g. an NFS server NIC
//! saturating as clients are added) without packet-level detail.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Handle to a registered resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Reconstruct a handle from a raw registration index (for iterating
    /// `0..resource_count()`).
    pub fn from_index(ix: usize) -> Self {
        ResourceId(u32::try_from(ix).expect("resource index fits u32"))
    }

    /// The raw index of this resource in the registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u64);

/// Description of a flow to start.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Number of bytes to move. A zero-byte flow completes instantly.
    pub bytes: u64,
    /// Resources the flow crosses; it gets the minimum share across them.
    pub path: Vec<ResourceId>,
    /// Optional per-flow cap in bytes/second (must be > 0 when present).
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    /// A flow of `bytes` across `path` with no per-flow cap.
    pub fn new(bytes: u64, path: Vec<ResourceId>) -> Self {
        FlowSpec {
            bytes,
            path,
            rate_cap: None,
        }
    }

    /// Apply a per-flow rate cap in bytes/second.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }

    /// True when the flow cannot be simulated as a fluid flow (nothing
    /// constrains it) and should be treated as instantaneous.
    pub fn is_instant(&self) -> bool {
        self.bytes == 0 || (self.path.is_empty() && self.rate_cap.is_none())
    }
}

/// Accumulated per-resource statistics.
#[derive(Debug, Clone, Default)]
pub struct ResourceStats {
    /// Total bytes that crossed the resource.
    pub bytes: f64,
    /// Simulated seconds during which at least one flow used the resource.
    pub busy_secs: f64,
    /// Integral of instantaneous utilisation over time (divide by the
    /// observation window for mean utilisation).
    pub util_integral: f64,
}

#[derive(Debug)]
struct Resource {
    name: String,
    capacity: f64,
    stats: ResourceStats,
}

struct ActiveFlow<C> {
    remaining: f64,
    path: Vec<ResourceId>,
    cap: Option<f64>,
    rate: f64,
    completion: C,
}

/// The fluid-flow engine. `C` is an opaque completion payload returned to
/// the caller when a flow finishes (the simulation driver stores event
/// closures here).
pub struct FlowEngine<C> {
    resources: Vec<Resource>,
    flows: BTreeMap<FlowId, ActiveFlow<C>>,
    next_id: u64,
    last_advance: SimTime,
    flows_started: u64,
    flows_completed: u64,
}

impl<C> Default for FlowEngine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> FlowEngine<C> {
    /// An engine with no resources or flows.
    pub fn new() -> Self {
        FlowEngine {
            resources: Vec::new(),
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            flows_started: 0,
            flows_completed: 0,
        }
    }

    /// Register a resource with `capacity` bytes/second. Panics if the
    /// capacity is not finite and positive.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be finite and positive"
        );
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            stats: ResourceStats::default(),
        });
        id
    }

    /// Name of a resource (for reports).
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.index()].name
    }

    /// Capacity of a resource in bytes/second.
    pub fn resource_capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Statistics accumulated for a resource so far.
    pub fn resource_stats(&self, id: ResourceId) -> &ResourceStats {
        &self.resources[id.index()].stats
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// (started, completed) flow counters.
    pub fn flow_counters(&self) -> (u64, u64) {
        (self.flows_started, self.flows_completed)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start a flow at time `now`. The spec must not be instantaneous
    /// (check [`FlowSpec::is_instant`] first); panics otherwise. Panics if a
    /// rate cap is present but not finite and positive, or if the path
    /// names an unregistered resource.
    pub fn start(&mut self, now: SimTime, spec: FlowSpec, completion: C) -> FlowId {
        assert!(!spec.is_instant(), "instant flows must be handled by the caller");
        if let Some(cap) = spec.rate_cap {
            assert!(cap.is_finite() && cap > 0.0, "rate cap must be positive");
        }
        for r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource in path");
        }
        self.advance_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                remaining: spec.bytes as f64,
                path: spec.path,
                cap: spec.rate_cap,
                rate: 0.0,
                completion,
            },
        );
        self.flows_started += 1;
        self.recompute_rates();
        id
    }

    /// Cancel an active flow, returning its completion payload if it was
    /// still active.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<C> {
        self.advance_to(now);
        let flow = self.flows.remove(&id)?;
        self.recompute_rates();
        Some(flow.completion)
    }

    /// The earliest (time, flow) completion among active flows, if any.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let dt = SimDuration::from_secs_f64(f.remaining / f.rate);
            // Never schedule strictly before the present accounting point.
            let t = self.last_advance + dt;
            match best {
                Some((bt, _)) if bt <= t => {}
                _ => best = Some((t, id)),
            }
        }
        best
    }

    /// Complete flow `id` at time `now` (as previously announced by
    /// [`Self::next_completion`]) and return its completion payload.
    pub fn complete(&mut self, now: SimTime, id: FlowId) -> C {
        self.advance_to(now);
        let mut flow = self.flows.remove(&id).expect("completing unknown flow");
        // Rounding the completion instant to nanoseconds can leave a
        // vanishing residue; the flow is done by construction.
        flow.remaining = 0.0;
        self.flows_completed += 1;
        self.recompute_rates();
        flow.completion
    }

    /// Advance accounting to `now`, crediting progress to all active flows.
    fn advance_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time went backwards");
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 {
            let mut used = vec![0.0f64; self.resources.len()];
            let mut any = vec![false; self.resources.len()];
            for f in self.flows.values_mut() {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for r in &f.path {
                    used[r.index()] += moved;
                    any[r.index()] = true;
                }
            }
            for (i, res) in self.resources.iter_mut().enumerate() {
                res.stats.bytes += used[i];
                if any[i] {
                    res.stats.busy_secs += dt;
                }
                res.stats.util_integral += (used[i] / dt / res.capacity).min(1.0) * dt;
            }
        }
        self.last_advance = now;
    }

    /// Progressive-filling max–min fair allocation with per-flow caps.
    fn recompute_rates(&mut self) {
        let n_res = self.resources.len();
        let mut cap_left: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut load = vec![0u32; n_res];

        // Work on a snapshot of flow order for deterministic arithmetic.
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut fixed: Vec<bool> = vec![false; ids.len()];
        let mut rate: Vec<f64> = vec![0.0; ids.len()];

        for (i, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            if f.path.is_empty() {
                // Only a cap constrains this flow.
                rate[i] = f.cap.expect("uncapped pathless flow");
                fixed[i] = true;
            } else {
                for r in &f.path {
                    load[r.index()] += 1;
                }
            }
        }

        loop {
            // Bottleneck candidate from resources.
            let mut share = f64::INFINITY;
            for r in 0..n_res {
                if load[r] > 0 {
                    share = share.min(cap_left[r].max(0.0) / f64::from(load[r]));
                }
            }
            // Bottleneck candidate from per-flow caps.
            let mut min_cap = f64::INFINITY;
            for (i, id) in ids.iter().enumerate() {
                if !fixed[i] {
                    if let Some(c) = self.flows[id].cap {
                        min_cap = min_cap.min(c);
                    }
                }
            }
            if share.is_infinite() && min_cap.is_infinite() {
                break; // no unfixed flows left
            }

            let mut progressed = false;
            if min_cap <= share {
                // Freeze every unfixed flow whose cap equals the bottleneck.
                for (i, id) in ids.iter().enumerate() {
                    if fixed[i] {
                        continue;
                    }
                    let f = &self.flows[id];
                    if f.cap.is_some_and(|c| c <= share && c <= min_cap) {
                        rate[i] = f.cap.unwrap();
                        fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            cap_left[r.index()] -= rate[i];
                            load[r.index()] -= 1;
                        }
                    }
                }
            } else {
                // Freeze every unfixed flow crossing a saturated resource.
                let eps = share * 1e-12;
                let saturated: Vec<bool> = (0..n_res)
                    .map(|r| load[r] > 0 && cap_left[r].max(0.0) / f64::from(load[r]) <= share + eps)
                    .collect();
                for (i, id) in ids.iter().enumerate() {
                    if fixed[i] {
                        continue;
                    }
                    let f = &self.flows[id];
                    if f.path.iter().any(|r| saturated[r.index()]) {
                        rate[i] = share;
                        fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            cap_left[r.index()] -= share;
                            load[r.index()] -= 1;
                        }
                    }
                }
            }
            debug_assert!(progressed, "progressive filling stalled");
            if !progressed {
                break;
            }
        }

        for (i, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("flow vanished").rate = rate[i].max(f64::MIN_POSITIVE);
        }
    }

    /// Instantaneous rate of an active flow (testing/diagnostics).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of an active flow (testing/diagnostics).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        assert_eq!(fe.flow_rate(id), Some(100.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, id);
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn cap_limits_single_flow() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(1000, vec![r]).with_cap(20.0), ());
        assert_eq!(fe.flow_rate(id), Some(20.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut fe: FlowEngine<u32> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 1);
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 2);
        assert_eq!(fe.flow_rate(a), Some(50.0));
        assert_eq!(fe.flow_rate(b), Some(50.0));
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let slow = fe.start(t(0.0), FlowSpec::new(1000, vec![r]).with_cap(10.0), ());
        let fast = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        assert_eq!(fe.flow_rate(slow), Some(10.0));
        assert_eq!(fe.flow_rate(fast), Some(90.0));
    }

    #[test]
    fn max_min_across_two_resources() {
        // Classic example: flow A crosses r1 (cap 100) and r2 (cap 30).
        // Flow B crosses r1 only. A is limited to 30 by r2; B gets 70.
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r1 = fe.add_resource("r1", 100.0);
        let r2 = fe.add_resource("r2", 30.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r1, r2]), ());
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r1]), ());
        let ra = fe.flow_rate(a).unwrap();
        let rb = fe.flow_rate(b).unwrap();
        assert!((ra - 30.0).abs() < 1e-9, "ra={ra}");
        assert!((rb - 70.0).abs() < 1e-9, "rb={rb}");
    }

    #[test]
    fn completion_frees_bandwidth() {
        let mut fe: FlowEngine<u32> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), 1);
        let _b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 2);
        // Both run at 50; A (100 bytes) completes at t=2.
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
        let payload = fe.complete(done, fid);
        assert_eq!(payload, 1);
        // B progressed 100 bytes, 900 left at rate 100 → completes at t=11.
        let (done_b, _) = fe.next_completion().unwrap();
        assert!((done_b.as_secs_f64() - 11.0).abs() < 1e-5, "{done_b}");
    }

    #[test]
    fn arrival_mid_flight_slows_existing_flow() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        // At t=5, A has 500 bytes left; B arrives; both run at 50.
        let _b = fe.start(t(5.0), FlowSpec::new(1000, vec![r]), ());
        assert!((fe.flow_remaining(a).unwrap() - 500.0).abs() < 1e-6);
        assert_eq!(fe.flow_rate(a), Some(50.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert!((done.as_secs_f64() - 15.0).abs() < 1e-5);
    }

    #[test]
    fn cancel_returns_payload_and_frees_capacity() {
        let mut fe: FlowEngine<&'static str> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), "a");
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), "b");
        assert_eq!(fe.cancel(t(1.0), a), Some("a"));
        assert_eq!(fe.cancel(t(1.0), a), None);
        assert_eq!(fe.flow_rate(b), Some(100.0));
    }

    #[test]
    fn zero_byte_flow_is_instant() {
        assert!(FlowSpec::new(0, vec![ResourceId(0)]).is_instant());
        assert!(FlowSpec::new(10, vec![]).is_instant());
        assert!(!FlowSpec::new(10, vec![]).with_cap(5.0).is_instant());
    }

    #[test]
    fn pathless_capped_flow_runs_at_cap() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let id = fe.start(t(0.0), FlowSpec::new(100, vec![]).with_cap(10.0), ());
        assert_eq!(fe.flow_rate(id), Some(10.0));
        let (done, _) = fe.next_completion().unwrap();
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn stats_accumulate_bytes_and_busy_time() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(500, vec![r]), ());
        let (done, _) = fe.next_completion().unwrap();
        fe.complete(done, id);
        let s = fe.resource_stats(r);
        assert!((s.bytes - 500.0).abs() < 1e-6);
        assert!((s.busy_secs - 5.0).abs() < 1e-6);
        assert!((s.util_integral - 5.0).abs() < 1e-4);
    }

    #[test]
    fn many_flows_conserve_capacity() {
        let mut fe: FlowEngine<usize> = FlowEngine::new();
        let r = fe.add_resource("nic", 1000.0);
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(fe.start(t(0.0), FlowSpec::new(10_000, vec![r]), i));
        }
        let total: f64 = ids.iter().map(|id| fe.flow_rate(*id).unwrap()).sum();
        assert!((total - 1000.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical flows: next_completion must consistently pick the
        // lower FlowId.
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), ());
        let _b = fe.start(t(0.0), FlowSpec::new(100, vec![r]), ());
        let (_, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
    }
}
