//! Fluid-flow model of shared I/O resources.
//!
//! Disks, NICs and servers are *resources* with a fixed capacity in bytes
//! per second. An I/O operation is a *flow*: a number of bytes pushed across
//! a path of resources, optionally subject to a per-flow rate cap (used to
//! model e.g. the EC2 ephemeral-disk first-write penalty, or the per-stream
//! throughput limit of an S3 connection).
//!
//! Active flows receive a **max–min fair share**: the progressive-filling
//! algorithm raises every flow's rate together until a resource saturates
//! (or a flow hits its cap), freezes the affected flows, and continues with
//! the rest. Between recomputations every flow progresses linearly, so the
//! next completion time is exact.
//!
//! This is the classic flow-level network simulation used by SimGrid-style
//! simulators; it captures contention crossovers (e.g. an NFS server NIC
//! saturating as clients are added) without packet-level detail.
//!
//! ## Incremental engine
//!
//! A flow arriving, completing or being cancelled can only change the fair
//! shares inside its own **connected component** of the resource↔flow
//! bipartite graph: progressive filling decomposes exactly over components
//! (the bottleneck sequence of one component never reads another's state).
//! The engine exploits this three ways:
//!
//! * **Component-scoped recompute** — each event re-solves only the
//!   component reachable from the affected flow, discovered by a stamped
//!   breadth-first walk over per-resource flow lists. Rates elsewhere are
//!   untouched (they would re-derive to the same bits).
//! * **Lazy completion heap** — instead of scanning every active flow for
//!   the earliest completion, predictions are computed once per rate
//!   change and kept in a binary min-heap keyed `(time, flow id)`.
//!   Per-flow generation counters invalidate superseded entries lazily.
//! * **Lazy accounting** — per-flow remaining bytes and per-resource
//!   statistics are only brought forward when their component is touched
//!   (rates are constant in between, so the update is a single
//!   multiply-add per flow/resource), using reusable scratch buffers
//!   instead of per-event allocations.
//!
//! The reference single-threaded solver with global recompute and a linear
//! completion scan is preserved as `NaiveFlowEngine` in the `naive` module
//! behind the `oracle` feature; a differential property suite drives both
//! engines through identical schedules and checks that rates and
//! completions agree.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Handle to a registered resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Reconstruct a handle from a raw registration index (for iterating
    /// `0..resource_count()`).
    pub fn from_index(ix: usize) -> Self {
        ResourceId(u32::try_from(ix).expect("resource index fits u32"))
    }

    /// The raw index of this resource in the registration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u64);

/// Description of a flow to start.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Number of bytes to move. A zero-byte flow completes instantly.
    pub bytes: u64,
    /// Resources the flow crosses; it gets the minimum share across them.
    pub path: Vec<ResourceId>,
    /// Optional per-flow cap in bytes/second (must be > 0 when present).
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    /// A flow of `bytes` across `path` with no per-flow cap.
    pub fn new(bytes: u64, path: Vec<ResourceId>) -> Self {
        FlowSpec {
            bytes,
            path,
            rate_cap: None,
        }
    }

    /// Apply a per-flow rate cap in bytes/second.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }

    /// True when the flow cannot be simulated as a fluid flow (nothing
    /// constrains it) and should be treated as instantaneous.
    pub fn is_instant(&self) -> bool {
        self.bytes == 0 || (self.path.is_empty() && self.rate_cap.is_none())
    }
}

/// Accumulated per-resource statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceStats {
    /// Total bytes that crossed the resource.
    pub bytes: f64,
    /// Simulated seconds during which at least one flow used the resource.
    pub busy_secs: f64,
    /// Integral of instantaneous utilisation over time (divide by the
    /// observation window for mean utilisation).
    pub util_integral: f64,
}

#[derive(Debug)]
struct Resource {
    name: String,
    capacity: f64,
    /// Slots of the active flows crossing this resource.
    flows: Vec<u32>,
    /// Sum of those flows' current rates (constant between recomputes of
    /// this resource's component).
    rate_sum: f64,
    /// Statistics accumulated up to `stat_sync`.
    stats: ResourceStats,
    stat_sync: SimTime,
}

impl Resource {
    /// Bring `stats` forward to `now` under the constant-rate interval
    /// invariant. Must run *before* this resource's flow list or rates
    /// change.
    fn flush_stats(&mut self, now: SimTime) {
        let dt = now.since(self.stat_sync).as_secs_f64();
        if dt > 0.0 {
            self.stats.bytes += self.rate_sum * dt;
            if !self.flows.is_empty() {
                self.stats.busy_secs += dt;
            }
            self.stats.util_integral += (self.rate_sum / self.capacity).min(1.0) * dt;
        }
        self.stat_sync = now;
    }

    /// `stats` as of `now` without mutating (for `&self` getters).
    fn stats_at(&self, now: SimTime) -> ResourceStats {
        let mut s = self.stats;
        let dt = now.since(self.stat_sync).as_secs_f64();
        if dt > 0.0 {
            s.bytes += self.rate_sum * dt;
            if !self.flows.is_empty() {
                s.busy_secs += dt;
            }
            s.util_integral += (self.rate_sum / self.capacity).min(1.0) * dt;
        }
        s
    }
}

/// One active flow in the slab.
struct Slot<C> {
    /// External id (drives all deterministic orderings).
    id: u64,
    /// Remaining bytes as of `sync`.
    remaining: f64,
    path: Vec<ResourceId>,
    /// Position of this slot inside each path resource's flow list
    /// (parallel to `path`), for O(path) removal.
    path_pos: Vec<u32>,
    cap: Option<f64>,
    rate: f64,
    /// Instant `remaining` was last brought forward.
    sync: SimTime,
    /// Heap-entry generation; entries with an older generation are stale.
    gen: u64,
    completion: Option<C>,
}

/// Reusable per-event buffers (no allocation on the hot path once warm).
#[derive(Default)]
struct Scratch {
    /// Visitation epoch for the stamp vectors below.
    stamp: u64,
    res_stamp: Vec<u64>,
    slot_stamp: Vec<u64>,
    /// The touched component: flow slots (sorted by external id before
    /// solving) and resource indices (BFS discovery order).
    comp_slots: Vec<u32>,
    comp_res: Vec<u32>,
    /// Per-resource local index into `cap_left`/`load`/`saturated`
    /// (valid when `res_stamp` matches `stamp`).
    res_local: Vec<u32>,
    cap_left: Vec<f64>,
    load: Vec<u32>,
    saturated: Vec<bool>,
    /// Per-component-flow solver state, parallel to `comp_slots`.
    fixed: Vec<bool>,
    new_rate: Vec<f64>,
    /// BFS work queue of resource indices.
    res_queue: Vec<u32>,
}

/// The fluid-flow engine. `C` is an opaque completion payload returned to
/// the caller when a flow finishes (the simulation driver stores event
/// closures here).
pub struct FlowEngine<C> {
    resources: Vec<Resource>,
    slots: Vec<Option<Slot<C>>>,
    free: Vec<u32>,
    by_id: HashMap<u64, u32>,
    /// Lazy min-heap of predicted completions `(time, id, gen)`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    next_id: u64,
    last_advance: SimTime,
    flows_started: u64,
    flows_completed: u64,
    scratch: Scratch,
}

impl<C> Default for FlowEngine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> FlowEngine<C> {
    /// An engine with no resources or flows.
    pub fn new() -> Self {
        FlowEngine {
            resources: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            by_id: HashMap::new(),
            heap: BinaryHeap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            flows_started: 0,
            flows_completed: 0,
            scratch: Scratch::default(),
        }
    }

    /// Register a resource with `capacity` bytes/second. Panics if the
    /// capacity is not finite and positive.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be finite and positive"
        );
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            flows: Vec::new(),
            rate_sum: 0.0,
            stats: ResourceStats::default(),
            stat_sync: self.last_advance,
        });
        self.scratch.res_stamp.push(0);
        self.scratch.res_local.push(0);
        id
    }

    /// Name of a resource (for reports).
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.index()].name
    }

    /// Capacity of a resource in bytes/second.
    pub fn resource_capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Statistics accumulated for a resource up to the engine's latest
    /// accounting instant.
    pub fn resource_stats(&self, id: ResourceId) -> ResourceStats {
        self.resources[id.index()].stats_at(self.last_advance)
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// (started, completed) flow counters.
    pub fn flow_counters(&self) -> (u64, u64) {
        (self.flows_started, self.flows_completed)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.by_id.len()
    }

    /// Start a flow at time `now`. The spec must not be instantaneous
    /// (check [`FlowSpec::is_instant`] first); panics otherwise. Panics if a
    /// rate cap is present but not finite and positive, or if the path
    /// names an unregistered resource.
    pub fn start(&mut self, now: SimTime, spec: FlowSpec, completion: C) -> FlowId {
        assert!(
            !spec.is_instant(),
            "instant flows must be handled by the caller"
        );
        if let Some(cap) = spec.rate_cap {
            assert!(cap.is_finite() && cap > 0.0, "rate cap must be positive");
        }
        for r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource in path");
        }
        self.advance_clock(now);
        // Sync the component the new flow is about to join (statistics
        // must close their constant-rate interval before the flow lists
        // change).
        self.collect_component(&spec.path, None);
        self.sync_component(now);

        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows_started += 1;
        let slot = self.alloc_slot(Slot {
            id: id.0,
            remaining: spec.bytes as f64,
            path_pos: Vec::with_capacity(spec.path.len()),
            path: spec.path,
            cap: spec.rate_cap,
            rate: 0.0,
            sync: now,
            gen: 0,
            completion: Some(completion),
        });
        self.attach(slot);
        self.by_id.insert(id.0, slot);
        self.scratch.comp_slots.push(slot);
        self.solve_and_apply(now);
        id
    }

    /// Cancel an active flow, returning its completion payload if it was
    /// still active.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<C> {
        let slot = *self.by_id.get(&id.0)?;
        Some(self.remove_flow(now, id, slot))
    }

    /// Complete flow `id` at time `now` (as previously announced by
    /// [`Self::next_completion`]) and return its completion payload.
    pub fn complete(&mut self, now: SimTime, id: FlowId) -> C {
        let slot = *self.by_id.get(&id.0).expect("completing unknown flow");
        self.flows_completed += 1;
        self.remove_flow(now, id, slot)
    }

    /// The earliest (time, flow) completion among active flows, if any.
    /// Takes `&mut self` to discard stale heap entries.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        while let Some(Reverse((t, id, gen))) = self.heap.peek().copied() {
            let live = self
                .by_id
                .get(&id)
                .and_then(|&s| self.slots[s as usize].as_ref())
                .is_some_and(|f| f.gen == gen);
            if live {
                return Some((t, FlowId(id)));
            }
            self.heap.pop();
        }
        None
    }

    /// Instantaneous rate of an active flow (testing/diagnostics).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        let slot = *self.by_id.get(&id.0)?;
        self.slots[slot as usize].as_ref().map(|f| f.rate)
    }

    /// Remaining bytes of an active flow as of the engine's latest
    /// accounting instant (testing/diagnostics).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        let slot = *self.by_id.get(&id.0)?;
        self.slots[slot as usize].as_ref().map(|f| {
            let dt = self.last_advance.since(f.sync).as_secs_f64();
            (f.remaining - f.rate * dt).max(0.0)
        })
    }

    // ---- internals ----------------------------------------------------

    fn advance_clock(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time went backwards");
        self.last_advance = self.last_advance.max(now);
    }

    fn alloc_slot(&mut self, flow: Slot<C>) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(flow);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("too many flows");
            self.slots.push(Some(flow));
            self.scratch.slot_stamp.push(0);
            slot
        }
    }

    /// Insert `slot` into its path resources' flow lists.
    fn attach(&mut self, slot: u32) {
        let f = self.slots[slot as usize]
            .as_mut()
            .expect("attach to vacant slot");
        for r in &f.path {
            let list = &mut self.resources[r.index()].flows;
            f.path_pos
                .push(u32::try_from(list.len()).expect("flow list fits u32"));
            list.push(slot);
        }
    }

    /// Remove `slot` from its path resources' flow lists (swap-remove,
    /// patching the moved flow's back-pointer). A flow can cross the same
    /// resource more than once, so the moved flow's matching path entry is
    /// found by its recorded position, not just the resource id.
    fn detach(&mut self, slot: u32) {
        let mut f = self.slots[slot as usize]
            .take()
            .expect("detach of vacant slot");
        for k in 0..f.path.len() {
            let r = f.path[k];
            let pos = f.path_pos[k];
            let list = &mut self.resources[r.index()].flows;
            let moved = *list.last().expect("flow list empty on detach");
            list.swap_remove(pos as usize);
            if (pos as usize) >= list.len() {
                continue; // removed the tail itself; nothing moved
            }
            let old_tail = u32::try_from(list.len()).expect("flow list fits u32");
            if moved == slot {
                // The tail was another crossing of this same flow.
                for j in 0..f.path.len() {
                    if f.path[j].index() == r.index() && f.path_pos[j] == old_tail {
                        f.path_pos[j] = pos;
                        break;
                    }
                }
            } else {
                let mf = self.slots[moved as usize]
                    .as_mut()
                    .expect("moved slot vacant");
                for (pr, pp) in mf.path.iter().zip(mf.path_pos.iter_mut()) {
                    if pr.index() == r.index() && *pp == old_tail {
                        *pp = pos;
                        break;
                    }
                }
            }
        }
        self.slots[slot as usize] = Some(f);
    }

    fn remove_flow(&mut self, now: SimTime, id: FlowId, slot: u32) -> C {
        self.advance_clock(now);
        let path: Vec<ResourceId> = self.slots[slot as usize]
            .as_ref()
            .expect("removing vacant slot")
            .path
            .clone();
        // The component is discovered while the flow is still attached, so
        // parts that the removal splits apart are all re-solved this event.
        self.collect_component(&path, Some(slot));
        self.sync_component(now);
        self.detach(slot);
        self.scratch.comp_slots.retain(|&s| s != slot);
        let f = self.slots[slot as usize].take().expect("slot vanished");
        self.by_id.remove(&id.0);
        self.free.push(slot);
        self.solve_and_apply(now);
        self.maybe_shrink_heap();
        f.completion.expect("completion payload taken twice")
    }

    /// Stamped BFS over the resource↔flow bipartite graph, seeded from
    /// `seed_res` (and optionally a seed flow). Fills `scratch.comp_slots`
    /// and `scratch.comp_res`.
    fn collect_component(&mut self, seed_res: &[ResourceId], seed_slot: Option<u32>) {
        let sc = &mut self.scratch;
        sc.stamp += 1;
        let stamp = sc.stamp;
        sc.comp_slots.clear();
        sc.comp_res.clear();
        sc.res_queue.clear();
        if let Some(s) = seed_slot {
            sc.slot_stamp[s as usize] = stamp;
            sc.comp_slots.push(s);
        }
        for r in seed_res {
            let ri = r.index();
            if sc.res_stamp[ri] != stamp {
                sc.res_stamp[ri] = stamp;
                sc.comp_res.push(r.0);
                sc.res_queue.push(r.0);
            }
        }
        while let Some(ri) = sc.res_queue.pop() {
            for &s in &self.resources[ri as usize].flows {
                if sc.slot_stamp[s as usize] == stamp {
                    continue;
                }
                sc.slot_stamp[s as usize] = stamp;
                sc.comp_slots.push(s);
                let f = self.slots[s as usize].as_ref().expect("listed slot vacant");
                for pr in &f.path {
                    let pi = pr.index();
                    if sc.res_stamp[pi] != stamp {
                        sc.res_stamp[pi] = stamp;
                        sc.comp_res.push(pr.0);
                        sc.res_queue.push(pr.0);
                    }
                }
            }
        }
    }

    /// Bring every flow and resource of the collected component forward to
    /// `now` (rates were constant since their last sync).
    fn sync_component(&mut self, now: SimTime) {
        for &s in &self.scratch.comp_slots {
            let f = self.slots[s as usize]
                .as_mut()
                .expect("sync of vacant slot");
            let dt = now.since(f.sync).as_secs_f64();
            if dt > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            f.sync = now;
        }
        for &r in &self.scratch.comp_res {
            self.resources[r as usize].flush_stats(now);
        }
    }

    /// Progressive-filling max–min fair allocation over the collected
    /// component, then rate/heap/statistics bookkeeping. Flows are solved
    /// in ascending external-id order so the arithmetic matches a global
    /// recompute restricted to this component bit for bit.
    fn solve_and_apply(&mut self, now: SimTime) {
        let sc = &mut self.scratch;
        sc.comp_slots.sort_unstable_by_key(|&s| {
            self.slots[s as usize]
                .as_ref()
                .expect("solving vacant slot")
                .id
        });
        let k = sc.comp_slots.len();
        let nr = sc.comp_res.len();

        sc.fixed.clear();
        sc.fixed.resize(k, false);
        sc.new_rate.clear();
        sc.new_rate.resize(k, 0.0);
        sc.cap_left.clear();
        sc.load.clear();
        sc.saturated.clear();
        sc.saturated.resize(nr, false);
        for (li, &r) in sc.comp_res.iter().enumerate() {
            sc.res_local[r as usize] = u32::try_from(li).expect("component fits u32");
            sc.cap_left.push(self.resources[r as usize].capacity);
            sc.load.push(0);
        }

        for (i, &s) in sc.comp_slots.iter().enumerate() {
            let f = self.slots[s as usize]
                .as_ref()
                .expect("solving vacant slot");
            if f.path.is_empty() {
                // Only a cap constrains this flow.
                sc.new_rate[i] = f.cap.expect("uncapped pathless flow");
                sc.fixed[i] = true;
            } else {
                for r in &f.path {
                    sc.load[sc.res_local[r.index()] as usize] += 1;
                }
            }
        }

        loop {
            // Bottleneck candidate from resources.
            let mut share = f64::INFINITY;
            for li in 0..nr {
                if sc.load[li] > 0 {
                    share = share.min(sc.cap_left[li].max(0.0) / f64::from(sc.load[li]));
                }
            }
            // Bottleneck candidate from per-flow caps.
            let mut min_cap = f64::INFINITY;
            for (i, &s) in sc.comp_slots.iter().enumerate() {
                if !sc.fixed[i] {
                    if let Some(c) = self.slots[s as usize].as_ref().expect("vacant").cap {
                        min_cap = min_cap.min(c);
                    }
                }
            }
            if share.is_infinite() && min_cap.is_infinite() {
                break; // no unfixed flows left
            }

            let mut progressed = false;
            if min_cap <= share {
                // Freeze every unfixed flow whose cap equals the bottleneck.
                for (i, &s) in sc.comp_slots.iter().enumerate() {
                    if sc.fixed[i] {
                        continue;
                    }
                    let f = self.slots[s as usize].as_ref().expect("vacant");
                    if f.cap.is_some_and(|c| c <= share && c <= min_cap) {
                        sc.new_rate[i] = f.cap.unwrap();
                        sc.fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            let li = sc.res_local[r.index()] as usize;
                            sc.cap_left[li] -= sc.new_rate[i];
                            sc.load[li] -= 1;
                        }
                    }
                }
            } else {
                // Freeze every unfixed flow crossing a saturated resource.
                let eps = share * 1e-12;
                for li in 0..nr {
                    sc.saturated[li] = sc.load[li] > 0
                        && sc.cap_left[li].max(0.0) / f64::from(sc.load[li]) <= share + eps;
                }
                for (i, &s) in sc.comp_slots.iter().enumerate() {
                    if sc.fixed[i] {
                        continue;
                    }
                    let f = self.slots[s as usize].as_ref().expect("vacant");
                    if f.path
                        .iter()
                        .any(|r| sc.saturated[sc.res_local[r.index()] as usize])
                    {
                        sc.new_rate[i] = share;
                        sc.fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            let li = sc.res_local[r.index()] as usize;
                            sc.cap_left[li] -= share;
                            sc.load[li] -= 1;
                        }
                    }
                }
            }
            debug_assert!(progressed, "progressive filling stalled");
            if !progressed {
                break;
            }
        }

        // Apply rates and push fresh completion predictions for every flow
        // of the component (its remaining bytes were just synced to `now`,
        // so the prediction is exactly what the reference engine's linear
        // scan would derive). Superseded heap entries go stale via `gen`.
        for (i, &s) in sc.comp_slots.iter().enumerate() {
            let f = self.slots[s as usize].as_mut().expect("vacant");
            f.rate = sc.new_rate[i].max(f64::MIN_POSITIVE);
            f.gen += 1;
            let eta = SimDuration::from_secs_f64(f.remaining / f.rate);
            self.heap.push(Reverse((now + eta, f.id, f.gen)));
        }

        // Per-resource rate sums open a fresh constant-rate interval.
        for &r in &sc.comp_res {
            let res = &mut self.resources[r as usize];
            let mut sum = 0.0;
            for &s in &res.flows {
                sum += self.slots[s as usize].as_ref().expect("vacant").rate;
            }
            res.rate_sum = sum;
            debug_assert_eq!(res.stat_sync, now, "stats not flushed before re-rating");
        }
    }

    /// Bound heap growth: when stale entries dominate, rebuild from the
    /// live predictions.
    fn maybe_shrink_heap(&mut self) {
        let live = self.by_id.len();
        if self.heap.len() > 64 && self.heap.len() > 4 * live + 16 {
            let old = std::mem::take(&mut self.heap);
            self.heap = old
                .into_iter()
                .filter(|Reverse((_, id, gen))| {
                    self.by_id
                        .get(id)
                        .and_then(|&s| self.slots[s as usize].as_ref())
                        .is_some_and(|f| f.gen == *gen)
                })
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        assert_eq!(fe.flow_rate(id), Some(100.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, id);
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn cap_limits_single_flow() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(1000, vec![r]).with_cap(20.0), ());
        assert_eq!(fe.flow_rate(id), Some(20.0));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut fe: FlowEngine<u32> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 1);
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 2);
        assert_eq!(fe.flow_rate(a), Some(50.0));
        assert_eq!(fe.flow_rate(b), Some(50.0));
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let slow = fe.start(t(0.0), FlowSpec::new(1000, vec![r]).with_cap(10.0), ());
        let fast = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        assert_eq!(fe.flow_rate(slow), Some(10.0));
        assert_eq!(fe.flow_rate(fast), Some(90.0));
    }

    #[test]
    fn max_min_across_two_resources() {
        // Classic example: flow A crosses r1 (cap 100) and r2 (cap 30).
        // Flow B crosses r1 only. A is limited to 30 by r2; B gets 70.
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r1 = fe.add_resource("r1", 100.0);
        let r2 = fe.add_resource("r2", 30.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r1, r2]), ());
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r1]), ());
        let ra = fe.flow_rate(a).unwrap();
        let rb = fe.flow_rate(b).unwrap();
        assert!((ra - 30.0).abs() < 1e-9, "ra={ra}");
        assert!((rb - 70.0).abs() < 1e-9, "rb={rb}");
    }

    #[test]
    fn completion_frees_bandwidth() {
        let mut fe: FlowEngine<u32> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), 1);
        let _b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 2);
        // Both run at 50; A (100 bytes) completes at t=2.
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
        let payload = fe.complete(done, fid);
        assert_eq!(payload, 1);
        // B progressed 100 bytes, 900 left at rate 100 → completes at t=11.
        let (done_b, _) = fe.next_completion().unwrap();
        assert!((done_b.as_secs_f64() - 11.0).abs() < 1e-5, "{done_b}");
    }

    #[test]
    fn arrival_mid_flight_slows_existing_flow() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        // At t=5, A has 500 bytes left; B arrives; both run at 50.
        let _b = fe.start(t(5.0), FlowSpec::new(1000, vec![r]), ());
        assert!((fe.flow_remaining(a).unwrap() - 500.0).abs() < 1e-6);
        assert_eq!(fe.flow_rate(a), Some(50.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert!((done.as_secs_f64() - 15.0).abs() < 1e-5);
    }

    #[test]
    fn cancel_returns_payload_and_frees_capacity() {
        let mut fe: FlowEngine<&'static str> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), "a");
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), "b");
        assert_eq!(fe.cancel(t(1.0), a), Some("a"));
        assert_eq!(fe.cancel(t(1.0), a), None);
        assert_eq!(fe.flow_rate(b), Some(100.0));
    }

    #[test]
    fn zero_byte_flow_is_instant() {
        assert!(FlowSpec::new(0, vec![ResourceId(0)]).is_instant());
        assert!(FlowSpec::new(10, vec![]).is_instant());
        assert!(!FlowSpec::new(10, vec![]).with_cap(5.0).is_instant());
    }

    #[test]
    fn pathless_capped_flow_runs_at_cap() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let id = fe.start(t(0.0), FlowSpec::new(100, vec![]).with_cap(10.0), ());
        assert_eq!(fe.flow_rate(id), Some(10.0));
        let (done, _) = fe.next_completion().unwrap();
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn stats_accumulate_bytes_and_busy_time() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(500, vec![r]), ());
        let (done, _) = fe.next_completion().unwrap();
        fe.complete(done, id);
        let s = fe.resource_stats(r);
        assert!((s.bytes - 500.0).abs() < 1e-6);
        assert!((s.busy_secs - 5.0).abs() < 1e-6);
        assert!((s.util_integral - 5.0).abs() < 1e-4);
    }

    #[test]
    fn many_flows_conserve_capacity() {
        let mut fe: FlowEngine<usize> = FlowEngine::new();
        let r = fe.add_resource("nic", 1000.0);
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(fe.start(t(0.0), FlowSpec::new(10_000, vec![r]), i));
        }
        let total: f64 = ids.iter().map(|id| fe.flow_rate(*id).unwrap()).sum();
        assert!((total - 1000.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical flows: next_completion must consistently pick the
        // lower FlowId.
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), ());
        let _b = fe.start(t(0.0), FlowSpec::new(100, vec![r]), ());
        let (_, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
    }

    #[test]
    fn disjoint_components_do_not_disturb_each_other() {
        // A flow on disk A keeps its rate (and prediction) bit-for-bit
        // when traffic starts and stops on an unrelated disk B.
        let mut fe: FlowEngine<u8> = FlowEngine::new();
        let ra = fe.add_resource("a", 100.0);
        let rb = fe.add_resource("b", 100.0);
        let fa = fe.start(t(0.0), FlowSpec::new(1000, vec![ra]), 0);
        let before = fe.next_completion().unwrap();
        let fb = fe.start(t(1.0), FlowSpec::new(50, vec![rb]), 1);
        assert_eq!(fe.flow_rate(fa), Some(100.0));
        assert_eq!(fe.next_completion().unwrap(), (t(1.5), fb));
        fe.cancel(t(2.0), fb);
        // A's prediction is untouched by B's entire lifecycle.
        let (ta, ida) = fe.next_completion().unwrap();
        assert_eq!((ta, ida), before);
        assert_eq!(ida, fa);
    }

    #[test]
    fn slab_reuses_slots_without_confusing_ids() {
        let mut fe: FlowEngine<u32> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), 1);
        assert_eq!(fe.complete(t(1.0), a), 1);
        // The next flow reuses A's slot but must be a distinct id.
        let b = fe.start(t(1.0), FlowSpec::new(200, vec![r]), 2);
        assert_ne!(a, b);
        assert_eq!(fe.flow_rate(a), None);
        assert_eq!(fe.flow_rate(b), Some(100.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, b);
        assert!((done.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn heap_discards_stale_predictions() {
        let mut fe: FlowEngine<()> = FlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        // Repeated arrivals/cancellations re-rate A many times; every
        // superseded prediction must be ignored.
        for i in 0..100u64 {
            let tt = t(0.001 * i as f64);
            let b = fe.start(tt, FlowSpec::new(1_000_000, vec![r]), ());
            fe.cancel(tt, b);
        }
        assert_eq!(fe.flow_rate(a), Some(100.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-4, "{done}");
    }
}
