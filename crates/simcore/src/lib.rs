//! # simcore — deterministic discrete-event simulation kernel
//!
//! The foundation of the `ec2-workflow-sim` reproduction of *Data Sharing
//! Options for Scientific Workflows on Amazon EC2* (Juve et al., SC 2010).
//!
//! Three pieces:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`flow`] — a fluid-flow model of shared I/O resources with max–min
//!   fair bandwidth sharing and per-flow rate caps ([`FlowEngine`]).
//! * [`sim`] — the event-calendar driver ([`Sim`]) that runs closures over
//!   a caller-owned world and completes flows at exact instants.
//!
//! Determinism: event ties break by scheduling order, flow ties by flow id,
//! and all randomness comes from named [`DetRng`] streams under a single
//! experiment seed.
//!
//! ```
//! use simcore::{FlowSpec, Sim, SimTime};
//!
//! // Two 100-byte transfers share a 100 B/s disk fairly: both finish at
//! // t = 2 s, not one at 1 s and one at 2 s.
//! let mut sim: Sim<Vec<f64>> = Sim::new();
//! let disk = sim.add_resource("disk", 100.0);
//! for _ in 0..2 {
//!     let spec = FlowSpec::new(100, vec![disk]);
//!     sim.schedule_at(SimTime::ZERO, move |s, _| {
//!         s.start_flow(spec, |s, done: &mut Vec<f64>| {
//!             done.push(s.now().as_secs_f64());
//!         });
//!     });
//! }
//! let mut done = Vec::new();
//! sim.run(&mut done);
//! assert!((done[0] - 2.0).abs() < 1e-9 && (done[1] - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod flow;
#[cfg(any(test, feature = "oracle"))]
pub mod naive;
pub mod rng;
pub mod sim;
pub mod time;

pub use flow::{FlowEngine, FlowId, FlowSpec, ResourceId, ResourceStats};
pub use rng::DetRng;
pub use sim::{EventFn, Sim};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
