//! The simulation driver: a clock, an event calendar, and the fluid-flow
//! engine, woven together.
//!
//! Events are `FnOnce(&mut Sim<W>, &mut W)` closures over a caller-owned
//! world `W`. Flow completions fire closures of the same shape. Two events
//! at the same instant fire in scheduling order (a monotonically increasing
//! sequence number breaks ties), and calendar events win ties against flow
//! completions — both rules are deterministic.

use crate::flow::{FlowEngine, FlowId, FlowSpec, ResourceId, ResourceStats};
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wfobs::{Event, ObsHandle};

/// An event handler: runs once with access to the simulation and the world.
pub type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>, &mut W)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event simulation over a world `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    flows: FlowEngine<EventFn<W>>,
    events_fired: u64,
    /// Optional hard stop; `run` returns once the clock would pass it.
    horizon: Option<SimTime>,
    obs: ObsHandle,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// An empty simulation at `t = 0`.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            flows: FlowEngine::new(),
            events_fired: 0,
            horizon: None,
            obs: ObsHandle::disabled(),
        }
    }

    /// Attach an observability bus. The simulation loop drives its clock
    /// and reports flow lifecycle events; resources registered so far are
    /// re-announced so the bus knows every label.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        if obs.enabled() {
            for ix in 0..self.flows.resource_count() {
                obs.register_resource(self.flows.resource_name(ResourceId::from_index(ix)));
            }
        }
        self.obs = obs;
    }

    /// The attached observability bus (the null handle when none is).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Set a horizon: `run` stops before executing anything later than `t`.
    /// Used as a runaway guard in tests.
    pub fn set_horizon(&mut self, t: SimTime) {
        self.horizon = Some(t);
    }

    /// Register a shared resource (disk, NIC, server) with capacity in
    /// bytes/second.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity_bps: f64) -> ResourceId {
        let id = self.flows.add_resource(name, capacity_bps);
        if self.obs.enabled() {
            self.obs.register_resource(self.flows.resource_name(id));
        }
        id
    }

    /// Statistics for a resource, brought forward to the engine's latest
    /// accounting instant.
    pub fn resource_stats(&self, id: ResourceId) -> ResourceStats {
        self.flows.resource_stats(id)
    }

    /// Name of a resource.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        self.flows.resource_name(id)
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.flows.resource_count()
    }

    /// (started, completed) flow counters.
    pub fn flow_counters(&self) -> (u64, u64) {
        self.flows.flow_counters()
    }

    /// Schedule `f` at absolute time `t` (clamped to the present if `t` is
    /// in the past).
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        let time = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` after a delay.
    pub fn schedule_in(&mut self, d: SimDuration, f: impl FnOnce(&mut Sim<W>, &mut W) + 'static) {
        self.schedule_at(self.now + d, f);
    }

    /// Start a fluid flow; `done` fires when the last byte arrives.
    /// Instantaneous specs (zero bytes, or unconstrained) degrade to an
    /// immediate event.
    pub fn start_flow(
        &mut self,
        spec: FlowSpec,
        done: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) -> Option<FlowId> {
        if spec.is_instant() {
            self.schedule_at(self.now, done);
            None
        } else {
            let path = if self.obs.enabled() {
                spec.path.clone()
            } else {
                Vec::new()
            };
            let bytes = spec.bytes;
            let id = self.flows.start(self.now, spec, Box::new(done));
            if self.obs.enabled() {
                let rate = self.flows.flow_rate(id).unwrap_or(0.0);
                self.obs.emit(Event::FlowStart {
                    id: id.0,
                    bytes,
                    rate_bits: rate.to_bits(),
                });
                for r in path {
                    self.obs.emit(Event::FlowRes {
                        id: id.0,
                        resource: r.0,
                    });
                }
            }
            Some(id)
        }
    }

    /// Cancel an active flow; its completion closure is dropped. Returns
    /// true if the flow was still active.
    pub fn cancel_flow(&mut self, id: FlowId) -> bool {
        let cancelled = self.flows.cancel(self.now, id).is_some();
        if cancelled {
            self.obs.emit(Event::FlowCancel { id: id.0 });
        }
        cancelled
    }

    /// Run until no events or flows remain (or the horizon is reached).
    pub fn run(&mut self, world: &mut W) {
        loop {
            let tq = self.queue.peek().map(|s| s.time);
            let tf = self.flows.next_completion();
            let next = match (tq, tf) {
                (None, None) => break,
                (Some(q), None) => Step::Event(q),
                (None, Some((t, id))) => Step::Flow(t, id),
                (Some(q), Some((t, id))) => {
                    if q <= t {
                        Step::Event(q)
                    } else {
                        Step::Flow(t, id)
                    }
                }
            };
            match next {
                Step::Event(t) => {
                    if self.past_horizon(t) {
                        break;
                    }
                    let ev = self.queue.pop().expect("peeked event vanished");
                    self.now = t;
                    self.obs.set_now(t.as_nanos());
                    self.events_fired += 1;
                    (ev.f)(self, world);
                }
                Step::Flow(t, id) => {
                    if self.past_horizon(t) {
                        break;
                    }
                    self.now = self.now.max(t);
                    self.obs.set_now(self.now.as_nanos());
                    let done = self.flows.complete(self.now, id);
                    self.events_fired += 1;
                    self.obs.emit(Event::FlowEnd { id: id.0 });
                    done(self, world);
                }
            }
        }
    }

    fn past_horizon(&self, t: SimTime) -> bool {
        self.horizon.is_some_and(|h| t > h)
    }
}

enum Step {
    Event(SimTime),
    Flow(SimTime, FlowId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(f64, &'static str)>,
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(secs(2.0), |s, w| w.log.push((s.now().as_secs_f64(), "b")));
        sim.schedule_at(secs(1.0), |s, w| w.log.push((s.now().as_secs_f64(), "a")));
        sim.schedule_at(secs(3.0), |s, w| w.log.push((s.now().as_secs_f64(), "c")));
        sim.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(w.log[2].0, 3.0);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            sim.schedule_at(secs(1.0), move |_, w| w.log.push((1.0, name)));
        }
        sim.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(secs(1.0), |s, _| {
            s.schedule_in(SimDuration::from_secs(2), |s, w| {
                w.log.push((s.now().as_secs_f64(), "chained"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(3.0, "chained")]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(secs(5.0), |s, _| {
            s.schedule_at(secs(1.0), |s, w| {
                w.log.push((s.now().as_secs_f64(), "late"))
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(5.0, "late")]);
    }

    #[test]
    fn flow_completion_fires_closure_at_right_time() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 100.0);
        sim.schedule_at(secs(0.0), move |s, _| {
            s.start_flow(FlowSpec::new(1000, vec![disk]), |s, w| {
                w.log.push((s.now().as_secs_f64(), "flow-done"));
            });
        });
        sim.run(&mut w);
        assert_eq!(w.log.len(), 1);
        assert!((w.log[0].0 - 10.0).abs() < 1e-6, "{:?}", w.log);
    }

    #[test]
    fn instant_flow_degrades_to_event() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(secs(1.0), |s, _| {
            let id = s.start_flow(FlowSpec::new(0, vec![]), |s, w| {
                w.log.push((s.now().as_secs_f64(), "instant"));
            });
            assert!(id.is_none());
        });
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1.0, "instant")]);
    }

    #[test]
    fn event_beats_flow_on_tie() {
        // A flow completing at t=10 and an event at t=10: event first.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 100.0);
        sim.schedule_at(secs(0.0), move |s, _| {
            s.start_flow(FlowSpec::new(1000, vec![disk]), |_, w| {
                w.log.push((10.0, "flow"))
            });
        });
        sim.schedule_at(secs(10.0), |_, w| w.log.push((10.0, "event")));
        sim.run(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["event", "flow"]);
    }

    #[test]
    fn cancel_flow_prevents_completion() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 100.0);
        let handle: Rc<RefCell<Option<crate::flow::FlowId>>> = Rc::new(RefCell::new(None));
        let h2 = handle.clone();
        sim.schedule_at(secs(0.0), move |s, _| {
            let id = s.start_flow(FlowSpec::new(1000, vec![disk]), |_, w| {
                w.log.push((0.0, "should-not-fire"));
            });
            *h2.borrow_mut() = id;
        });
        let h3 = handle.clone();
        sim.schedule_at(secs(1.0), move |s, _| {
            let id = h3.borrow().expect("flow started");
            assert!(s.cancel_flow(id));
        });
        sim.run(&mut w);
        assert!(w.log.is_empty());
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.set_horizon(secs(5.0));
        sim.schedule_at(secs(1.0), |_, w| w.log.push((1.0, "in")));
        sim.schedule_at(secs(10.0), |_, w| w.log.push((10.0, "out")));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1.0, "in")]);
    }

    #[test]
    fn clock_is_monotonic_through_mixed_workload() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let disk = sim.add_resource("disk", 10.0);
        for i in 0..20u64 {
            sim.schedule_at(secs(i as f64 * 0.3), move |s, _| {
                s.start_flow(FlowSpec::new(7 + i, vec![disk]), move |s, w| {
                    w.log.push((s.now().as_secs_f64(), "f"));
                });
            });
        }
        sim.run(&mut w);
        assert_eq!(w.log.len(), 20);
        for pair in w.log.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time went backwards: {pair:?}");
        }
    }
}
