//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation so that event ordering is exact and runs are reproducible
//! bit-for-bit. Floating-point seconds are only used at the edges (rate
//! computations in the fluid-flow engine and human-readable output).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock (nanoseconds since t=0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from (possibly fractional) seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// One nanosecond — the smallest representable non-zero duration.
    pub const TICK: SimDuration = SimDuration(1);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        return 0;
    }
    let ns = secs * NANOS_PER_SEC as f64;
    // Round to nearest; clamp to the representable range.
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_epoch() {
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
        assert_eq!(SimTime::ZERO.as_secs_f64(), 0.0);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!(b.since(a).as_nanos(), 5);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn secs_round_trip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_secs_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn huge_secs_saturate() {
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.5)), "2.500s");
    }
}
