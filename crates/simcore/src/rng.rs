//! Deterministic random number streams.
//!
//! Every stochastic component of the simulator draws from its own named
//! stream derived from a single experiment seed, so that (a) two runs with
//! the same seed are bit-identical, and (b) changing how one component uses
//! randomness does not perturb the draws seen by another.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A seeded, named random stream.
///
/// Streams are cheap to construct: `DetRng::stream(seed, "montage.cpu")`.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
}

impl DetRng {
    /// Create a stream for `label` under the experiment-wide `seed`.
    ///
    /// The label is folded into the seed with FNV-1a so distinct labels get
    /// decorrelated streams.
    pub fn stream(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mixed = seed ^ h.rotate_left(17);
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(mixed),
        }
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer draw in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Standard normal draw via Box–Muller (avoids a `rand_distr`
    /// dependency).
    pub fn standard_normal(&mut self) -> f64 {
        // u1 in (0,1] so ln(u1) is finite.
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation, truncated
    /// below at `floor` (useful for service times that must stay positive).
    pub fn normal_at_least(&mut self, mean: f64, sd: f64, floor: f64) -> f64 {
        (mean + sd * self.standard_normal()).max(floor)
    }

    /// Log-normal draw parameterised by the *target* mean and a coefficient
    /// of variation (sd/mean of the resulting distribution).
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::stream(42, "x");
        let mut b = DetRng::stream(42, "x");
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = DetRng::stream(42, "x");
        let mut b = DetRng::stream(42, "y");
        let va: Vec<u64> = (0..8).map(|_| a.uniform(0.0, 1.0).to_bits()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.uniform(0.0, 1.0).to_bits()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = DetRng::stream(1, "x");
        let mut b = DetRng::stream(2, "x");
        assert_ne!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = DetRng::stream(7, "u");
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_empty_range_returns_lo() {
        let mut r = DetRng::stream(7, "u");
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn normal_at_least_respects_floor() {
        let mut r = DetRng::stream(7, "n");
        for _ in 0..1000 {
            assert!(r.normal_at_least(1.0, 10.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = DetRng::stream(11, "sn");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn lognormal_mean_cv_hits_target_mean() {
        let mut r = DetRng::stream(13, "ln");
        let n = 40_000;
        let target = 5.0;
        let xs: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(target, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - target).abs() / target < 0.03, "mean={mean}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_degenerate_cases() {
        let mut r = DetRng::stream(13, "ln");
        assert_eq!(r.lognormal_mean_cv(0.0, 0.5), 0.0);
        assert_eq!(r.lognormal_mean_cv(3.0, 0.0), 3.0);
    }

    #[test]
    fn index_in_range() {
        let mut r = DetRng::stream(3, "i");
        for _ in 0..100 {
            assert!(r.index(5) < 5);
        }
    }
}
