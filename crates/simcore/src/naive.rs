//! Reference fluid-flow solver (the pre-incremental engine), preserved as a
//! differential-testing oracle behind the `oracle` feature.
//!
//! [`NaiveFlowEngine`] recomputes the max–min fair allocation globally on
//! every event (O(F) per progressive-filling round over *all* flows),
//! advances every flow's remaining bytes stepwise at every event, and scans
//! all active flows linearly in `next_completion`. That is O(F²) over a
//! workload of F flows — unusable at Montage scale, but trivially correct.
//! The production [`crate::FlowEngine`] must agree with it on rates and
//! completion order; `tests/prop_flow_differential.rs` enforces this.

use crate::flow::{FlowId, FlowSpec, ResourceId, ResourceStats};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug)]
struct Resource {
    name: String,
    capacity: f64,
    stats: ResourceStats,
}

struct ActiveFlow<C> {
    remaining: f64,
    path: Vec<ResourceId>,
    cap: Option<f64>,
    rate: f64,
    completion: C,
}

/// The reference fluid-flow engine: global recompute, stepwise accounting,
/// linear completion scan. Semantics (and float arithmetic, flow for flow)
/// match the engine this crate shipped before the incremental rewrite.
pub struct NaiveFlowEngine<C> {
    resources: Vec<Resource>,
    flows: BTreeMap<FlowId, ActiveFlow<C>>,
    next_id: u64,
    last_advance: SimTime,
    flows_started: u64,
    flows_completed: u64,
}

impl<C> Default for NaiveFlowEngine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> NaiveFlowEngine<C> {
    /// An engine with no resources or flows.
    pub fn new() -> Self {
        NaiveFlowEngine {
            resources: Vec::new(),
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            flows_started: 0,
            flows_completed: 0,
        }
    }

    /// Register a resource with `capacity` bytes/second.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be finite and positive"
        );
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            stats: ResourceStats::default(),
        });
        id
    }

    /// Name of a resource (for reports).
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.index()].name
    }

    /// Capacity of a resource in bytes/second.
    pub fn resource_capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Statistics accumulated for a resource so far.
    pub fn resource_stats(&self, id: ResourceId) -> ResourceStats {
        self.resources[id.index()].stats
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// (started, completed) flow counters.
    pub fn flow_counters(&self) -> (u64, u64) {
        (self.flows_started, self.flows_completed)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start a flow at time `now`; see [`crate::FlowEngine::start`].
    pub fn start(&mut self, now: SimTime, spec: FlowSpec, completion: C) -> FlowId {
        assert!(
            !spec.is_instant(),
            "instant flows must be handled by the caller"
        );
        if let Some(cap) = spec.rate_cap {
            assert!(cap.is_finite() && cap > 0.0, "rate cap must be positive");
        }
        for r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource in path");
        }
        self.advance_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            ActiveFlow {
                remaining: spec.bytes as f64,
                path: spec.path,
                cap: spec.rate_cap,
                rate: 0.0,
                completion,
            },
        );
        self.flows_started += 1;
        self.recompute_rates();
        id
    }

    /// Cancel an active flow, returning its completion payload if it was
    /// still active.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<C> {
        self.advance_to(now);
        let flow = self.flows.remove(&id)?;
        self.recompute_rates();
        Some(flow.completion)
    }

    /// The earliest (time, flow) completion among active flows, if any.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for (&id, f) in &self.flows {
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let dt = SimDuration::from_secs_f64(f.remaining / f.rate);
            // Never schedule strictly before the present accounting point.
            let t = self.last_advance + dt;
            match best {
                Some((bt, _)) if bt <= t => {}
                _ => best = Some((t, id)),
            }
        }
        best
    }

    /// Complete flow `id` at time `now` and return its completion payload.
    pub fn complete(&mut self, now: SimTime, id: FlowId) -> C {
        self.advance_to(now);
        let mut flow = self.flows.remove(&id).expect("completing unknown flow");
        // Rounding the completion instant to nanoseconds can leave a
        // vanishing residue; the flow is done by construction.
        flow.remaining = 0.0;
        self.flows_completed += 1;
        self.recompute_rates();
        flow.completion
    }

    /// Advance accounting to `now`, crediting progress to all active flows.
    fn advance_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time went backwards");
        let dt = now.since(self.last_advance).as_secs_f64();
        if dt > 0.0 {
            let mut used = vec![0.0f64; self.resources.len()];
            let mut any = vec![false; self.resources.len()];
            for f in self.flows.values_mut() {
                let moved = f.rate * dt;
                f.remaining = (f.remaining - moved).max(0.0);
                for r in &f.path {
                    used[r.index()] += moved;
                    any[r.index()] = true;
                }
            }
            for (i, res) in self.resources.iter_mut().enumerate() {
                res.stats.bytes += used[i];
                if any[i] {
                    res.stats.busy_secs += dt;
                }
                res.stats.util_integral += (used[i] / dt / res.capacity).min(1.0) * dt;
            }
        }
        self.last_advance = now;
    }

    /// Progressive-filling max–min fair allocation with per-flow caps.
    fn recompute_rates(&mut self) {
        let n_res = self.resources.len();
        let mut cap_left: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut load = vec![0u32; n_res];

        // Work on a snapshot of flow order for deterministic arithmetic.
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut fixed: Vec<bool> = vec![false; ids.len()];
        let mut rate: Vec<f64> = vec![0.0; ids.len()];

        for (i, id) in ids.iter().enumerate() {
            let f = &self.flows[id];
            if f.path.is_empty() {
                // Only a cap constrains this flow.
                rate[i] = f.cap.expect("uncapped pathless flow");
                fixed[i] = true;
            } else {
                for r in &f.path {
                    load[r.index()] += 1;
                }
            }
        }

        loop {
            // Bottleneck candidate from resources.
            let mut share = f64::INFINITY;
            for r in 0..n_res {
                if load[r] > 0 {
                    share = share.min(cap_left[r].max(0.0) / f64::from(load[r]));
                }
            }
            // Bottleneck candidate from per-flow caps.
            let mut min_cap = f64::INFINITY;
            for (i, id) in ids.iter().enumerate() {
                if !fixed[i] {
                    if let Some(c) = self.flows[id].cap {
                        min_cap = min_cap.min(c);
                    }
                }
            }
            if share.is_infinite() && min_cap.is_infinite() {
                break; // no unfixed flows left
            }

            let mut progressed = false;
            if min_cap <= share {
                // Freeze every unfixed flow whose cap equals the bottleneck.
                for (i, id) in ids.iter().enumerate() {
                    if fixed[i] {
                        continue;
                    }
                    let f = &self.flows[id];
                    if f.cap.is_some_and(|c| c <= share && c <= min_cap) {
                        rate[i] = f.cap.unwrap();
                        fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            cap_left[r.index()] -= rate[i];
                            load[r.index()] -= 1;
                        }
                    }
                }
            } else {
                // Freeze every unfixed flow crossing a saturated resource.
                let eps = share * 1e-12;
                let saturated: Vec<bool> = (0..n_res)
                    .map(|r| {
                        load[r] > 0 && cap_left[r].max(0.0) / f64::from(load[r]) <= share + eps
                    })
                    .collect();
                for (i, id) in ids.iter().enumerate() {
                    if fixed[i] {
                        continue;
                    }
                    let f = &self.flows[id];
                    if f.path.iter().any(|r| saturated[r.index()]) {
                        rate[i] = share;
                        fixed[i] = true;
                        progressed = true;
                        for r in &f.path {
                            cap_left[r.index()] -= share;
                            load[r.index()] -= 1;
                        }
                    }
                }
            }
            debug_assert!(progressed, "progressive filling stalled");
            if !progressed {
                break;
            }
        }

        for (i, id) in ids.iter().enumerate() {
            self.flows.get_mut(id).expect("flow vanished").rate = rate[i].max(f64::MIN_POSITIVE);
        }
    }

    /// Instantaneous rate of an active flow (testing/diagnostics).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Remaining bytes of an active flow (testing/diagnostics).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn oracle_single_flow_gets_full_capacity() {
        let mut fe: NaiveFlowEngine<()> = NaiveFlowEngine::new();
        let r = fe.add_resource("disk", 100.0);
        let id = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), ());
        assert_eq!(fe.flow_rate(id), Some(100.0));
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, id);
        assert!((done.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn oracle_max_min_across_two_resources() {
        let mut fe: NaiveFlowEngine<()> = NaiveFlowEngine::new();
        let r1 = fe.add_resource("r1", 100.0);
        let r2 = fe.add_resource("r2", 30.0);
        let a = fe.start(t(0.0), FlowSpec::new(1000, vec![r1, r2]), ());
        let b = fe.start(t(0.0), FlowSpec::new(1000, vec![r1]), ());
        assert!((fe.flow_rate(a).unwrap() - 30.0).abs() < 1e-9);
        assert!((fe.flow_rate(b).unwrap() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_completion_frees_bandwidth() {
        let mut fe: NaiveFlowEngine<u32> = NaiveFlowEngine::new();
        let r = fe.add_resource("nic", 100.0);
        let a = fe.start(t(0.0), FlowSpec::new(100, vec![r]), 1);
        let _b = fe.start(t(0.0), FlowSpec::new(1000, vec![r]), 2);
        let (done, fid) = fe.next_completion().unwrap();
        assert_eq!(fid, a);
        assert_eq!(fe.complete(done, fid), 1);
        let (done_b, _) = fe.next_completion().unwrap();
        assert!((done_b.as_secs_f64() - 11.0).abs() < 1e-5, "{done_b}");
    }
}
