//! Ablations A1–A5 (DESIGN.md): prints the ablation table and measures
//! the two cheapest ablation pairs end to end on tiny instances.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfbench::small_sample_config;
use wfengine::{run_workflow, RunConfig, SchedulerPolicy};
use wfgen::App;
use wfstorage::{S3Config, StorageConfigs, StorageKind};

fn bench(c: &mut Criterion) {
    println!("\n{}", expt::ablations::render(&expt::ablations::run(42)));

    c.bench_function("ablations/tiny_s3_cache_on_vs_off", |b| {
        b.iter(|| {
            let on = run_workflow(
                App::Broadband.tiny_workflow(),
                RunConfig::cell(StorageKind::S3, 2),
            )
            .expect("on");
            let mut cfg = RunConfig::cell(StorageKind::S3, 2);
            cfg.storage_cfgs = StorageConfigs {
                s3: Some(S3Config {
                    client_cache: false,
                    ..S3Config::default()
                }),
                ..StorageConfigs::default()
            };
            let off = run_workflow(App::Broadband.tiny_workflow(), cfg).expect("off");
            black_box((on.makespan_secs, off.makespan_secs))
        })
    });
    c.bench_function("ablations/tiny_data_aware_scheduler", |b| {
        b.iter(|| {
            let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
            cfg.scheduler = SchedulerPolicy::DataAware;
            black_box(
                run_workflow(App::Broadband.tiny_workflow(), cfg)
                    .expect("run")
                    .makespan_secs,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = small_sample_config();
    targets = bench
}
criterion_main!(benches);
