//! Fig. 4: Broadband runtime across storage systems and cluster sizes
//! (E4). Prints the full regenerated figure, then measures
//! representative cells.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfbench::{run_tiny, small_sample_config};
use wfgen::App;
use wfstorage::StorageKind;

fn bench(c: &mut Criterion) {
    let fig = expt::runtime_figure(App::Broadband, 42);
    println!("\n{}", expt::render::runtime_figure(&fig, 4));

    c.bench_function("fig4/broadband_tiny_glusterfs_4n", |b| {
        b.iter(|| black_box(run_tiny(App::Broadband, StorageKind::GlusterNufa, 4)))
    });
    c.bench_function("fig4/broadband_tiny_s3_4n", |b| {
        b.iter(|| black_box(run_tiny(App::Broadband, StorageKind::S3, 4)))
    });
    c.bench_function("fig4/broadband_tiny_nfs_4n", |b| {
        b.iter(|| black_box(run_tiny(App::Broadband, StorageKind::Nfs, 4)))
    });
}

criterion_group! {
    name = benches;
    config = small_sample_config();
    targets = bench
}
criterion_main!(benches);
