//! Table I: the wfprof-style resource-usage classification (E1).
//! Prints the regenerated table and measures the profiler itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wfgen::{classify, profile, App};

fn bench(c: &mut Criterion) {
    // Print the regenerated table once.
    println!("\n{}", expt::render::table1(&expt::table1()));

    let wf = App::Montage.paper_workflow();
    c.bench_function("table1/profile_montage_10429_tasks", |b| {
        b.iter(|| classify(&profile(black_box(&wf))))
    });
    c.bench_function("table1/generate_and_profile_all", |b| {
        b.iter(|| {
            for app in App::ALL {
                black_box(classify(&profile(&app.tiny_workflow())));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
