//! §III.C disk microbenchmark (E0): prints the measured device table and
//! benches the end-to-end measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", expt::render::microbench(&expt::microbench::run()));
    c.bench_function("microbench/all_devices", |b| {
        b.iter(|| black_box(expt::microbench::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
