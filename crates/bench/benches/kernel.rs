//! Simulator-kernel microbenchmarks: event-calendar throughput, fluid-flow
//! rate recomputation, workflow generation and validation.

use criterion::{criterion_group, criterion_main, Criterion};
use expt::perf::{drive_incremental, drive_naive, montage_scale_workload};
use simcore::{FlowSpec, Sim, SimTime};
use std::hint::black_box;
use wfgen::montage::{montage, MontageConfig};

fn event_calendar(c: &mut Criterion) {
    c.bench_function("kernel/calendar_100k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            for i in 0..100_000u64 {
                sim.schedule_at(SimTime::from_nanos(i * 7919 % 1_000_000), |_, count| {
                    *count += 1;
                });
            }
            let mut count = 0u64;
            sim.run(&mut count);
            black_box(count)
        })
    });
}

fn fluid_flows(c: &mut Criterion) {
    c.bench_function("kernel/flows_64_concurrent_over_8_resources", |b| {
        b.iter(|| {
            let mut sim: Sim<()> = Sim::new();
            let res: Vec<_> = (0..8)
                .map(|i| sim.add_resource(format!("r{i}"), 1e8))
                .collect();
            for i in 0..512u64 {
                let path = vec![res[(i % 8) as usize], res[((i / 8) % 8) as usize]];
                sim.schedule_at(SimTime::from_nanos(i * 1_000_000), move |s, _| {
                    s.start_flow(FlowSpec::new(10_000_000, path), |_, _| {});
                });
            }
            sim.run(&mut ());
            black_box(sim.now())
        })
    });
}

fn generators(c: &mut Criterion) {
    c.bench_function("kernel/generate_montage_10429_tasks", |b| {
        b.iter(|| black_box(montage(MontageConfig::paper())))
    });
    c.bench_function("kernel/stats_montage_paper", |b| {
        let wf = montage(MontageConfig::paper());
        b.iter(|| black_box(wfdag::analysis::stats(&wf)))
    });
}

/// Montage-scale before/after: ~20k staggered transfers over 64 shared
/// resources (see `expt::perf` for the workload), through both the
/// incremental engine and the preserved O(F²) reference solver.
fn montage_scale(c: &mut Criterion) {
    let w = montage_scale_workload(20_000);
    // The engines must tell the same story before their speeds are compared.
    assert_eq!(drive_incremental(&w), drive_naive(&w));
    c.bench_function("kernel/montage_scale_20k_flows_64res_incremental", |b| {
        b.iter(|| black_box(drive_incremental(&w)))
    });
    c.bench_function("kernel/montage_scale_20k_flows_64res_naive", |b| {
        b.iter(|| black_box(drive_naive(&w)))
    });
}

criterion_group!(
    benches,
    event_calendar,
    fluid_flows,
    generators,
    montage_scale
);
criterion_main!(benches);
