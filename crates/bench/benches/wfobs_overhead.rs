//! Event-bus overhead on the Montage-scale kernel workload: the same
//! flow schedule driven through the full `Sim` loop with observability
//! off, digest-only, and fully recording, next to the raw incremental
//! flow engine (no `Sim`, no bus) as the floor. The `Off` timing minus
//! the floor is the event-loop cost; `Digest`/`Full` minus `Off` is what
//! the bus itself adds — the quantity the disabled-by-default design
//! holds near zero.

use criterion::{criterion_group, criterion_main, Criterion};
use expt::perf::{drive_incremental, drive_sim, montage_scale_workload};
use std::hint::black_box;
use wfobs::ObsLevel;

const FLOWS: u64 = 20_000;

fn raw_engine(c: &mut Criterion) {
    let w = montage_scale_workload(FLOWS);
    c.bench_function("wfobs/raw_flow_engine", |b| {
        b.iter(|| black_box(drive_incremental(&w)))
    });
}

fn sim_obs_off(c: &mut Criterion) {
    let w = montage_scale_workload(FLOWS);
    c.bench_function("wfobs/sim_obs_off", |b| {
        b.iter(|| black_box(drive_sim(&w, ObsLevel::Off)))
    });
}

fn sim_obs_digest(c: &mut Criterion) {
    let w = montage_scale_workload(FLOWS);
    c.bench_function("wfobs/sim_obs_digest", |b| {
        b.iter(|| black_box(drive_sim(&w, ObsLevel::Digest)))
    });
}

fn sim_obs_full(c: &mut Criterion) {
    let w = montage_scale_workload(FLOWS);
    c.bench_function("wfobs/sim_obs_full", |b| {
        b.iter(|| black_box(drive_sim(&w, ObsLevel::Full)))
    });
}

criterion_group!(
    benches,
    raw_engine,
    sim_obs_off,
    sim_obs_digest,
    sim_obs_full
);
criterion_main!(benches);
