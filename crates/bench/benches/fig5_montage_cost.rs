//! Fig. 5: Montage cost under per-hour and per-second billing
//! (E5). Prints the regenerated cost figure and measures the
//! simulate-then-bill pipeline on a small instance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vcluster::InstanceType;
use wfbench::{run_tiny, small_sample_config};
use wfcost::{BillingGranularity, CostModel, UsageReport};
use wfgen::App;
use wfstorage::StorageKind;

fn bench(c: &mut Criterion) {
    let fig = expt::runtime_figure(App::Montage, 42);
    println!(
        "\n{}",
        expt::render::cost_figure(&expt::cost_figure(&fig), 5)
    );

    c.bench_function("fig5/montage_tiny_simulate_and_bill", |b| {
        b.iter(|| {
            let stats = run_tiny(App::Montage, StorageKind::Nfs, 2);
            let usage = UsageReport {
                wall_secs: stats.makespan_secs,
                instances: vec![(InstanceType::C1Xlarge, 2), (InstanceType::M1Xlarge, 1)],
                s3_puts: stats.billing.s3_puts,
                s3_gets: stats.billing.s3_gets,
                s3_peak_bytes: stats.billing.s3_peak_bytes,
            };
            let m = CostModel::default();
            black_box((
                m.workflow_cost(&usage, BillingGranularity::PerHour),
                m.workflow_cost(&usage, BillingGranularity::PerSecond),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = small_sample_config();
    targets = bench
}
criterion_main!(benches);
