//! Shared helpers for the Criterion benchmarks.
//!
//! Every table and figure of the paper has a bench target that (a) prints
//! the regenerated rows/series once, and (b) measures a representative
//! simulation so `cargo bench` also tracks simulator performance.

#![warn(missing_docs)]

use wfengine::{run_workflow, RunConfig, RunStats};
use wfgen::App;
use wfstorage::StorageKind;

/// Run one small same-shape instance of `app` — fast enough for a
/// Criterion measurement loop.
pub fn run_tiny(app: App, storage: StorageKind, workers: u32) -> RunStats {
    run_workflow(app.tiny_workflow(), RunConfig::cell(storage, workers)).expect("tiny cell runs")
}

/// Run one paper-scale cell (used to print figure rows, and measured for
/// the cheaper applications).
pub fn run_paper(app: App, storage: StorageKind, workers: u32) -> RunStats {
    run_workflow(app.paper_workflow(), RunConfig::cell(storage, workers)).expect("paper cell runs")
}

/// Criterion defaults for simulation-sized benchmarks.
pub fn small_sample_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}
