//! The Broadband seismology workflow (§II).
//!
//! Broadband generates and compares seismograms from several high- and
//! low-frequency earthquake simulation codes. The paper's instance: **6
//! sources × 8 sites = 48 combinations, 768 tasks (16 per combination),
//! 6 GB input, 303 MB output**, memory-limited — more than 75 % of its
//! runtime is consumed by tasks requiring over 1 GB of RAM.
//!
//! Each (source, site) combination is a mini-pipeline ("several
//! executables run in sequence like a mini workflow", §V.C), which is why
//! GlusterFS NUFA — all outputs on the local disk — has such good
//! locality for it, and why the *shared* inputs (velocity model, source
//! and site files) are re-read by many combinations — which is what makes
//! the S3 client cache shine.

use crate::jitter::Jitter;
use serde::{Deserialize, Serialize};
use wfdag::{FileId, Workflow, WorkflowBuilder};

/// Megabyte, decimal.
pub const MB: u64 = 1_000_000;
/// Gibibyte (for memory sizes).
const GIB: u64 = 1 << 30;

/// Shape parameters of a Broadband instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadbandConfig {
    /// Scenario earthquakes.
    pub sources: u32,
    /// Geographic locations.
    pub sites: u32,
    /// Experiment seed for jitter.
    pub seed: u64,
}

impl BroadbandConfig {
    /// The paper's instance: 6 sources × 8 sites → 768 tasks.
    pub fn paper() -> Self {
        BroadbandConfig {
            sources: 6,
            sites: 8,
            seed: 42,
        }
    }

    /// A small instance for tests (2 × 2 → 64 tasks).
    pub fn tiny() -> Self {
        BroadbandConfig {
            sources: 2,
            sites: 2,
            seed: 42,
        }
    }

    /// 16 tasks per (source, site) combination.
    pub fn task_count(&self) -> u32 {
        self.sources * self.sites * 16
    }
}

/// Generate a Broadband workflow.
pub fn broadband(cfg: BroadbandConfig) -> Workflow {
    assert!(cfg.sources >= 1 && cfg.sites >= 1);
    let mut b = WorkflowBuilder::new(format!("broadband-{}x{}", cfg.sources, cfg.sites));
    let mut jit = Jitter::new(cfg.seed, "broadband");

    // Shared inputs, 6 GB at paper scale: a velocity mesh split into one
    // region file per site (8 × 400 MB), 6 × 150 MB source descriptions,
    // and 8 × 237 MB site models. Every one of these is re-read by
    // several combinations — the reuse that §V.C credits for S3's win.
    let velocity_regions: Vec<FileId> = (0..cfg.sites)
        .map(|s| b.file(format!("velocity_region_{s}.bin"), jit.size(400 * MB, 0.03)))
        .collect();
    let source_files: Vec<FileId> = (0..cfg.sources)
        .map(|s| b.file(format!("source_{s}.def"), jit.size(150 * MB, 0.05)))
        .collect();
    let site_files: Vec<FileId> = (0..cfg.sites)
        .map(|s| b.file(format!("site_{s}.mod"), jit.size(237 * MB, 0.05)))
        .collect();

    for src in 0..cfg.sources {
        for site in 0..cfg.sites {
            let tag = format!("s{src}_l{site}");

            // 1) Rupture generator.
            let srf = b.file(format!("srf_{tag}.bin"), jit.size(60 * MB, 0.1));
            let t = b.task(
                format!("createSRF_{tag}"),
                "ucsb_createSRF",
                jit.secs(22.0, 0.2),
                GIB + GIB / 5, // 1.2 GB
                vec![source_files[src as usize]],
                vec![srf],
            );
            b.set_io_ops(t, 900);

            // 2) Low-frequency simulation: the 4 GB memory hog. Reads the
            // velocity region for its site.
            let lf = b.file(format!("lf_{tag}.seis"), jit.size(5 * MB, 0.15));
            let t = b.task(
                format!("jbsim_lf_{tag}"),
                "jbsim_lf",
                jit.secs(112.0, 0.15),
                4 * GIB + GIB / 5, // 4.2 GB
                vec![velocity_regions[site as usize], srf],
                vec![lf],
            );
            b.set_io_ops(t, 6000);

            // 3) Four high-frequency simulations (1.6 GB each); the first
            // loads the site model, the variants reuse its srf inputs.
            // Each writes a *raw* multi-component seismogram volume
            // (~120 MB of temporary data) plus the condensed seismogram.
            let mut hf = Vec::with_capacity(4);
            let mut hf_raw = Vec::with_capacity(4);
            for k in 0..4 {
                let raw = b.file(format!("hfraw_{tag}_{k}.bin"), jit.size(120 * MB, 0.1));
                let f = b.file(format!("hf_{tag}_{k}.seis"), jit.size(8 * MB, 0.15));
                let ins = if k == 0 {
                    vec![srf, site_files[site as usize]]
                } else {
                    vec![srf]
                };
                let t = b.task(
                    format!("hfsim_{tag}_{k}"),
                    "hfsims",
                    jit.secs(68.0, 0.2),
                    GIB + 3 * GIB / 5, // 1.6 GB
                    ins,
                    vec![raw, f],
                );
                b.set_io_ops(t, 5000);
                hf.push(f);
                hf_raw.push(raw);
            }

            // 4) Site response per high-frequency seismogram: re-reads the
            // raw volume to apply the site terms (light on CPU).
            let mut adjusted = Vec::with_capacity(4);
            for k in 0..4 {
                let f = b.file(format!("adj_{tag}_{k}.seis"), jit.size(8 * MB, 0.15));
                let t = b.task(
                    format!("siteresp_{tag}_{k}"),
                    "site_response",
                    jit.secs(11.0, 0.25),
                    700 << 20,
                    vec![hf[k], hf_raw[k]],
                    vec![f],
                );
                b.set_io_ops(t, 2200);
                adjusted.push(f);
            }

            // 5) Merge broadband seismogram.
            let merged = b.file(format!("bb_{tag}.seis"), jit.size(20 * MB, 0.1));
            let mut ins = adjusted.clone();
            ins.push(lf);
            let t = b.task(
                format!("merge_{tag}"),
                "merge_seis",
                jit.secs(8.0, 0.2),
                600 << 20,
                ins,
                vec![merged],
            );
            b.set_io_ops(t, 1200);

            // 6) Four intensity measures (~1 MB products each).
            let mut metrics = Vec::with_capacity(4);
            for k in 0..4 {
                let f = b.file(format!("im_{tag}_{k}.dat"), jit.size(MB, 0.2));
                let t = b.task(
                    format!("intensity_{tag}_{k}"),
                    "intensity",
                    jit.secs(11.0, 0.25),
                    500 << 20,
                    vec![merged],
                    vec![f],
                );
                b.set_io_ops(t, 700);
                metrics.push(f);
            }

            // 7) Comparison/goodness-of-fit report.
            let report = b.file(format!("gof_{tag}.dat"), jit.size(2 * MB, 0.2));
            b.task(
                format!("compare_{tag}"),
                "compare",
                jit.secs(8.0, 0.2),
                400 << 20,
                metrics,
                vec![report],
            );
        }
    }

    let wf = b.build().expect("broadband generator produces a valid DAG");
    debug_assert_eq!(wf.task_count() as u32, cfg.task_count());
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdag::analysis;

    #[test]
    fn paper_scale_has_768_tasks() {
        let wf = broadband(BroadbandConfig::paper());
        assert_eq!(wf.task_count(), 768);
    }

    #[test]
    fn paper_byte_totals_match_section_ii() {
        let wf = broadband(BroadbandConfig::paper());
        let s = analysis::stats(&wf);
        let input_gb = s.input_bytes as f64 / 1e9;
        assert!((5.7..=6.3).contains(&input_gb), "input {input_gb} GB");
        // The paper's 303 MB of output are the archived science products:
        // the intensity measures and goodness-of-fit reports.
        let products: u64 = wf
            .tasks()
            .iter()
            .filter(|t| matches!(t.transformation.as_str(), "intensity" | "compare"))
            .map(|t| t.output_bytes(wf.files()))
            .sum();
        let out_mb = products as f64 / 1e6;
        assert!((250.0..=360.0).contains(&out_mb), "products {out_mb} MB");
    }

    #[test]
    fn broadband_is_memory_limited() {
        // §II: >75 % of runtime is in tasks needing more than 1 GB.
        let wf = broadband(BroadbandConfig::paper());
        let total: f64 = wf.tasks().iter().map(|t| t.cpu_secs).sum();
        let big: f64 = wf
            .tasks()
            .iter()
            .filter(|t| t.peak_mem > 1 << 30)
            .map(|t| t.cpu_secs)
            .sum();
        assert!(big / total > 0.75, "big-memory fraction {}", big / total);
    }

    #[test]
    fn shared_inputs_are_heavily_reused() {
        let wf = broadband(BroadbandConfig::paper());
        // Each velocity region feeds the LF simulation of every source at
        // its site (6 combinations).
        let region = wf
            .files()
            .iter()
            .find(|f| f.name == "velocity_region_0.bin")
            .unwrap();
        assert_eq!(region.consumers.len(), 6);
        // Each site model is loaded once per combination.
        let site = wf.files().iter().find(|f| f.name == "site_0.mod").unwrap();
        assert_eq!(site.consumers.len(), 6);
        // Each source description feeds one createSRF per site.
        let src = wf
            .files()
            .iter()
            .find(|f| f.name == "source_0.def")
            .unwrap();
        assert_eq!(src.consumers.len(), 8);
    }

    #[test]
    fn combos_are_mini_pipelines() {
        let wf = broadband(BroadbandConfig::tiny());
        // Depth per combo: createSRF -> hfsim -> siteresp -> merge ->
        // intensity -> compare = 6 levels.
        assert_eq!(analysis::level_histogram(&wf).len(), 6);
        assert_eq!(wf.task_count(), 64);
    }

    #[test]
    fn deterministic_generation() {
        let a = broadband(BroadbandConfig::tiny());
        let b = broadband(BroadbandConfig::tiny());
        for (x, y) in a.files().iter().zip(b.files()) {
            assert_eq!(x.size, y.size);
        }
    }
}
