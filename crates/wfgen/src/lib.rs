//! # wfgen — the paper's three workflow applications, synthesised
//!
//! §II of the paper evaluates three real applications chosen to span
//! resource profiles (Table I). The original binaries and science inputs
//! are not available, so this crate generates *structurally faithful*
//! synthetic instances: identical task counts, level structure, byte
//! volumes, file-size populations, reuse patterns and CPU/memory
//! profiles — everything the storage comparison is sensitive to.
//!
//! * [`montage`] — astronomy mosaics: 10,429 tasks, 4.2 GB in / 7.9 GB of
//!   products, tens of thousands of 1–10 MB files. I/O-bound.
//! * [`broadband`] — seismograms: 768 tasks (48 mini-pipelines of 16),
//!   6 GB of heavily reused inputs, 303 MB out. Memory-limited.
//! * [`epigenome`] — DNA mapping: 529 tasks, 1.9 GB in / 300 MB out.
//!   CPU-bound.
//! * [`profiler`] — a wfprof-style classifier that regenerates Table I.
//! * [`synthetic`] — a parameterised generator for workloads anywhere in
//!   the Table-I resource space.
//!
//! ```
//! use wfgen::{montage, MontageConfig, classify, profile, Grade};
//!
//! let wf = montage(MontageConfig::paper());
//! assert_eq!(wf.task_count(), 10_429); // the paper's 8-degree mosaic
//! assert_eq!(classify(&profile(&wf)).io, Grade::High); // Table I
//! ```

#![warn(missing_docs)]

pub mod broadband;
pub mod epigenome;
pub mod jitter;
pub mod montage;
pub mod profiler;
pub mod synthetic;

pub use broadband::{broadband, BroadbandConfig};
pub use epigenome::{epigenome, EpigenomeConfig};
pub use montage::{montage, MontageConfig};
pub use profiler::{classify, profile, Grade, Profile, ResourceUsage};
pub use synthetic::{synthetic, Shape, SyntheticConfig};

/// The three applications, for iteration in harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum App {
    /// Montage (astronomy, I/O-bound).
    Montage,
    /// Broadband (seismology, memory-limited).
    Broadband,
    /// Epigenome (bioinformatics, CPU-bound).
    Epigenome,
}

impl App {
    /// All applications in the paper's order.
    pub const ALL: [App; 3] = [App::Montage, App::Broadband, App::Epigenome];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            App::Montage => "Montage",
            App::Broadband => "Broadband",
            App::Epigenome => "Epigenome",
        }
    }

    /// Generate the paper-scale instance of this application.
    pub fn paper_workflow(self) -> wfdag::Workflow {
        match self {
            App::Montage => montage(MontageConfig::paper()),
            App::Broadband => broadband(BroadbandConfig::paper()),
            App::Epigenome => epigenome(EpigenomeConfig::paper()),
        }
    }

    /// Generate a small instance with the same shape, for tests.
    pub fn tiny_workflow(self) -> wfdag::Workflow {
        match self {
            App::Montage => montage(MontageConfig::tiny()),
            App::Broadband => broadband(BroadbandConfig::tiny()),
            App::Epigenome => epigenome(EpigenomeConfig::tiny()),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
