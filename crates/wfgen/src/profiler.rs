//! A wfprof-style workflow profiler (§II, footnote 1).
//!
//! The paper characterises each application's resource usage with a
//! ptrace-based profiler and reports Table I:
//!
//! | Application | I/O    | Memory | CPU    |
//! |-------------|--------|--------|--------|
//! | Montage     | High   | Low    | Low    |
//! | Broadband   | Medium | High   | Medium |
//! | Epigenome   | Low    | Medium | High   |
//!
//! This module reproduces that classification from the workflow
//! declarations: per-task bytes moved, compute seconds, and peak RSS.

use serde::{Deserialize, Serialize};
use wfdag::Workflow;

/// A Low/Medium/High grade, as in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Grade {
    /// Lowest of the three usage classes.
    Low,
    /// Middle usage class.
    Medium,
    /// Highest usage class.
    High,
}

impl std::fmt::Display for Grade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Grade::Low => "Low",
            Grade::Medium => "Medium",
            Grade::High => "High",
        })
    }
}

/// The profiler's raw measurements for one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Workflow name.
    pub workflow: String,
    /// Total bytes read + written by tasks (reuse counted per access).
    pub io_bytes: u64,
    /// Total compute demand, reference-core seconds.
    pub cpu_secs: f64,
    /// I/O intensity: bytes moved per compute second.
    pub io_bytes_per_cpu_sec: f64,
    /// Fraction of compute time in tasks with peak RSS above 1 GiB.
    pub cpu_frac_over_1gib: f64,
    /// Fraction of compute time in tasks with peak RSS of 512 MiB+.
    pub cpu_frac_over_512mib: f64,
    /// Estimated fraction of task wall time spent in the CPU, assuming
    /// the reference contended-disk throughput of
    /// [`REFERENCE_DISK_BPS`].
    pub cpu_time_fraction: f64,
}

/// The contended per-task disk throughput wfprof's targets saw (a single
/// task's share of a busy 8-core node's array).
pub const REFERENCE_DISK_BPS: f64 = 10.0e6;

/// Thresholds used to grade [`Profile`]s; documented so Table I is
/// reproducible rather than hand-waved.
pub mod thresholds {
    /// I/O: below this many bytes per compute second is Low.
    pub const IO_LOW_BPCS: f64 = 1.3e6;
    /// I/O: above this many bytes per compute second is High.
    pub const IO_HIGH_BPCS: f64 = 8.0e6;
    /// Memory: more than this fraction of compute time above 1 GiB is
    /// High.
    pub const MEM_HIGH_FRAC: f64 = 0.5;
    /// Memory: more than this fraction of compute time at 512 MiB+ is
    /// Medium.
    pub const MEM_MED_FRAC: f64 = 0.5;
    /// CPU: below this CPU-time fraction is Low.
    pub const CPU_LOW_FRAC: f64 = 0.5;
    /// CPU: above this CPU-time fraction is High.
    pub const CPU_HIGH_FRAC: f64 = 0.88;
}

/// Table-I style classification of one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// I/O grade.
    pub io: Grade,
    /// Memory grade.
    pub memory: Grade,
    /// CPU grade.
    pub cpu: Grade,
}

/// Profile a workflow.
pub fn profile(wf: &Workflow) -> Profile {
    let files = wf.files();
    let mut io_bytes = 0u64;
    let mut cpu_secs = 0.0f64;
    let mut cpu_over_1g = 0.0f64;
    let mut cpu_over_512m = 0.0f64;
    for t in wf.tasks() {
        io_bytes += t.input_bytes(files) + t.output_bytes(files);
        cpu_secs += t.cpu_secs;
        if t.peak_mem > 1 << 30 {
            cpu_over_1g += t.cpu_secs;
        }
        if t.peak_mem >= 512 << 20 {
            cpu_over_512m += t.cpu_secs;
        }
    }
    let io_time = io_bytes as f64 / REFERENCE_DISK_BPS;
    Profile {
        workflow: wf.name.clone(),
        io_bytes,
        cpu_secs,
        io_bytes_per_cpu_sec: if cpu_secs > 0.0 {
            io_bytes as f64 / cpu_secs
        } else {
            0.0
        },
        cpu_frac_over_1gib: if cpu_secs > 0.0 {
            cpu_over_1g / cpu_secs
        } else {
            0.0
        },
        cpu_frac_over_512mib: if cpu_secs > 0.0 {
            cpu_over_512m / cpu_secs
        } else {
            0.0
        },
        cpu_time_fraction: if cpu_secs + io_time > 0.0 {
            cpu_secs / (cpu_secs + io_time)
        } else {
            0.0
        },
    }
}

/// Grade a profile into Table-I classes.
pub fn classify(p: &Profile) -> ResourceUsage {
    use thresholds::*;
    let io = if p.io_bytes_per_cpu_sec > IO_HIGH_BPCS {
        Grade::High
    } else if p.io_bytes_per_cpu_sec > IO_LOW_BPCS {
        Grade::Medium
    } else {
        Grade::Low
    };
    let memory = if p.cpu_frac_over_1gib > MEM_HIGH_FRAC {
        Grade::High
    } else if p.cpu_frac_over_512mib > MEM_MED_FRAC {
        Grade::Medium
    } else {
        Grade::Low
    };
    let cpu = if p.cpu_time_fraction > CPU_HIGH_FRAC {
        Grade::High
    } else if p.cpu_time_fraction > CPU_LOW_FRAC {
        Grade::Medium
    } else {
        Grade::Low
    };
    ResourceUsage { io, memory, cpu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadband::{broadband, BroadbandConfig};
    use crate::epigenome::{epigenome, EpigenomeConfig};
    use crate::montage::{montage, MontageConfig};

    #[test]
    fn table_i_montage() {
        let u = classify(&profile(&montage(MontageConfig::paper())));
        assert_eq!(u.io, Grade::High, "{u:?}");
        assert_eq!(u.memory, Grade::Low, "{u:?}");
        assert_eq!(u.cpu, Grade::Low, "{u:?}");
    }

    #[test]
    fn table_i_broadband() {
        let u = classify(&profile(&broadband(BroadbandConfig::paper())));
        assert_eq!(u.io, Grade::Medium, "{u:?}");
        assert_eq!(u.memory, Grade::High, "{u:?}");
        assert_eq!(u.cpu, Grade::Medium, "{u:?}");
    }

    #[test]
    fn table_i_epigenome() {
        let u = classify(&profile(&epigenome(EpigenomeConfig::paper())));
        assert_eq!(u.io, Grade::Low, "{u:?}");
        assert_eq!(u.memory, Grade::Medium, "{u:?}");
        assert_eq!(u.cpu, Grade::High, "{u:?}");
    }

    #[test]
    fn grades_order_by_io_intensity() {
        let m = profile(&montage(MontageConfig::paper()));
        let b = profile(&broadband(BroadbandConfig::paper()));
        let e = profile(&epigenome(EpigenomeConfig::paper()));
        assert!(m.io_bytes_per_cpu_sec > b.io_bytes_per_cpu_sec);
        assert!(b.io_bytes_per_cpu_sec > e.io_bytes_per_cpu_sec);
        // And CPU fractions the other way round.
        assert!(e.cpu_time_fraction > b.cpu_time_fraction);
        assert!(b.cpu_time_fraction > m.cpu_time_fraction);
    }

    #[test]
    fn profile_totals_are_positive() {
        let p = profile(&montage(MontageConfig::tiny()));
        assert!(p.io_bytes > 0);
        assert!(p.cpu_secs > 0.0);
        assert!((0.0..=1.0).contains(&p.cpu_time_fraction));
        assert!((0.0..=1.0).contains(&p.cpu_frac_over_1gib));
    }
}
