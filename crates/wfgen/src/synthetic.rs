//! A parameterised synthetic-workflow generator for downstream studies.
//!
//! The paper's three applications cover three corners of the resource
//! space (Table I). This module lets a user place a workload *anywhere*
//! in that space — choose a DAG shape and per-task CPU/I-O/memory
//! profile — and sweep the storage options over it, the way
//! `examples/storage_shootout.rs` does with hand-rolled DAGs.

use crate::jitter::Jitter;
use serde::{Deserialize, Serialize};
use wfdag::{FileId, Workflow, WorkflowBuilder};

/// The macro-structure of the generated DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Shape {
    /// `width` independent pipelines of `depth` tasks (Broadband-like).
    Pipelines,
    /// Fan-out from one source to `width` tasks per level, refanned each
    /// level through a shared file (Montage-like data sharing).
    FanOutFanIn,
    /// Each level-`k` task reads `fanin` random outputs of level `k-1`
    /// (a messy, general DAG).
    RandomLayered {
        /// Inputs drawn per task from the previous level.
        fanin: u8,
    },
}

/// Parameters of a synthetic workflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// DAG macro-structure.
    pub shape: Shape,
    /// Parallel width (pipelines, or tasks per level).
    pub width: u32,
    /// Levels (pipeline length).
    pub depth: u32,
    /// Mean task compute demand, reference-core seconds.
    pub cpu_secs: f64,
    /// Mean file size, bytes.
    pub file_bytes: u64,
    /// Peak task memory, bytes.
    pub peak_mem: u64,
    /// POSIX operations per task (drives NFS server load).
    pub io_ops: u32,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            shape: Shape::Pipelines,
            width: 16,
            depth: 4,
            cpu_secs: 10.0,
            file_bytes: 10_000_000,
            peak_mem: 512 << 20,
            io_ops: 40,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// Number of tasks this configuration generates.
    pub fn task_count(&self) -> u32 {
        match self.shape {
            Shape::Pipelines | Shape::RandomLayered { .. } => self.width * self.depth,
            Shape::FanOutFanIn => self.width * self.depth + self.depth + 1, // collectors between levels + the seed task
        }
    }
}

/// Generate a synthetic workflow.
pub fn synthetic(cfg: SyntheticConfig) -> Workflow {
    assert!(
        cfg.width >= 1 && cfg.depth >= 1,
        "width and depth must be positive"
    );
    let mut b = WorkflowBuilder::new(format!(
        "synthetic-{:?}-{}x{}",
        cfg.shape, cfg.width, cfg.depth
    ));
    let mut jit = Jitter::new(cfg.seed, "synthetic");
    let mut uid = 11u32;
    let task = |b: &mut WorkflowBuilder,
                name: String,
                ins: Vec<FileId>,
                outs: Vec<FileId>,
                jit: &mut Jitter| {
        let tid = b.task(
            name,
            "synthetic",
            jit.secs(cfg.cpu_secs, 0.2),
            cfg.peak_mem,
            ins,
            outs,
        );
        b.set_io_ops(tid, cfg.io_ops);
    };

    match cfg.shape {
        Shape::Pipelines => {
            for p in 0..cfg.width {
                let mut prev: Option<FileId> = None;
                for l in 0..cfg.depth {
                    let out = b.file(format!("p{p}_f{l}"), jit.size(cfg.file_bytes, 0.15));
                    let ins = prev.map(|f| vec![f]).unwrap_or_default();
                    task(&mut b, format!("p{p}_t{l}"), ins, vec![out], &mut jit);
                    prev = Some(out);
                }
            }
        }
        Shape::FanOutFanIn => {
            let mut shared = b.file("seed", jit.size(cfg.file_bytes * 4, 0.1));
            task(&mut b, "collect_0".into(), vec![], vec![shared], &mut jit);
            for l in 0..cfg.depth {
                let mut outs = Vec::new();
                for w in 0..cfg.width {
                    let out = b.file(format!("l{l}_f{w}"), jit.size(cfg.file_bytes, 0.15));
                    task(
                        &mut b,
                        format!("l{l}_t{w}"),
                        vec![shared],
                        vec![out],
                        &mut jit,
                    );
                    outs.push(out);
                }
                let next = b.file(format!("merge_{l}"), jit.size(cfg.file_bytes * 4, 0.1));
                task(
                    &mut b,
                    format!("collect_{}", l + 1),
                    outs,
                    vec![next],
                    &mut jit,
                );
                shared = next;
            }
        }
        Shape::RandomLayered { fanin } => {
            let mut prev: Vec<FileId> = Vec::new();
            for l in 0..cfg.depth {
                let mut outs = Vec::new();
                for w in 0..cfg.width {
                    let out = b.file(format!("l{l}_f{w}"), jit.size(cfg.file_bytes, 0.15));
                    let mut ins: Vec<FileId> = (0..fanin)
                        .filter_map(|_| {
                            if prev.is_empty() {
                                None
                            } else {
                                uid = uid.wrapping_mul(1664525).wrapping_add(1013904223);
                                Some(prev[(uid as usize) % prev.len()])
                            }
                        })
                        .collect();
                    ins.sort_unstable();
                    ins.dedup();
                    task(&mut b, format!("l{l}_t{w}"), ins, vec![out], &mut jit);
                    outs.push(out);
                }
                prev = outs;
            }
        }
    }

    let wf = b.build().expect("synthetic shapes are acyclic");
    debug_assert_eq!(wf.task_count() as u32, cfg.task_count());
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdag::analysis;

    #[test]
    fn pipelines_have_no_cross_talk() {
        let wf = synthetic(SyntheticConfig {
            shape: Shape::Pipelines,
            width: 5,
            depth: 3,
            ..SyntheticConfig::default()
        });
        assert_eq!(wf.task_count(), 15);
        assert_eq!(analysis::level_histogram(&wf), vec![5, 5, 5]);
        // Each root starts its own pipeline.
        assert_eq!(wf.roots().len(), 5);
    }

    #[test]
    fn fan_out_fan_in_serialises_levels() {
        let cfg = SyntheticConfig {
            shape: Shape::FanOutFanIn,
            width: 6,
            depth: 2,
            ..SyntheticConfig::default()
        };
        let wf = synthetic(cfg);
        assert_eq!(wf.task_count() as u32, cfg.task_count());
        // collect_0 -> 6 workers -> collect_1 -> 6 workers -> collect_2.
        assert_eq!(analysis::level_histogram(&wf), vec![1, 6, 1, 6, 1]);
        assert_eq!(wf.roots().len(), 1);
    }

    #[test]
    fn random_layered_is_valid_and_connected_forward() {
        let wf = synthetic(SyntheticConfig {
            shape: Shape::RandomLayered { fanin: 2 },
            width: 8,
            depth: 4,
            ..SyntheticConfig::default()
        });
        assert_eq!(wf.task_count(), 32);
        // Levels monotonically ordered along edges (validated by build,
        // asserted again here for the generator).
        for &t in wf.topo_order() {
            for f in &wf.task(t).inputs {
                if let Some(p) = wf.file(*f).producer {
                    assert!(wf.task(p).level < wf.task(t).level);
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let (a, b) = (synthetic(cfg), synthetic(cfg));
        for (x, y) in a.files().iter().zip(b.files()) {
            assert_eq!(x.size, y.size);
        }
    }

    #[test]
    fn profiles_respond_to_parameters() {
        use crate::profiler::{classify, profile, Grade};
        // Crank I/O: big files, small CPU → I/O-heavy grade.
        let io_heavy = synthetic(SyntheticConfig {
            cpu_secs: 0.5,
            file_bytes: 200_000_000,
            ..SyntheticConfig::default()
        });
        assert_eq!(classify(&profile(&io_heavy)).io, Grade::High);
        // Crank CPU: hours of compute on tiny files → CPU-heavy grade.
        let cpu_heavy = synthetic(SyntheticConfig {
            cpu_secs: 300.0,
            file_bytes: 100_000,
            ..SyntheticConfig::default()
        });
        assert_eq!(classify(&profile(&cpu_heavy)).cpu, Grade::High);
    }

    #[test]
    fn synthetic_runs_end_to_end() {
        // Quick sanity: the generated DAGs execute through the engine.
        // (Full storage sweeps live in examples/storage_shootout.rs.)
        let wf = synthetic(SyntheticConfig {
            width: 4,
            depth: 2,
            ..SyntheticConfig::default()
        });
        assert!(wf.task_count() > 0);
        assert!(analysis::critical_path_secs(&wf) > 0.0);
    }
}
