//! Deterministic service-time and file-size jitter for the generators.

use simcore::DetRng;

/// Draws jittered sizes and durations from a named deterministic stream.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: DetRng,
}

impl Jitter {
    /// A jitter stream for `label` under `seed`.
    pub fn new(seed: u64, label: &str) -> Self {
        Jitter {
            rng: DetRng::stream(seed, label),
        }
    }

    /// A file size near `mean` bytes with coefficient of variation `cv`
    /// (log-normal, never below 1 byte).
    pub fn size(&mut self, mean: u64, cv: f64) -> u64 {
        (self.rng.lognormal_mean_cv(mean as f64, cv).round() as u64).max(1)
    }

    /// A duration near `mean` seconds with coefficient of variation `cv`
    /// (log-normal, never below 1 ms).
    pub fn secs(&mut self, mean: f64, cv: f64) -> f64 {
        self.rng.lognormal_mean_cv(mean, cv).max(0.001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Jitter::new(1, "x");
        let mut b = Jitter::new(1, "x");
        assert_eq!(a.size(1000, 0.2), b.size(1000, 0.2));
        assert_eq!(a.secs(2.0, 0.2).to_bits(), b.secs(2.0, 0.2).to_bits());
    }

    #[test]
    fn sizes_concentrate_near_mean() {
        let mut j = Jitter::new(7, "s");
        let n = 5000;
        let sum: u64 = (0..n).map(|_| j.size(1_000_000, 0.1)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1e6).abs() / 1e6 < 0.02, "mean {mean}");
    }

    #[test]
    fn floors_apply() {
        let mut j = Jitter::new(7, "f");
        assert!(j.size(1, 3.0) >= 1);
        assert!(j.secs(0.0001, 0.1) >= 0.001);
    }
}
