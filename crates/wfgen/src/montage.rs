//! The Montage astronomy workflow (§II).
//!
//! Montage builds science-grade image mosaics. The paper runs an 8-degree
//! square mosaic: **10,429 tasks, 4.2 GB input, 7.9 GB of (non-temporary)
//! output**, tens of thousands of accesses to relatively small (1–10 MB)
//! files, >95 % of its time in I/O — the I/O-bound application of Table I.
//!
//! Structure (standard Montage pipeline):
//!
//! ```text
//! raw FITS ──> mProjectPP ──> mDiffFit (per overlap) ──> mConcatFit ─┐
//!      (per image)   │                                              v
//!                    │                                          mBgModel
//!                    v                                              │
//!               mBackground (per image) <── corrections.tbl ────────┘
//!                    │
//!                    v
//!          mImgtbl ─> mAdd (per tile) ─> mShrink ─> mJPEG
//! ```
//!
//! The per-level counts below are synthetic but sum to exactly 10,429
//! tasks for the paper-scale instance, with byte totals matching §II.

use crate::jitter::Jitter;
use serde::{Deserialize, Serialize};
use wfdag::{FileId, Workflow, WorkflowBuilder};

/// Megabyte, decimal (the unit the paper speaks in).
pub const MB: u64 = 1_000_000;

/// Shape parameters of a Montage instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MontageConfig {
    /// Number of raw input images (and thus mProjectPP / mBackground
    /// tasks).
    pub images: u32,
    /// Number of overlap pairs (mDiffFit tasks).
    pub diffs: u32,
    /// Number of mosaic tiles (mAdd / mShrink tasks).
    pub tiles: u32,
    /// Experiment seed for service-time jitter.
    pub seed: u64,
}

impl MontageConfig {
    /// The paper's 8-degree mosaic: 2102 + 6171 + 2102 + 25 + 25 and four
    /// singleton tasks = **10,429 tasks**.
    pub fn paper() -> Self {
        MontageConfig {
            images: 2102,
            diffs: 6171,
            tiles: 25,
            seed: 42,
        }
    }

    /// A small instance with the same shape, for tests.
    pub fn tiny() -> Self {
        MontageConfig {
            images: 12,
            diffs: 30,
            tiles: 4,
            seed: 42,
        }
    }

    /// An instance for a `d`-degree square mosaic.
    ///
    /// Input images cover a fixed patch of sky, so their count grows with
    /// the mosaic area (d²); overlaps grow proportionally, and the tile
    /// grid with the mosaic's linear size. Calibrated so `degrees(8)`
    /// produces the paper's 2102-image instance.
    pub fn degrees(d: u32) -> Self {
        assert!(
            (1..=20).contains(&d),
            "supported mosaic sizes: 1-20 degrees"
        );
        let images = (2102 * d * d + 32) / 64; // ≈ 32.8 images per deg²
        let diffs = images * 3 - images / 3; // ≈ 2.94 diffs per image
        let tiles = (25 * d + 4) / 8; // ≈ 3.1 tiles per degree
        MontageConfig {
            images: images.max(4),
            diffs: diffs.max(4),
            tiles: tiles.max(1),
            seed: 42,
        }
    }

    /// Total task count this config will generate.
    pub fn task_count(&self) -> u32 {
        // mProjectPP + mDiffFit + mBackground + mAdd + mShrink
        //   + mConcatFit + mBgModel + mImgtbl + mJPEG.
        self.images + self.diffs + self.images + self.tiles + self.tiles + 4
    }
}

/// Generate a Montage workflow.
pub fn montage(cfg: MontageConfig) -> Workflow {
    assert!(cfg.images >= 2 && cfg.diffs >= 1 && cfg.tiles >= 1);
    let mut b = WorkflowBuilder::new(format!("montage-{}img", cfg.images));
    let mut jit = Jitter::new(cfg.seed, "montage");

    // Raw images: 4.2 GB over the image count (2.0 MB each at paper
    // scale).
    let raw_bytes = (4200.0 * MB as f64 / f64::from(cfg.images)) as u64;
    let raw: Vec<FileId> = (0..cfg.images)
        .map(|i| b.file(format!("raw_{i:05}.fits"), jit.size(raw_bytes, 0.10)))
        .collect();

    // mProjectPP: projected image + area file, ~1.65x the raw size each.
    let mem_small = 256 << 20; // Montage tasks are lightweight (Table I: Low)
    let mut proj = Vec::with_capacity(cfg.images as usize);
    let mut area = Vec::with_capacity(cfg.images as usize);
    for i in 0..cfg.images {
        let p = b.file(
            format!("proj_{i:05}.fits"),
            jit.size(raw_bytes * 110 / 100, 0.08),
        );
        let a = b.file(
            format!("area_{i:05}.fits"),
            jit.size(raw_bytes * 110 / 100, 0.08),
        );
        let t = b.task(
            format!("mProjectPP_{i:05}"),
            "mProjectPP",
            jit.secs(1.0, 0.25),
            mem_small,
            vec![raw[i as usize]],
            vec![p, a],
        );
        b.set_io_ops(t, 8);
        proj.push(p);
        area.push(a);
    }

    // mDiffFit: each overlap pair reads two projected images and writes a
    // temporary difference image (a few MB, excluded from the paper's
    // output accounting) plus a small fit file. Pairs walk the image list
    // like a strip mosaic.
    let mut fits = Vec::with_capacity(cfg.diffs as usize);
    for d in 0..cfg.diffs {
        let i = (d % (cfg.images - 1)) as usize;
        let j = i + 1 + (d / (cfg.images - 1)) as usize % (cfg.images as usize - i - 1).max(1);
        let j = j.min(cfg.images as usize - 1);
        let diff_img = b.file(
            format!("diff_{d:05}.fits"),
            jit.size(raw_bytes * 200 / 100, 0.1),
        );
        let fit = b.file(format!("fit_{d:05}.txt"), jit.size(4_000, 0.3));
        let t = b.task(
            format!("mDiffFit_{d:05}"),
            "mDiffFit",
            jit.secs(0.2, 0.3),
            mem_small,
            vec![proj[i], proj[j]],
            vec![diff_img, fit],
        );
        b.set_io_ops(t, 8);
        fits.push(fit);
    }

    // mConcatFit: all fit files -> one table.
    let fits_tbl = b.file("fits.tbl", MB);
    b.task(
        "mConcatFit",
        "mConcatFit",
        jit.secs(8.0, 0.1),
        mem_small,
        fits,
        vec![fits_tbl],
    );

    // mBgModel: fit table -> correction table.
    let corrections = b.file("corrections.tbl", MB / 2);
    b.task(
        "mBgModel",
        "mBgModel",
        jit.secs(30.0, 0.1),
        512 << 20,
        vec![fits_tbl],
        vec![corrections],
    );

    // mBackground: per image, corrected image of the projected size.
    let mut corrected = Vec::with_capacity(cfg.images as usize);
    for i in 0..cfg.images {
        let c = b.file(
            format!("corr_{i:05}.fits"),
            jit.size(raw_bytes * 160 / 100, 0.08),
        );
        let t = b.task(
            format!("mBackground_{i:05}"),
            "mBackground",
            jit.secs(0.2, 0.3),
            mem_small,
            vec![proj[i as usize], corrections],
            vec![c],
        );
        b.set_io_ops(t, 8);
        corrected.push(c);
    }

    // mImgtbl: metadata pass over the corrected set (header reads are
    // modelled as a table-only input).
    let images_tbl = b.file("images.tbl", MB);
    b.task(
        "mImgtbl",
        "mImgtbl",
        jit.secs(5.0, 0.1),
        mem_small,
        vec![corrections],
        vec![images_tbl],
    );

    // mAdd: each tile co-adds its share of corrected images. Tiles are
    // sized so the tile set matches the paper's 7.9 GB of products:
    // tiles (~7.5 GB) + shrunk versions + jpeg.
    let tile_bytes = (7500.0 * MB as f64 / f64::from(cfg.tiles)) as u64;
    let per_tile = (cfg.images as usize).div_ceil(cfg.tiles as usize);
    let mut shrunk = Vec::with_capacity(cfg.tiles as usize);
    for t in 0..cfg.tiles {
        let lo = (t as usize * per_tile).min(corrected.len());
        let hi = ((t as usize + 1) * per_tile).min(corrected.len());
        let mut ins: Vec<FileId> = corrected[lo..hi].to_vec();
        // mAdd co-adds using each image's area (coverage) file too.
        ins.extend(&area[lo..hi]);
        // Border tiles also read neighbours; keep at least one image.
        if ins.is_empty() {
            ins.push(corrected[corrected.len() - 1]);
        }
        ins.push(images_tbl);
        let tile = b.file(format!("mosaic_{t:02}.fits"), jit.size(tile_bytes, 0.05));
        let tid = b.task(
            format!("mAdd_{t:02}"),
            "mAdd",
            jit.secs(25.0, 0.15),
            768 << 20,
            ins,
            vec![tile],
        );
        b.set_io_ops(tid, 120);
        let small = b.file(
            format!("shrunk_{t:02}.fits"),
            jit.size(tile_bytes / 12, 0.05),
        );
        b.task(
            format!("mShrink_{t:02}"),
            "mShrink",
            jit.secs(4.0, 0.15),
            mem_small,
            vec![tile],
            vec![small],
        );
        shrunk.push(small);
    }

    // mJPEG: browse product from the shrunk tiles.
    let jpeg = b.file("mosaic.jpg", 55 * MB);
    b.task(
        "mJPEG",
        "mJPEG",
        jit.secs(12.0, 0.1),
        mem_small,
        shrunk,
        vec![jpeg],
    );

    let wf = b.build().expect("montage generator produces a valid DAG");
    debug_assert_eq!(wf.task_count() as u32, cfg.task_count());
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdag::{analysis, FileClass};

    #[test]
    fn paper_scale_has_exactly_10429_tasks() {
        let cfg = MontageConfig::paper();
        assert_eq!(cfg.task_count(), 10_429);
        let wf = montage(cfg);
        assert_eq!(wf.task_count(), 10_429);
    }

    #[test]
    fn paper_scale_byte_totals_match_section_ii() {
        let wf = montage(MontageConfig::paper());
        let s = analysis::stats(&wf);
        let gb = 1e9;
        let input_gb = s.input_bytes as f64 / gb;
        assert!((4.0..=4.4).contains(&input_gb), "input {input_gb} GB");
        // The paper's "7.9 GB of output" counts the mosaic products
        // (tiles + shrunk + jpeg); tiles are DAG-intermediate because
        // mShrink consumes them.
        let products: u64 = wf
            .tasks()
            .iter()
            .filter(|t| matches!(t.transformation.as_str(), "mAdd" | "mShrink" | "mJPEG"))
            .map(|t| t.output_bytes(wf.files()))
            .sum();
        let products_gb = products as f64 / gb;
        assert!(
            (7.5..=8.3).contains(&products_gb),
            "products {products_gb} GB"
        );
    }

    #[test]
    fn file_population_is_small_files() {
        let wf = montage(MontageConfig::paper());
        // §V.A: a large number (~tens of thousands) of relatively small
        // files, most 1-10 MB.
        assert!(wf.file_count() > 10_000, "{}", wf.file_count());
        let small = wf
            .files()
            .iter()
            .filter(|f| (MB..=10 * MB).contains(&f.size))
            .count();
        assert!(
            small as f64 > wf.file_count() as f64 * 0.55,
            "small files {small}/{}",
            wf.file_count()
        );
        let s = analysis::stats(&wf);
        assert!(s.file_accesses > 29_000, "accesses {}", s.file_accesses);
    }

    #[test]
    fn montage_is_io_heavy_and_low_memory() {
        let wf = montage(MontageConfig::paper());
        let s = analysis::stats(&wf);
        // Bytes per CPU second is an order of magnitude beyond the other
        // applications (Table I: I/O High, CPU Low).
        let bytes_per_cpu = (s.bytes_read + s.bytes_written) as f64 / s.total_cpu_secs;
        assert!(bytes_per_cpu > 10e6, "bytes/cpu-s {bytes_per_cpu}");
        assert!(wf.tasks().iter().all(|t| t.peak_mem <= 1 << 30));
    }

    #[test]
    fn tiny_instance_is_valid_and_same_shape() {
        let wf = montage(MontageConfig::tiny());
        assert_eq!(wf.task_count() as u32, MontageConfig::tiny().task_count());
        let outputs = wf
            .files()
            .iter()
            .filter(|f| f.class == FileClass::Output)
            .count();
        assert!(outputs >= 1);
        // Deepest chain: raw -> proj -> diff -> concat -> bgmodel ->
        // background -> (imgtbl) -> add -> shrink -> jpeg.
        let levels = analysis::level_histogram(&wf).len();
        assert!(levels >= 7, "levels {levels}");
    }

    #[test]
    fn degrees_8_matches_the_paper_instance() {
        let d8 = MontageConfig::degrees(8);
        assert_eq!(d8.images, 2102);
        assert_eq!(d8.tiles, 25);
        // Diffs land within a few percent of the paper's 6171 (the exact
        // overlap count depends on sky geometry).
        assert!((5600..=6600).contains(&d8.diffs), "{}", d8.diffs);
    }

    #[test]
    fn smaller_mosaics_scale_down_quadratically() {
        let d1 = MontageConfig::degrees(1);
        let d4 = MontageConfig::degrees(4);
        let d8 = MontageConfig::degrees(8);
        assert!(d1.images < d4.images && d4.images < d8.images);
        // Area scaling: 4 degrees has ~1/4 the images of 8 degrees.
        let ratio = f64::from(d8.images) / f64::from(d4.images);
        assert!((3.6..=4.4).contains(&ratio), "{ratio}");
        // Every size must produce a valid workflow.
        for d in [1u32, 2, 4] {
            let wf = montage(MontageConfig::degrees(d));
            assert_eq!(
                wf.task_count() as u32,
                MontageConfig::degrees(d).task_count()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = montage(MontageConfig::tiny());
        let b = montage(MontageConfig::tiny());
        for (x, y) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(x.cpu_secs.to_bits(), y.cpu_secs.to_bits());
        }
        for (x, y) in a.files().iter().zip(b.files()) {
            assert_eq!(x.size, y.size);
        }
    }
}
