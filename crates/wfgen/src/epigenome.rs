//! The Epigenome bioinformatics workflow (§II).
//!
//! Epigenome maps short DNA reads against a reference genome with MAQ:
//! split lane files into chunks, filter/reformat/convert each chunk, map
//! each chunk, merge the maps, and compute sequence densities. The paper's
//! chromosome-21 instance: **529 tasks, 1.9 GB input, 300 MB output**,
//! CPU-bound (99 % of runtime in the CPU).
//!
//! Task budget at paper scale: 7 fastqSplit + 4 × 128 per-chunk stages
//! (filterContams, sol2sanger, fastq2bfq, map) + 8 mapMerge + 1 mapIndex
//! + 1 density = **529**.

use crate::jitter::Jitter;
use serde::{Deserialize, Serialize};
use wfdag::{FileId, Workflow, WorkflowBuilder};

/// Megabyte, decimal.
pub const MB: u64 = 1_000_000;

/// Shape parameters of an Epigenome instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpigenomeConfig {
    /// Sequencing lane files.
    pub lanes: u32,
    /// Chunks the lanes are split into (must be ≥ lanes).
    pub chunks: u32,
    /// First-level merge fan-in groups.
    pub merges: u32,
    /// Experiment seed for jitter.
    pub seed: u64,
}

impl EpigenomeConfig {
    /// The paper's chr21 instance: 529 tasks.
    pub fn paper() -> Self {
        EpigenomeConfig {
            lanes: 7,
            chunks: 128,
            merges: 8,
            seed: 42,
        }
    }

    /// A small instance for tests.
    pub fn tiny() -> Self {
        EpigenomeConfig {
            lanes: 2,
            chunks: 8,
            merges: 2,
            seed: 42,
        }
    }

    /// Total task count this config will generate.
    pub fn task_count(&self) -> u32 {
        self.lanes + 4 * self.chunks + self.merges + 2
    }
}

/// Generate an Epigenome workflow.
pub fn epigenome(cfg: EpigenomeConfig) -> Workflow {
    assert!(cfg.lanes >= 1 && cfg.chunks >= cfg.lanes && cfg.merges >= 1);
    let mut b = WorkflowBuilder::new(format!("epigenome-{}ch", cfg.chunks));
    let mut jit = Jitter::new(cfg.seed, "epigenome");

    // Inputs: lane files (~1.885 GB total at paper scale) + the binary
    // chromosome-21 reference (~15 MB), totalling the paper's 1.9 GB.
    let lane_bytes = (1885.0 * MB as f64 / f64::from(cfg.lanes)) as u64;
    let lanes: Vec<FileId> = (0..cfg.lanes)
        .map(|l| b.file(format!("lane_{l}.fastq"), jit.size(lane_bytes, 0.05)))
        .collect();
    let reference = b.file("chr21.bfa", jit.size(15 * MB, 0.02));

    // fastqSplit: lane -> chunks (chunks distributed as evenly as
    // possible across lanes).
    let chunk_bytes = (1885.0 * MB as f64 / f64::from(cfg.chunks)) as u64;
    let mut chunks: Vec<FileId> = Vec::with_capacity(cfg.chunks as usize);
    for l in 0..cfg.lanes {
        let share = (cfg.chunks / cfg.lanes + u32::from(l < cfg.chunks % cfg.lanes)) as usize;
        let outs: Vec<FileId> = (0..share)
            .map(|k| {
                b.file(
                    format!("chunk_{l}_{k:03}.fastq"),
                    jit.size(chunk_bytes, 0.08),
                )
            })
            .collect();
        b.task(
            format!("fastqSplit_{l}"),
            "fastqSplit",
            jit.secs(8.0, 0.15),
            512 << 20,
            vec![lanes[l as usize]],
            outs.clone(),
        );
        chunks.extend(outs);
    }
    debug_assert_eq!(chunks.len() as u32, cfg.chunks);

    // Per-chunk pipeline: filterContams -> sol2sanger -> fastq2bfq -> map.
    let mut maps = Vec::with_capacity(cfg.chunks as usize);
    for (c, &chunk) in chunks.iter().enumerate() {
        let filtered = b.file(
            format!("filt_{c:03}.fastq"),
            jit.size(chunk_bytes * 95 / 100, 0.08),
        );
        b.task(
            format!("filterContams_{c:03}"),
            "filterContams",
            jit.secs(4.0, 0.2),
            300 << 20,
            vec![chunk],
            vec![filtered],
        );
        let sanger = b.file(
            format!("sanger_{c:03}.fastq"),
            jit.size(chunk_bytes * 95 / 100, 0.08),
        );
        b.task(
            format!("sol2sanger_{c:03}"),
            "sol2sanger",
            jit.secs(2.5, 0.2),
            300 << 20,
            vec![filtered],
            vec![sanger],
        );
        let bfq = b.file(
            format!("bfq_{c:03}.bfq"),
            jit.size(chunk_bytes * 45 / 100, 0.08),
        );
        b.task(
            format!("fastq2bfq_{c:03}"),
            "fastq2bfq",
            jit.secs(2.0, 0.2),
            300 << 20,
            vec![sanger],
            vec![bfq],
        );
        // MAQ map: the CPU furnace (99 % of runtime is CPU, §II).
        let map = b.file(format!("map_{c:03}.map"), jit.size(2_300_000, 0.15));
        let t = b.task(
            format!("map_{c:03}"),
            "maq_map",
            jit.secs(112.0, 0.15),
            800 << 20,
            vec![bfq, reference],
            vec![map],
        );
        b.set_io_ops(t, 250);
        maps.push(map);
    }

    // mapMerge tree: chunks -> merge groups -> one map.
    let mut merged = Vec::with_capacity(cfg.merges as usize);
    let group = (cfg.chunks as usize).div_ceil(cfg.merges as usize);
    for m in 0..cfg.merges {
        let lo = (m as usize * group).min(maps.len());
        let hi = ((m as usize + 1) * group).min(maps.len());
        let mut ins: Vec<FileId> = maps[lo..hi].to_vec();
        if ins.is_empty() {
            ins.push(maps[maps.len() - 1]);
        }
        let out = b.file(format!("merged_{m}.map"), jit.size(34 * MB, 0.1));
        b.task(
            format!("mapMerge_{m}"),
            "mapMerge",
            jit.secs(12.0, 0.15),
            600 << 20,
            ins,
            vec![out],
        );
        merged.push(out);
    }

    // Final merge + index.
    let final_map = b.file("chr21.final.map", jit.size(270 * MB, 0.05));
    b.task(
        "mapIndex",
        "mapIndex",
        jit.secs(40.0, 0.1),
        900 << 20,
        merged,
        vec![final_map],
    );

    // Sequence density per genome location.
    let density = b.file("chr21.density", jit.size(28 * MB, 0.1));
    b.task(
        "density",
        "mapDensity",
        jit.secs(30.0, 0.1),
        700 << 20,
        vec![final_map],
        vec![density],
    );

    let wf = b.build().expect("epigenome generator produces a valid DAG");
    debug_assert_eq!(wf.task_count() as u32, cfg.task_count());
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfdag::analysis;

    #[test]
    fn paper_scale_has_529_tasks() {
        assert_eq!(EpigenomeConfig::paper().task_count(), 529);
        let wf = epigenome(EpigenomeConfig::paper());
        assert_eq!(wf.task_count(), 529);
    }

    #[test]
    fn paper_byte_totals_match_section_ii() {
        let wf = epigenome(EpigenomeConfig::paper());
        let s = analysis::stats(&wf);
        let input_gb = s.input_bytes as f64 / 1e9;
        assert!((1.8..=2.0).contains(&input_gb), "input {input_gb} GB");
        // The paper's 300 MB of output are the archived products: the
        // final merged map plus the density track.
        let products: u64 = wf
            .tasks()
            .iter()
            .filter(|t| matches!(t.transformation.as_str(), "mapIndex" | "mapDensity"))
            .map(|t| t.output_bytes(wf.files()))
            .sum();
        let out_mb = products as f64 / 1e6;
        assert!((250.0..=350.0).contains(&out_mb), "products {out_mb} MB");
    }

    #[test]
    fn epigenome_is_cpu_bound() {
        let wf = epigenome(EpigenomeConfig::paper());
        let s = analysis::stats(&wf);
        // Far fewer bytes per CPU second than Montage (Table I).
        let bytes_per_cpu = (s.bytes_read + s.bytes_written) as f64 / s.total_cpu_secs;
        assert!(bytes_per_cpu < 2e6, "bytes/cpu-s {bytes_per_cpu}");
        // maq_map dominates the compute demand.
        let map_cpu: f64 = wf
            .tasks()
            .iter()
            .filter(|t| t.transformation == "maq_map")
            .map(|t| t.cpu_secs)
            .sum();
        assert!(map_cpu / s.total_cpu_secs > 0.7);
    }

    #[test]
    fn reference_is_reused_by_every_map_task() {
        let wf = epigenome(EpigenomeConfig::paper());
        let r = wf.files().iter().find(|f| f.name == "chr21.bfa").unwrap();
        assert_eq!(r.consumers.len(), 128);
    }

    #[test]
    fn memory_is_moderate() {
        // Table I: Medium memory — no task above 1 GB, map tasks near it.
        let wf = epigenome(EpigenomeConfig::paper());
        assert!(wf.tasks().iter().all(|t| t.peak_mem < 1 << 30));
        assert!(wf.tasks().iter().any(|t| t.peak_mem >= 512 << 20));
    }

    #[test]
    fn tiny_instance_valid() {
        let wf = epigenome(EpigenomeConfig::tiny());
        assert_eq!(wf.task_count() as u32, EpigenomeConfig::tiny().task_count());
        assert!(analysis::level_histogram(&wf).len() >= 7);
    }
}
