//! Property tests for the headless TUI renderer: for random event
//! sequences and random geometries, `render_frame` returns exactly
//! `rows` lines of exactly `cols` printable-ASCII characters each — the
//! invariant that lets the live viewer repaint with bare cursor-home
//! escapes and no clearing.

use proptest::prelude::*;
use wfobs::{render_frame, Event, FaultKind, Phase, TuiConfig, TuiState};

/// One scripted observability event, scaled onto a small id space so
/// lifecycles actually collide across lanes and nodes.
#[derive(Debug, Clone, Copy)]
struct Step {
    dt_ms: u16,
    kind: u8,
    a: u8,
    b: u8,
}

fn step() -> impl Strategy<Value = Step> {
    (0u16..5_000, 0u8..12, 0u8..8, 0u8..4).prop_map(|(dt_ms, kind, a, b)| Step {
        dt_ms,
        kind,
        a,
        b,
    })
}

fn event_for(s: Step) -> Event {
    let task = u32::from(s.a);
    let node = u32::from(s.b);
    match s.kind {
        0 => Event::TaskStart {
            task,
            node,
            attempt: u32::from(s.a % 3),
        },
        1 => Event::TaskPhase {
            task,
            node,
            phase: match s.a % 6 {
                0 => Phase::Ops,
                1 => Phase::StageIn,
                2 => Phase::Read,
                3 => Phase::Compute,
                4 => Phase::Write,
                _ => Phase::StageOut,
            },
        },
        2 => Event::TaskEnd {
            task,
            node,
            attempt: 1,
        },
        3 => Event::TaskKilled {
            task,
            node,
            wasted_nanos: u64::from(s.dt_ms) * 1_000_000,
        },
        4 => Event::TaskFailed { task, node },
        5 => Event::ReadyDepth { depth: task },
        6 => Event::StorageOp {
            op: wfobs::OpKind::Read,
            node,
            bytes: u64::from(s.a) * 1_000_000,
        },
        7 => Event::Fault {
            kind: match s.a % 3 {
                0 => FaultKind::NodeCrash,
                1 => FaultKind::SpotTermination,
                _ => FaultKind::StorageFailure,
            },
            node,
        },
        8 => Event::NodeRecovered { node },
        9 => Event::SegmentOpen {
            node,
            spot: s.a.is_multiple_of(2),
        },
        10 => Event::SegmentClose { node },
        _ => Event::FilesLost {
            count: u32::from(s.a),
        },
    }
}

proptest! {
    #[test]
    fn every_frame_fits_exactly(
        steps in proptest::collection::vec(step(), 0..120),
        cols in 1usize..200,
        rows in 1usize..60,
        ticks in 1u8..8,
    ) {
        let mut state = TuiState::new(TuiConfig {
            total_tasks: 8,
            window_secs: 30.0,
            ..TuiConfig::default()
        });
        let mut t = 0u64;
        let tick_every = (steps.len() / usize::from(ticks)).max(1);
        for (i, s) in steps.iter().enumerate() {
            t += u64::from(s.dt_ms) * 1_000_000;
            state.apply(t, &event_for(*s));
            if i.is_multiple_of(tick_every) {
                state.tick(t);
            }
            let frame = render_frame(&state, cols, rows);
            let lines: Vec<&str> = frame.split('\n').collect();
            prop_assert_eq!(lines.len(), rows, "row count at step {}", i);
            for line in &lines {
                prop_assert_eq!(line.chars().count(), cols, "line width at step {}", i);
                prop_assert!(
                    line.chars().all(|c| (' '..='~').contains(&c)),
                    "non-printable char in {:?}",
                    line
                );
            }
        }
    }
}
