//! OTLP/JSON export: OpenTelemetry `ExportTraceServiceRequest` /
//! `ExportMetricsServiceRequest` documents rendered from a Full-level
//! [`ObsReport`](crate::bus::ObsReport) — no network, no protobuf crate,
//! file-sink only, byte-deterministic.
//!
//! The mapper turns the flat event stream into a span tree:
//!
//! ```text
//! run <name>                                  (single root per run)
//! └─ node w3 #0..#k   (one span per billing incarnation; SegmentOpen/
//!    │                 SegmentClose; StorageOp/CacheHit/CacheMiss are
//!    │                 span events; billing attrs; links to the
//!    │                 previous incarnation)
//!    └─ task mProject_17 (one span per execution attempt; TaskStart →
//!       │                 TaskEnd/TaskKilled/TaskFailed; retries link
//!       │                 to the previous attempt)
//!       └─ overhead / ops / stage-in / read / compute / write /
//!          stage-out  (one span per lifecycle phase interval)
//! ```
//!
//! Fault-class events (`Fault`, `FilesLost`, `RescueResubmit`,
//! `NodeRecovered`) become span events on the root; resource attributes
//! carry the seed, workflow name, storage backend, cluster size and the
//! final run digest.
//!
//! **Id derivation.** The 128-bit trace id and every 64-bit span id are
//! FNV-1a hashes chained from `(seed, digest)` — the same digest stream
//! that pins replay fidelity — plus the span's structural identity (kind
//! tag, integer id, occurrence ordinal). Same seed + config ⇒ the same
//! digest ⇒ byte-identical OTLP files; the conformance suite asserts
//! uniqueness and reproducibility.
//!
//! **Timestamps.** `timeUnixNano` fields carry *simulated* nanoseconds
//! with epoch 0 = run start (the simulator has no wall clock). Backends
//! like Jaeger/Tempo render such traces as early-1970 sessions, which is
//! harmless; relative durations — the paper's deliverable — are exact.
//!
//! The [`decode`] submodule is the other half of the conformance
//! contract: a minimal in-repo OTLP/JSON reader used only by tests, so
//! well-formedness (single root, resolving parents, nested intervals,
//! unique reproducible ids) and parity (phase/cost reconstruction) are
//! checked end to end through real bytes.

use crate::bus::ObsReport;
use crate::event::{Event, OpKind, Phase};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_step(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Human-readable labels and run metadata the exporter joins back onto
/// the integer-id event stream. Everything here is optional: missing
/// task/node names render as `t<id>`/`w<id>`, missing metadata renders
/// as empty attributes.
#[derive(Debug, Clone, Default)]
pub struct OtlpLabels {
    /// `service.name` resource attribute (e.g. `wfsim`).
    pub service_name: String,
    /// Workflow/run name (`wf.run.name` resource attribute, root span name).
    pub run_name: String,
    /// Storage backend label (`wf.storage.backend` resource attribute).
    pub storage: String,
    /// Cluster size (`wf.cluster.workers` resource attribute).
    pub workers: u32,
    /// Task names by task id.
    pub task_names: Vec<String>,
    /// Node labels by node id.
    pub node_names: Vec<String>,
    /// Billed lease intervals, in per-node incarnation order; attached as
    /// `wf.billing.*` attributes to the matching node-incarnation span.
    pub segments: Vec<SegmentLabel>,
}

/// One billed instance incarnation, as attached to a node span.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentLabel {
    /// Cluster node id the incarnation belonged to.
    pub node: u32,
    /// Instance-type API name (e.g. `c1.xlarge`).
    pub itype: String,
    /// Whether the incarnation ran on the spot market.
    pub spot: bool,
    /// Billed seconds from acquisition to release.
    pub secs: f64,
}

impl OtlpLabels {
    fn task(&self, id: u32) -> String {
        self.task_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("t{id}"))
    }

    fn node(&self, id: u32) -> String {
        self.node_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("w{id}"))
    }
}

/// A typed attribute value (the subset of OTLP `AnyValue` we emit).
#[derive(Debug, Clone, PartialEq)]
enum Attr {
    Str(String),
    I64(i64),
    F64(f64),
    Bool(bool),
}

type Attrs = Vec<(&'static str, Attr)>;

/// One span being assembled by the mapper.
#[derive(Debug)]
struct SpanBuf {
    id: u64,
    /// 0 = no parent (the root span).
    parent: u64,
    name: String,
    start: u64,
    end: u64,
    attrs: Attrs,
    events: Vec<(u64, &'static str, Attrs)>,
    /// `(span id, wf.link attribute)` pairs; linked spans share the trace.
    links: Vec<(u64, &'static str)>,
    /// OTLP status code: 0 unset, 1 ok, 2 error.
    status: u8,
}

impl SpanBuf {
    fn new(id: u64, parent: u64, name: String, start: u64) -> Self {
        SpanBuf {
            id,
            parent,
            name,
            start,
            end: start,
            attrs: Vec::new(),
            events: Vec::new(),
            links: Vec::new(),
            status: 0,
        }
    }
}

/// Deterministic id generator chained from `(seed, digest)`.
struct IdGen {
    base: u64,
}

impl IdGen {
    fn new(seed: u64, digest: u64) -> Self {
        let mut base = fnv_step(FNV_OFFSET, b"wfobs.otlp");
        base = fnv_step(base, &seed.to_le_bytes());
        base = fnv_step(base, &digest.to_le_bytes());
        IdGen { base }
    }

    /// 128-bit trace id as `(hi, lo)`.
    fn trace_id(&self) -> (u64, u64) {
        (
            fnv_step(self.base, b"trace.hi"),
            fnv_step(self.base, b"trace.lo"),
        )
    }

    /// 64-bit span id from a structural identity. Never returns 0 (the
    /// OTLP "invalid span id").
    fn span_id(&self, tag: u8, a: u64, b: u64) -> u64 {
        let mut s = fnv_step(self.base, &[tag]);
        s = fnv_step(s, &a.to_le_bytes());
        s = fnv_step(s, &b.to_le_bytes());
        if s == 0 {
            1
        } else {
            s
        }
    }
}

const TAG_RUN: u8 = 0;
const TAG_NODE: u8 = 1;
const TAG_TASK: u8 = 2;
const TAG_PHASE: u8 = 3;

/// Phase label including the implicit dispatch-overhead interval.
fn phase_label(p: Option<Phase>) -> &'static str {
    match p {
        None => "overhead",
        Some(p) => p.label(),
    }
}

fn op_event_name(op: OpKind) -> &'static str {
    match op {
        OpKind::Read => "storage.read",
        OpKind::Write => "storage.write",
        OpKind::StageIn => "storage.stage_in",
        OpKind::StageOut => "storage.stage_out",
        OpKind::OpStorm => "storage.op_storm",
    }
}

/// Mapper state for one open task attempt.
struct OpenAttempt {
    span_ix: usize,
    node: u32,
    /// Occurrence ordinal of this attempt (counts `TaskStart`s).
    ordinal: u64,
    /// Currently open phase interval (`None` = dispatch overhead).
    phase: Option<Phase>,
    phase_start: u64,
    phase_seq: u64,
}

/// Everything the span mapper produced.
struct SpanForest {
    trace_hi: u64,
    trace_lo: u64,
    spans: Vec<SpanBuf>,
}

/// Close the task's open phase interval as a phase span.
#[allow(clippy::too_many_arguments)]
fn close_phase(spans: &mut Vec<SpanBuf>, ids: &IdGen, task: u32, att: &mut OpenAttempt, t: u64) {
    let id = ids.span_id(
        TAG_PHASE,
        u64::from(task),
        (att.ordinal << 16) | att.phase_seq,
    );
    let mut s = SpanBuf::new(
        id,
        spans[att.span_ix].id,
        phase_label(att.phase).to_string(),
        att.phase_start,
    );
    s.end = t;
    s.attrs
        .push(("wf.phase", Attr::Str(phase_label(att.phase).to_string())));
    spans.push(s);
    att.phase_seq += 1;
    att.phase_start = t;
}

/// Build the span tree from the recorded event stream.
fn build_spans(report: &ObsReport, labels: &OtlpLabels) -> SpanForest {
    let ids = IdGen::new(report.seed, report.digest);
    let (trace_hi, trace_lo) = ids.trace_id();
    let mut spans: Vec<SpanBuf> = Vec::new();

    // Root span (index 0) — closed at the last observed timestamp.
    let root_name = if labels.run_name.is_empty() {
        "run".to_string()
    } else {
        format!("run {}", labels.run_name)
    };
    let root_id = ids.span_id(TAG_RUN, 0, 0);
    let mut root = SpanBuf::new(root_id, 0, root_name, 0);
    root.attrs.push(("wf.seed", Attr::I64(report.seed as i64)));
    root.attrs
        .push(("wf.digest", Attr::Str(format!("{:016x}", report.digest))));
    root.attrs
        .push(("wf.events", Attr::I64(report.events.len() as i64)));
    root.status = 1;
    spans.push(root);

    // Per-node incarnation bookkeeping.
    let mut inc_open: Vec<Option<usize>> = Vec::new(); // node -> open span ix
    let mut inc_seen: Vec<u64> = Vec::new(); // node -> incarnations so far
    let mut inc_prev: Vec<u64> = Vec::new(); // node -> previous incarnation span id
                                             // Per-node billing cursor into `labels.segments` (grouped by node).
    let mut seg_cursor: Vec<usize> = Vec::new();

    // Per-task attempt bookkeeping (BTreeMap: end-of-stream closing must
    // iterate deterministically).
    let mut open_tasks: std::collections::BTreeMap<u32, OpenAttempt> =
        std::collections::BTreeMap::new();
    let mut starts_seen: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    let mut prev_attempt: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    let mut rescue_pending: std::collections::BTreeMap<u32, bool> =
        std::collections::BTreeMap::new();

    let grow = |v: &mut Vec<Option<usize>>, n: usize| {
        if v.len() <= n {
            v.resize(n + 1, None);
        }
    };

    let mut t_end: u64 = 0;
    for &(t, ev) in &report.events {
        t_end = t_end.max(t);
        match ev {
            Event::SegmentOpen { node, spot } => {
                let n = node as usize;
                grow(&mut inc_open, n);
                if inc_seen.len() <= n {
                    inc_seen.resize(n + 1, 0);
                    inc_prev.resize(n + 1, 0);
                    seg_cursor.resize(n + 1, 0);
                }
                let ordinal = inc_seen[n];
                inc_seen[n] += 1;
                let id = ids.span_id(TAG_NODE, u64::from(node), ordinal);
                let name = if ordinal == 0 {
                    labels.node(node)
                } else {
                    format!("{} #{ordinal}", labels.node(node))
                };
                let mut s = SpanBuf::new(id, root_id, name, t);
                s.attrs.push(("wf.node.id", Attr::I64(i64::from(node))));
                s.attrs
                    .push(("wf.node.incarnation", Attr::I64(ordinal as i64)));
                s.attrs.push(("wf.node.spot", Attr::Bool(spot)));
                // Pair the incarnation with its billed segment, in
                // per-node order.
                let mut skipped = seg_cursor[n];
                for (i, seg) in labels.segments.iter().enumerate().skip(skipped) {
                    if seg.node == node {
                        s.attrs
                            .push(("wf.billing.itype", Attr::Str(seg.itype.clone())));
                        s.attrs.push(("wf.billing.spot", Attr::Bool(seg.spot)));
                        s.attrs.push(("wf.billing.secs", Attr::F64(seg.secs)));
                        skipped = i + 1;
                        break;
                    }
                    skipped = i + 1;
                }
                seg_cursor[n] = skipped;
                if ordinal > 0 {
                    s.links.push((inc_prev[n], "previous_incarnation"));
                }
                s.status = 1;
                inc_prev[n] = id;
                inc_open[n] = Some(spans.len());
                spans.push(s);
            }
            Event::SegmentClose { node } => {
                let n = node as usize;
                grow(&mut inc_open, n);
                if let Some(ix) = inc_open[n].take() {
                    spans[ix].end = t;
                }
            }
            Event::TaskStart {
                task,
                node,
                attempt,
            } => {
                let ordinal = {
                    let c = starts_seen.entry(task).or_insert(0);
                    let o = *c;
                    *c += 1;
                    o
                };
                let parent = inc_open
                    .get(node as usize)
                    .copied()
                    .flatten()
                    .map_or(root_id, |ix| spans[ix].id);
                let id = ids.span_id(TAG_TASK, u64::from(task), ordinal);
                let mut s = SpanBuf::new(id, parent, labels.task(task), t);
                s.attrs.push(("wf.task.id", Attr::I64(i64::from(task))));
                s.attrs
                    .push(("wf.task.attempt", Attr::I64(i64::from(attempt))));
                s.attrs.push(("wf.node.id", Attr::I64(i64::from(node))));
                if let Some(prev) = prev_attempt.get(&task) {
                    let kind = if rescue_pending.remove(&task).is_some() {
                        "rescue_rerun_of"
                    } else {
                        "retry_of"
                    };
                    s.links.push((*prev, kind));
                }
                prev_attempt.insert(task, id);
                open_tasks.insert(
                    task,
                    OpenAttempt {
                        span_ix: spans.len(),
                        node,
                        ordinal,
                        phase: None,
                        phase_start: t,
                        phase_seq: 0,
                    },
                );
                spans.push(s);
            }
            Event::TaskPhase { task, phase, .. } => {
                if let Some(att) = open_tasks.get_mut(&task) {
                    close_phase(&mut spans, &ids, task, att, t);
                    att.phase = Some(phase);
                }
            }
            Event::TaskEnd { task, .. }
            | Event::TaskKilled { task, .. }
            | Event::TaskFailed { task, .. } => {
                if let Some(mut att) = open_tasks.remove(&task) {
                    close_phase(&mut spans, &ids, task, &mut att, t);
                    let s = &mut spans[att.span_ix];
                    s.end = t;
                    let (outcome, status) = match ev {
                        Event::TaskEnd { .. } => ("ok", 1),
                        Event::TaskKilled { .. } => ("killed", 2),
                        _ => ("failed", 2),
                    };
                    s.attrs
                        .push(("wf.task.outcome", Attr::Str(outcome.to_string())));
                    s.status = status;
                    if let Event::TaskKilled { wasted_nanos, .. } = ev {
                        s.attrs
                            .push(("wf.task.wasted_nanos", Attr::I64(wasted_nanos as i64)));
                    }
                }
            }
            Event::StorageOp { op, node, bytes } => {
                let target = inc_open.get(node as usize).copied().flatten().unwrap_or(0);
                spans[target].events.push((
                    t,
                    op_event_name(op),
                    vec![
                        ("wf.op.kind", Attr::Str(op.label().to_string())),
                        ("wf.op.bytes", Attr::I64(bytes as i64)),
                        ("wf.node.id", Attr::I64(i64::from(node))),
                    ],
                ));
            }
            Event::CacheHit { node } => {
                let target = inc_open.get(node as usize).copied().flatten().unwrap_or(0);
                spans[target].events.push((
                    t,
                    "cache.hit",
                    vec![("wf.node.id", Attr::I64(i64::from(node)))],
                ));
            }
            Event::CacheMiss { node } => {
                let target = inc_open.get(node as usize).copied().flatten().unwrap_or(0);
                spans[target].events.push((
                    t,
                    "cache.miss",
                    vec![("wf.node.id", Attr::I64(i64::from(node)))],
                ));
            }
            Event::Fault { kind, node } => {
                spans[0].events.push((
                    t,
                    "fault",
                    vec![
                        ("wf.fault.kind", Attr::Str(kind.label().to_string())),
                        ("wf.node.id", Attr::I64(i64::from(node))),
                    ],
                ));
            }
            Event::FilesLost { count } => {
                spans[0].events.push((
                    t,
                    "files_lost",
                    vec![("wf.files.count", Attr::I64(i64::from(count)))],
                ));
            }
            Event::RescueResubmit { task } => {
                rescue_pending.insert(task, true);
                spans[0].events.push((
                    t,
                    "rescue_resubmit",
                    vec![("wf.task.id", Attr::I64(i64::from(task)))],
                ));
            }
            Event::NodeRecovered { node } => {
                spans[0].events.push((
                    t,
                    "node_recovered",
                    vec![("wf.node.id", Attr::I64(i64::from(node)))],
                ));
            }
            // Flow- and queue-level events are metrics material, not spans.
            _ => {}
        }
    }

    // Close everything still open (a run that ended mid-fault, rescue
    // pending) at the last observed timestamp so intervals stay nested.
    let open_left: Vec<u32> = open_tasks.keys().copied().collect();
    for task in open_left {
        let mut att = open_tasks.remove(&task).expect("key just listed");
        close_phase(&mut spans, &ids, task, &mut att, t_end);
        let s = &mut spans[att.span_ix];
        s.end = t_end;
        s.attrs
            .push(("wf.task.outcome", Attr::Str("unfinished".to_string())));
        let _ = att.node;
    }
    for slot in inc_open.iter_mut() {
        if let Some(ix) = slot.take() {
            spans[ix].end = t_end;
        }
    }
    spans[0].end = t_end;

    SpanForest {
        trace_hi,
        trace_lo,
        spans,
    }
}

// ---------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// OTLP `AnyValue` JSON. int64 values are decimal strings, per the
/// proto3 JSON mapping OTLP/JSON uses.
fn attr_value_json(v: &Attr) -> String {
    match v {
        Attr::Str(s) => format!("{{\"stringValue\":\"{}\"}}", esc(s)),
        Attr::I64(n) => format!("{{\"intValue\":\"{n}\"}}"),
        Attr::F64(f) => format!("{{\"doubleValue\":{f}}}"),
        Attr::Bool(b) => format!("{{\"boolValue\":{b}}}"),
    }
}

fn attrs_json(attrs: &[(&'static str, Attr)]) -> String {
    let parts: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{k}\",\"value\":{}}}", attr_value_json(v)))
        .collect();
    format!("[{}]", parts.join(","))
}

/// Shared resource block: service identity plus run metadata.
fn resource_json(report: &ObsReport, labels: &OtlpLabels) -> String {
    let service = if labels.service_name.is_empty() {
        "wfsim"
    } else {
        &labels.service_name
    };
    let attrs: Vec<(&'static str, Attr)> = vec![
        ("service.name", Attr::Str(service.to_string())),
        ("wf.run.name", Attr::Str(labels.run_name.clone())),
        ("wf.seed", Attr::I64(report.seed as i64)),
        ("wf.storage.backend", Attr::Str(labels.storage.clone())),
        ("wf.cluster.workers", Attr::I64(i64::from(labels.workers))),
        ("wf.digest", Attr::Str(format!("{:016x}", report.digest))),
    ];
    format!("{{\"attributes\":{}}}", attrs_json(&attrs))
}

const SCOPE_JSON: &str = "{\"name\":\"wfobs\",\"version\":\"0.1.0\"}";

fn span_json(s: &SpanBuf, trace_hi: u64, trace_lo: u64) -> String {
    let trace_id = format!("{trace_hi:016x}{trace_lo:016x}");
    let parent = if s.parent == 0 {
        String::new()
    } else {
        format!("{:016x}", s.parent)
    };
    let events: Vec<String> = s
        .events
        .iter()
        .map(|(t, name, attrs)| {
            format!(
                "{{\"timeUnixNano\":\"{t}\",\"name\":\"{name}\",\"attributes\":{}}}",
                attrs_json(attrs)
            )
        })
        .collect();
    let links: Vec<String> = s
        .links
        .iter()
        .map(|(id, kind)| {
            format!(
                "{{\"traceId\":\"{trace_id}\",\"spanId\":\"{id:016x}\",\"attributes\":\
                 [{{\"key\":\"wf.link\",\"value\":{{\"stringValue\":\"{kind}\"}}}}]}}"
            )
        })
        .collect();
    format!(
        "{{\"traceId\":\"{trace_id}\",\"spanId\":\"{:016x}\",\"parentSpanId\":\"{parent}\",\
         \"name\":\"{}\",\"kind\":1,\"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\
         \"attributes\":{},\"events\":[{}],\"links\":[{}],\"status\":{{\"code\":{}}}}}",
        s.id,
        esc(&s.name),
        s.start,
        s.end,
        attrs_json(&s.attrs),
        events.join(","),
        links.join(","),
        s.status,
    )
}

/// Render a Full-level report as an OTLP/JSON `ExportTraceServiceRequest`.
///
/// Byte-deterministic: same report + labels ⇒ identical output. Suitable
/// for `POST /v1/traces` on any OTLP/HTTP collector.
pub fn otlp_trace(report: &ObsReport, labels: &OtlpLabels) -> String {
    let forest = build_spans(report, labels);
    let spans: Vec<String> = forest
        .spans
        .iter()
        .map(|s| span_json(s, forest.trace_hi, forest.trace_lo))
        .collect();
    format!(
        "{{\"resourceSpans\":[{{\"resource\":{},\"scopeSpans\":[{{\"scope\":{SCOPE_JSON},\
         \"spans\":[\n{}\n]}}]}}]}}\n",
        resource_json(report, labels),
        spans.join(",\n"),
    )
}

/// Render the metrics registry of a Full-level report as an OTLP/JSON
/// `ExportMetricsServiceRequest`: counters become cumulative monotonic
/// sums, gauges become gauges, histograms keep their explicit bounds,
/// and event-boundary time series become multi-point gauges.
pub fn otlp_metrics(report: &ObsReport, labels: &OtlpLabels) -> String {
    let t_end = report.events.last().map_or(0, |&(t, _)| t);
    let mut metrics: Vec<String> = Vec::new();

    for (name, v) in report.metrics.counters() {
        metrics.push(format!(
            "{{\"name\":\"wf.{name}\",\"sum\":{{\"dataPoints\":[{{\"startTimeUnixNano\":\"0\",\
             \"timeUnixNano\":\"{t_end}\",\"asInt\":\"{v}\"}}],\"aggregationTemporality\":2,\
             \"isMonotonic\":true}}}}"
        ));
    }
    for (name, v) in report.metrics.gauges() {
        metrics.push(format!(
            "{{\"name\":\"wf.{name}\",\"gauge\":{{\"dataPoints\":[{{\"timeUnixNano\":\
             \"{t_end}\",\"asDouble\":{v}}}]}}}}"
        ));
    }
    for (name, h) in report.metrics.histograms() {
        let bounds: Vec<String> = h.bounds.iter().map(|b| format!("{b}")).collect();
        let counts: Vec<String> = h.counts.iter().map(|c| format!("\"{c}\"")).collect();
        metrics.push(format!(
            "{{\"name\":\"wf.{name}\",\"histogram\":{{\"dataPoints\":[{{\"startTimeUnixNano\":\
             \"0\",\"timeUnixNano\":\"{t_end}\",\"count\":\"{}\",\"sum\":{},\"bucketCounts\":[{}],\
             \"explicitBounds\":[{}]}}],\"aggregationTemporality\":2}}}}",
            h.n,
            h.sum,
            counts.join(","),
            bounds.join(","),
        ));
    }
    let mut series_names: Vec<&str> = report.metrics.series_names().collect();
    series_names.sort_unstable();
    for name in series_names {
        let Some(pts) = report.metrics.series(name) else {
            continue;
        };
        let points: Vec<String> = pts
            .iter()
            .map(|&(t, v)| format!("{{\"timeUnixNano\":\"{t}\",\"asDouble\":{v}}}"))
            .collect();
        metrics.push(format!(
            "{{\"name\":\"wf.{}\",\"gauge\":{{\"dataPoints\":[{}]}}}}",
            esc(name),
            points.join(","),
        ));
    }

    format!(
        "{{\"resourceMetrics\":[{{\"resource\":{},\"scopeMetrics\":[{{\"scope\":{SCOPE_JSON},\
         \"metrics\":[\n{}\n]}}]}}]}}\n",
        resource_json(report, labels),
        metrics.join(",\n"),
    )
}

pub mod decode {
    //! Minimal OTLP/JSON reader — the conformance half of the export
    //! contract, used only by tests. Dependency-free like the encoder: a
    //! small JSON parser feeds plain structs that the property and parity
    //! suites inspect. Not a general OTLP client; it reads exactly the
    //! shape [`otlp_trace`](super::otlp_trace) and
    //! [`otlp_metrics`](super::otlp_metrics) emit.

    /// A decoded attribute value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum AttrVal {
        /// `stringValue`.
        Str(String),
        /// `intValue` (decimal string in OTLP/JSON).
        I64(i64),
        /// `doubleValue`.
        F64(f64),
        /// `boolValue`.
        Bool(bool),
    }

    impl AttrVal {
        /// The string payload, if this is a string attribute.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                AttrVal::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The integer payload, if this is an int attribute.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                AttrVal::I64(n) => Some(*n),
                _ => None,
            }
        }

        /// The float payload, if this is a double attribute.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                AttrVal::F64(f) => Some(*f),
                _ => None,
            }
        }

        /// The bool payload, if this is a bool attribute.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                AttrVal::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// A decoded span event.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SpanEvent {
        /// Event timestamp (simulated nanoseconds).
        pub time: u64,
        /// Event name.
        pub name: String,
        /// Event attributes.
        pub attrs: Vec<(String, AttrVal)>,
    }

    /// A decoded span link.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Link {
        /// Linked trace id (hex).
        pub trace_id: String,
        /// Linked span id (hex).
        pub span_id: String,
        /// Link attributes.
        pub attrs: Vec<(String, AttrVal)>,
    }

    /// A decoded span.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Span {
        /// Trace id (32 hex chars).
        pub trace_id: String,
        /// Span id (16 hex chars).
        pub span_id: String,
        /// Parent span id (empty for the root).
        pub parent_span_id: String,
        /// Span name.
        pub name: String,
        /// Start timestamp (simulated nanoseconds).
        pub start: u64,
        /// End timestamp (simulated nanoseconds).
        pub end: u64,
        /// Span attributes.
        pub attrs: Vec<(String, AttrVal)>,
        /// Span events.
        pub events: Vec<SpanEvent>,
        /// Span links.
        pub links: Vec<Link>,
        /// Status code: 0 unset, 1 ok, 2 error.
        pub status_code: i64,
    }

    impl Span {
        /// Look up an attribute by key.
        pub fn attr(&self, key: &str) -> Option<&AttrVal> {
            self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// A decoded `ExportTraceServiceRequest`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Trace {
        /// Resource attributes.
        pub resource: Vec<(String, AttrVal)>,
        /// All spans, in document order.
        pub spans: Vec<Span>,
    }

    impl Trace {
        /// Look up a resource attribute by key.
        pub fn resource_attr(&self, key: &str) -> Option<&AttrVal> {
            self.resource.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }
    }

    /// One decoded metric (the aggregation kinds the encoder emits).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Metric {
        /// Cumulative monotonic sum: `(name, value)`.
        Sum(String, i64),
        /// Gauge: `(name, points)`.
        Gauge(String, Vec<(u64, f64)>),
        /// Histogram: `(name, count, sum, bucket counts, bounds)`.
        Histogram(String, u64, u64, Vec<u64>, Vec<u64>),
    }

    /// A decoded `ExportMetricsServiceRequest`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MetricsDoc {
        /// Resource attributes.
        pub resource: Vec<(String, AttrVal)>,
        /// All metrics, in document order.
        pub metrics: Vec<Metric>,
    }

    // --- tiny JSON value tree -----------------------------------------

    #[derive(Debug, Clone, PartialEq)]
    enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn arr(&self) -> &[Json] {
            match self {
                Json::Arr(items) => items,
                _ => &[],
            }
        }

        fn str_or(&self, default: &str) -> String {
            match self {
                Json::Str(s) => s.clone(),
                _ => default.to_string(),
            }
        }

        /// u64 encoded as a decimal string (OTLP/JSON int64 mapping) or a
        /// bare number.
        fn u64_of(&self) -> u64 {
            match self {
                Json::Str(s) => s.parse().unwrap_or(0),
                Json::Num(f) => *f as u64,
                _ => 0,
            }
        }

        fn i64_of(&self) -> i64 {
            match self {
                Json::Str(s) => s.parse().unwrap_or(0),
                Json::Num(f) => *f as i64,
                _ => 0,
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn ws(&mut self) {
            while self.b.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.pos).copied()
        }

        fn value(&mut self) -> Result<Json, String> {
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string().map(Json::Str),
                Some(b't') => self.keyword("true", Json::Bool(true)),
                Some(b'f') => self.keyword("false", Json::Bool(false)),
                Some(b'n') => self.keyword("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
            }
        }

        fn keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
            if self.b[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(v)
            } else {
                Err(format!("bad keyword at byte {}", self.pos))
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.pos += 1; // '{'
            let mut pairs = Vec::new();
            self.ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                if self.peek() != Some(b':') {
                    return Err(format!("expected `:` at byte {}", self.pos));
                }
                self.pos += 1;
                pairs.push((key, self.value()?));
                self.ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,`/`}}` at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.pos += 1; // '['
            let mut items = Vec::new();
            self.ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,`/`]` at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            if self.peek() != Some(b'"') {
                return Err(format!("expected string at byte {}", self.pos));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .b
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        let rest = std::str::from_utf8(&self.b[self.pos..])
                            .map_err(|_| "invalid UTF-8")?;
                        let c = rest.chars().next().expect("nonempty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                    _ => break,
                }
            }
            std::str::from_utf8(&self.b[start..self.pos])
                .map_err(|_| "invalid number".to_string())?
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|e| e.to_string())
        }
    }

    fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    fn decode_attrs(v: Option<&Json>) -> Vec<(String, AttrVal)> {
        let mut out = Vec::new();
        for kv in v.map_or(&[][..], Json::arr) {
            let Some(key) = kv.get("key") else { continue };
            let Some(value) = kv.get("value") else {
                continue;
            };
            let decoded = if let Some(s) = value.get("stringValue") {
                AttrVal::Str(s.str_or(""))
            } else if let Some(n) = value.get("intValue") {
                AttrVal::I64(n.i64_of())
            } else if let Some(f) = value.get("doubleValue") {
                match f {
                    Json::Num(x) => AttrVal::F64(*x),
                    _ => continue,
                }
            } else if let Some(b) = value.get("boolValue") {
                match b {
                    Json::Bool(x) => AttrVal::Bool(*x),
                    _ => continue,
                }
            } else {
                continue;
            };
            out.push((key.str_or(""), decoded));
        }
        out
    }

    /// Decode an `ExportTraceServiceRequest` JSON document.
    pub fn trace(json: &str) -> Result<Trace, String> {
        let doc = parse(json)?;
        let mut resource = Vec::new();
        let mut spans = Vec::new();
        for rs in doc
            .get("resourceSpans")
            .ok_or("resourceSpans missing")?
            .arr()
        {
            if resource.is_empty() {
                resource = decode_attrs(rs.get("resource").and_then(|r| r.get("attributes")));
            }
            for ss in rs.get("scopeSpans").map_or(&[][..], Json::arr) {
                for sp in ss.get("spans").map_or(&[][..], Json::arr) {
                    let events = sp
                        .get("events")
                        .map_or(&[][..], Json::arr)
                        .iter()
                        .map(|e| SpanEvent {
                            time: e.get("timeUnixNano").map_or(0, Json::u64_of),
                            name: e.get("name").map_or(String::new(), |n| n.str_or("")),
                            attrs: decode_attrs(e.get("attributes")),
                        })
                        .collect();
                    let links = sp
                        .get("links")
                        .map_or(&[][..], Json::arr)
                        .iter()
                        .map(|l| Link {
                            trace_id: l.get("traceId").map_or(String::new(), |v| v.str_or("")),
                            span_id: l.get("spanId").map_or(String::new(), |v| v.str_or("")),
                            attrs: decode_attrs(l.get("attributes")),
                        })
                        .collect();
                    spans.push(Span {
                        trace_id: sp.get("traceId").map_or(String::new(), |v| v.str_or("")),
                        span_id: sp.get("spanId").map_or(String::new(), |v| v.str_or("")),
                        parent_span_id: sp
                            .get("parentSpanId")
                            .map_or(String::new(), |v| v.str_or("")),
                        name: sp.get("name").map_or(String::new(), |v| v.str_or("")),
                        start: sp.get("startTimeUnixNano").map_or(0, Json::u64_of),
                        end: sp.get("endTimeUnixNano").map_or(0, Json::u64_of),
                        attrs: decode_attrs(sp.get("attributes")),
                        events,
                        links,
                        status_code: sp
                            .get("status")
                            .and_then(|s| s.get("code"))
                            .map_or(0, Json::i64_of),
                    });
                }
            }
        }
        Ok(Trace { resource, spans })
    }

    /// Decode an `ExportMetricsServiceRequest` JSON document.
    pub fn metrics(json: &str) -> Result<MetricsDoc, String> {
        let doc = parse(json)?;
        let mut resource = Vec::new();
        let mut metrics = Vec::new();
        for rm in doc
            .get("resourceMetrics")
            .ok_or("resourceMetrics missing")?
            .arr()
        {
            if resource.is_empty() {
                resource = decode_attrs(rm.get("resource").and_then(|r| r.get("attributes")));
            }
            for sm in rm.get("scopeMetrics").map_or(&[][..], Json::arr) {
                for m in sm.get("metrics").map_or(&[][..], Json::arr) {
                    let name = m.get("name").map_or(String::new(), |v| v.str_or(""));
                    if let Some(sum) = m.get("sum") {
                        let v = sum
                            .get("dataPoints")
                            .map_or(&[][..], Json::arr)
                            .first()
                            .and_then(|p| p.get("asInt"))
                            .map_or(0, Json::i64_of);
                        metrics.push(Metric::Sum(name, v));
                    } else if let Some(g) = m.get("gauge") {
                        let pts = g
                            .get("dataPoints")
                            .map_or(&[][..], Json::arr)
                            .iter()
                            .map(|p| {
                                let t = p.get("timeUnixNano").map_or(0, Json::u64_of);
                                let v = match p.get("asDouble") {
                                    Some(Json::Num(x)) => *x,
                                    _ => 0.0,
                                };
                                (t, v)
                            })
                            .collect();
                        metrics.push(Metric::Gauge(name, pts));
                    } else if let Some(h) = m.get("histogram") {
                        let Some(p) = h.get("dataPoints").map_or(&[][..], Json::arr).first() else {
                            continue;
                        };
                        let count = p.get("count").map_or(0, Json::u64_of);
                        let sum = p.get("sum").map_or(0, Json::u64_of);
                        let buckets = p
                            .get("bucketCounts")
                            .map_or(&[][..], Json::arr)
                            .iter()
                            .map(Json::u64_of)
                            .collect();
                        let bounds = p
                            .get("explicitBounds")
                            .map_or(&[][..], Json::arr)
                            .iter()
                            .map(Json::u64_of)
                            .collect();
                        metrics.push(Metric::Histogram(name, count, sum, buckets, bounds));
                    }
                }
            }
        }
        Ok(MetricsDoc { resource, metrics })
    }

    /// Check the structural invariants every exported span tree must
    /// satisfy: a single root, parent ids that resolve within the
    /// document, one trace id shared by all spans, unique non-zero span
    /// ids, and child intervals nested inside their parents'.
    pub fn check_well_formed(trace: &Trace) -> Result<(), String> {
        if trace.spans.is_empty() {
            return Err("no spans in document".into());
        }
        let mut roots = 0usize;
        let mut ids = std::collections::BTreeMap::new();
        let trace_id = &trace.spans[0].trace_id;
        if trace_id.len() != 32 || trace_id.chars().all(|c| c == '0') {
            return Err(format!("bad trace id {trace_id:?}"));
        }
        for (i, s) in trace.spans.iter().enumerate() {
            if s.trace_id != *trace_id {
                return Err(format!("span {i} trace id {:?} differs", s.trace_id));
            }
            if s.span_id.len() != 16 || s.span_id.chars().all(|c| c == '0') {
                return Err(format!("span {i} has invalid id {:?}", s.span_id));
            }
            if ids.insert(s.span_id.clone(), i).is_some() {
                return Err(format!("duplicate span id {:?}", s.span_id));
            }
            if s.parent_span_id.is_empty() {
                roots += 1;
            }
            if s.end < s.start {
                return Err(format!("span {i} ends before it starts"));
            }
        }
        if roots != 1 {
            return Err(format!("expected a single root span, found {roots}"));
        }
        for (i, s) in trace.spans.iter().enumerate() {
            if s.parent_span_id.is_empty() {
                continue;
            }
            let Some(&p) = ids.get(&s.parent_span_id) else {
                return Err(format!(
                    "span {i} parent {:?} does not resolve",
                    s.parent_span_id
                ));
            };
            let parent = &trace.spans[p];
            if s.start < parent.start || s.end > parent.end {
                return Err(format!(
                    "span {i} [{}, {}] not nested in parent [{}, {}]",
                    s.start, s.end, parent.start, parent.end
                ));
            }
            for l in &s.links {
                if !ids.contains_key(&l.span_id) {
                    return Err(format!("span {i} link {:?} does not resolve", l.span_id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{ObsHandle, ObsLevel};
    use crate::event::FaultKind;

    fn sample_report() -> ObsReport {
        let h = ObsHandle::new(ObsLevel::Full, 7);
        h.set_now(0);
        h.emit(Event::SegmentOpen {
            node: 0,
            spot: false,
        });
        h.emit(Event::TaskStart {
            task: 0,
            node: 0,
            attempt: 0,
        });
        h.set_now(250_000_000);
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Read,
        });
        h.emit(Event::StorageOp {
            op: OpKind::Read,
            node: 0,
            bytes: 1000,
        });
        h.emit(Event::CacheMiss { node: 0 });
        h.set_now(1_000_000_000);
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Compute,
        });
        h.set_now(2_000_000_000);
        h.emit(Event::Fault {
            kind: FaultKind::NodeCrash,
            node: 0,
        });
        h.emit(Event::TaskKilled {
            task: 0,
            node: 0,
            wasted_nanos: 2_000_000_000,
        });
        h.emit(Event::SegmentClose { node: 0 });
        h.set_now(2_100_000_000);
        h.emit(Event::SegmentOpen {
            node: 0,
            spot: false,
        });
        h.emit(Event::TaskStart {
            task: 0,
            node: 0,
            attempt: 0,
        });
        h.set_now(3_000_000_000);
        h.emit(Event::TaskEnd {
            task: 0,
            node: 0,
            attempt: 1,
        });
        h.emit(Event::SegmentClose { node: 0 });
        h.take_report().unwrap()
    }

    fn labels() -> OtlpLabels {
        OtlpLabels {
            service_name: "wfsim".into(),
            run_name: "sample".into(),
            storage: "NFS".into(),
            workers: 1,
            task_names: vec!["mAdd".into()],
            node_names: vec!["w0".into()],
            segments: vec![
                SegmentLabel {
                    node: 0,
                    itype: "c1.xlarge".into(),
                    spot: false,
                    secs: 2.0,
                },
                SegmentLabel {
                    node: 0,
                    itype: "c1.xlarge".into(),
                    spot: false,
                    secs: 0.9,
                },
            ],
        }
    }

    #[test]
    fn export_round_trips_and_is_well_formed() {
        let report = sample_report();
        let json = otlp_trace(&report, &labels());
        let t = decode::trace(&json).expect("decodes");
        decode::check_well_formed(&t).expect("well-formed");
        // run root + 2 node incarnations + 2 task attempts + phases
        // (overhead, read, compute of attempt 0; overhead of attempt 1).
        assert_eq!(t.spans.len(), 1 + 2 + 2 + 4, "{json}");
        assert_eq!(
            t.resource_attr("wf.storage.backend").unwrap().as_str(),
            Some("NFS")
        );
        let root = t
            .spans
            .iter()
            .find(|s| s.parent_span_id.is_empty())
            .unwrap();
        assert_eq!(root.name, "run sample");
        assert!(root.events.iter().any(|e| e.name == "fault"));
    }

    #[test]
    fn retry_links_to_previous_attempt_and_kill_is_error() {
        let t = decode::trace(&otlp_trace(&sample_report(), &labels())).unwrap();
        let attempts: Vec<_> = t.spans.iter().filter(|s| s.name == "mAdd").collect();
        assert_eq!(attempts.len(), 2);
        let killed = attempts
            .iter()
            .find(|s| s.attr("wf.task.outcome").unwrap().as_str() == Some("killed"))
            .expect("killed attempt present");
        assert_eq!(killed.status_code, 2);
        let retry = attempts
            .iter()
            .find(|s| s.attr("wf.task.outcome").unwrap().as_str() == Some("ok"))
            .expect("successful attempt present");
        assert_eq!(retry.links.len(), 1);
        assert_eq!(retry.links[0].span_id, killed.span_id);
        assert_eq!(
            retry.links[0].attrs[0].1.as_str(),
            Some("retry_of"),
            "link kind"
        );
    }

    #[test]
    fn billing_attributes_follow_incarnation_order() {
        let t = decode::trace(&otlp_trace(&sample_report(), &labels())).unwrap();
        let incs: Vec<_> = t
            .spans
            .iter()
            .filter(|s| s.attr("wf.billing.secs").is_some())
            .collect();
        assert_eq!(incs.len(), 2);
        assert_eq!(incs[0].attr("wf.billing.secs").unwrap().as_f64(), Some(2.0));
        assert_eq!(incs[1].attr("wf.billing.secs").unwrap().as_f64(), Some(0.9));
        assert_eq!(
            incs[1].links[0].attrs[0].1.as_str(),
            Some("previous_incarnation")
        );
    }

    #[test]
    fn export_is_byte_deterministic() {
        let report = sample_report();
        assert_eq!(
            otlp_trace(&report, &labels()),
            otlp_trace(&report, &labels())
        );
        assert_eq!(
            otlp_metrics(&report, &labels()),
            otlp_metrics(&report, &labels())
        );
    }

    #[test]
    fn ids_derive_from_seed_and_digest() {
        let report = sample_report();
        let a = decode::trace(&otlp_trace(&report, &labels())).unwrap();
        let b = decode::trace(&otlp_trace(&report, &labels())).unwrap();
        assert_eq!(a.spans[0].trace_id, b.spans[0].trace_id);
        // A different seed produces a different digest, hence new ids.
        let other = {
            let h = ObsHandle::new(ObsLevel::Full, 8);
            h.emit(Event::BgDone);
            h.take_report().unwrap()
        };
        let c = decode::trace(&otlp_trace(&other, &labels())).unwrap();
        assert_ne!(a.spans[0].trace_id, c.spans[0].trace_id);
    }

    #[test]
    fn metrics_round_trip() {
        let report = sample_report();
        let json = otlp_metrics(&report, &labels());
        let doc = decode::metrics(&json).expect("decodes");
        let sum = |name: &str| {
            doc.metrics
                .iter()
                .find_map(|m| match m {
                    decode::Metric::Sum(n, v) if n == name => Some(*v),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(sum("wf.tasks_started"), 2);
        assert_eq!(sum("wf.tasks_finished"), 1);
        assert_eq!(sum("wf.tasks_killed"), 1);
        assert_eq!(sum("wf.cache_misses"), 1);
        assert_eq!(
            doc.resource,
            decode::trace(&otlp_trace(&report, &labels()))
                .unwrap()
                .resource,
            "trace and metrics share the resource block"
        );
    }

    #[test]
    fn empty_report_still_exports_single_root() {
        let h = ObsHandle::new(ObsLevel::Full, 3);
        let report = h.take_report().unwrap();
        let t = decode::trace(&otlp_trace(&report, &OtlpLabels::default())).unwrap();
        decode::check_well_formed(&t).expect("well-formed");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].start, t.spans[0].end);
    }
}
