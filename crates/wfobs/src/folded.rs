//! Folded-stack storage flamegraph export.
//!
//! One line per `backend;op_kind;task` stack, weighted in integer
//! microseconds — the input format of Brendan Gregg's `flamegraph.pl`
//! and of speedscope's "folded" importer, so per-backend storage time
//! can be eyeballed as a flame graph.
//!
//! `StorageOp` bus events carry the operation kind and payload but are
//! *plans* — they mark when a storage system scheduled work, not how
//! long it took, and concurrent tasks on one node interleave their
//! flows. The duration that is attributable per task is the task's own
//! storage-bound lifecycle phases, so each stack's weight is the summed
//! duration of the task's phases of that operation kind (`stage-in` →
//! `stage_in`, `read` → `read`, `write` → `write`, `stage-out` →
//! `stage_out`, `ops` → `op_storm`); pure `compute` time and dispatch
//! overhead are excluded. Kinds that planned no foreground work for a
//! task produce no line.

use crate::bus::ObsReport;
use crate::event::{Event, Phase};
use std::collections::BTreeMap;

/// Map a lifecycle phase to the storage operation kind it times, if any.
fn phase_op(p: Phase) -> Option<&'static str> {
    match p {
        Phase::Ops => Some("op_storm"),
        Phase::StageIn => Some("stage_in"),
        Phase::Read => Some("read"),
        Phase::Write => Some("write"),
        Phase::StageOut => Some("stage_out"),
        Phase::Compute => None,
    }
}

/// Fixed render order for op-kind stacks (matches `OpKind` tag order).
const OP_ORDER: [&str; 5] = ["read", "write", "stage_in", "stage_out", "op_storm"];

/// Render the storage-time flame graph of a Full-level report as folded
/// stacks: `backend;op_kind;task weight` lines, weight in microseconds.
/// `task_names` joins task ids back to names (`t<id>` fallback);
/// `backend` is the storage backend label used as the stack root.
/// Deterministic: stacks are ordered by op kind then task id.
pub fn folded_storage_stacks(report: &ObsReport, task_names: &[String], backend: &str) -> String {
    // (op label, task id) -> accumulated nanos.
    let mut weights: BTreeMap<(&'static str, u32), u64> = BTreeMap::new();
    // task id -> (current phase, phase start).
    let mut open: BTreeMap<u32, (Option<Phase>, u64)> = BTreeMap::new();
    let mut t_end = 0u64;

    let close = |weights: &mut BTreeMap<(&'static str, u32), u64>,
                 task: u32,
                 slot: (Option<Phase>, u64),
                 t: u64| {
        if let (Some(phase), start) = slot {
            if let Some(op) = phase_op(phase) {
                *weights.entry((op, task)).or_insert(0) += t.saturating_sub(start);
            }
        }
    };

    for &(t, ev) in &report.events {
        t_end = t_end.max(t);
        match ev {
            Event::TaskStart { task, .. } => {
                open.insert(task, (None, t));
            }
            Event::TaskPhase { task, phase, .. } => {
                if let Some(slot) = open.insert(task, (Some(phase), t)) {
                    close(&mut weights, task, slot, t);
                }
            }
            Event::TaskEnd { task, .. }
            | Event::TaskKilled { task, .. }
            | Event::TaskFailed { task, .. } => {
                if let Some(slot) = open.remove(&task) {
                    close(&mut weights, task, slot, t);
                }
            }
            _ => {}
        }
    }
    // A run that ended mid-task still accounts the open interval.
    for (task, slot) in std::mem::take(&mut open) {
        close(&mut weights, task, slot, t_end);
    }

    let name = |id: u32| {
        task_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("t{id}"))
    };
    let mut out = String::new();
    for op in OP_ORDER {
        for (&(w_op, task), &nanos) in &weights {
            if w_op != op {
                continue;
            }
            let micros = nanos / 1_000;
            if micros == 0 {
                continue;
            }
            out.push_str(&format!("{backend};{op};{} {micros}\n", name(task)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{ObsHandle, ObsLevel};

    #[test]
    fn stacks_weight_storage_phases_only() {
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.set_now(0);
        h.emit(Event::TaskStart {
            task: 0,
            node: 0,
            attempt: 0,
        });
        h.set_now(1_000_000); // 1ms dispatch overhead — not weighted
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Read,
        });
        h.set_now(3_000_000); // 2ms read
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Compute,
        });
        h.set_now(8_000_000); // 5ms compute — not weighted
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Write,
        });
        h.set_now(11_000_000); // 3ms write
        h.emit(Event::TaskEnd {
            task: 0,
            node: 0,
            attempt: 1,
        });
        let report = h.take_report().unwrap();
        let out = folded_storage_stacks(&report, &["mAdd".into()], "NFS");
        assert_eq!(out, "NFS;read;mAdd 2000\nNFS;write;mAdd 3000\n");
    }

    #[test]
    fn unfinished_task_accounts_to_stream_end() {
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.set_now(0);
        h.emit(Event::TaskStart {
            task: 3,
            node: 0,
            attempt: 0,
        });
        h.emit(Event::TaskPhase {
            task: 3,
            node: 0,
            phase: Phase::StageIn,
        });
        h.set_now(4_000_000);
        h.emit(Event::BgDone); // just moves the stream clock
        let report = h.take_report().unwrap();
        let out = folded_storage_stacks(&report, &[], "S3");
        assert_eq!(out, "S3;stage_in;t3 4000\n");
    }

    #[test]
    fn output_is_deterministic_and_ordered_by_kind() {
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.set_now(0);
        for task in [1u32, 0] {
            h.emit(Event::TaskStart {
                task,
                node: 0,
                attempt: 0,
            });
            h.emit(Event::TaskPhase {
                task,
                node: 0,
                phase: Phase::Write,
            });
        }
        h.set_now(2_000_000);
        for task in [1u32, 0] {
            h.emit(Event::TaskPhase {
                task,
                node: 0,
                phase: Phase::Read,
            });
        }
        h.set_now(5_000_000);
        for task in [1u32, 0] {
            h.emit(Event::TaskEnd {
                task,
                node: 0,
                attempt: 1,
            });
        }
        let report = h.take_report().unwrap();
        let out = folded_storage_stacks(&report, &[], "PVFS");
        // read stacks first (task order), then write stacks.
        assert_eq!(
            out,
            "PVFS;read;t0 3000\nPVFS;read;t1 3000\n\
             PVFS;write;t0 2000\nPVFS;write;t1 2000\n"
        );
        assert_eq!(out, folded_storage_stacks(&report, &[], "PVFS"));
    }
}
