//! The event vocabulary of the observability bus.
//!
//! Every layer of the simulator (the event calendar, the workflow engine,
//! the storage backends) describes what it is doing as [`Event`]s. Events
//! are small `Copy` records over integer ids — the bus never touches
//! strings or heap memory on the emission path. Names (task names, node
//! labels, resource labels) are joined back in by exporters, which run
//! after the simulation finishes.
//!
//! Determinism rules: events are stamped with *simulated* time only (never
//! wall clock), and every emission point is reached identically under the
//! same seed, so the stream — and hence the [`RunDigest`](crate::digest::RunDigest)
//! over it — is byte-identical across replays.

/// A task-lifecycle phase, in execution order. Dispatch overhead is the
/// implicit phase between `TaskStart` and the first `TaskPhase` mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// POSIX operation storm (NFS per-op bottleneck).
    Ops,
    /// Stage-in transfers (S3 GETs, direct-transfer pulls).
    StageIn,
    /// Input reads through the storage system.
    Read,
    /// Pure compute.
    Compute,
    /// Output writes through the storage system.
    Write,
    /// Stage-out transfers (S3 PUTs).
    StageOut,
}

impl Phase {
    /// Stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ops => "ops",
            Phase::StageIn => "stage-in",
            Phase::Read => "read",
            Phase::Compute => "compute",
            Phase::Write => "write",
            Phase::StageOut => "stage-out",
        }
    }

    fn tag(self) -> u8 {
        match self {
            Phase::Ops => 0,
            Phase::StageIn => 1,
            Phase::Read => 2,
            Phase::Compute => 3,
            Phase::Write => 4,
            Phase::StageOut => 5,
        }
    }
}

/// The kind of a planned storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A task read of one file.
    Read,
    /// A task write of one file.
    Write,
    /// Per-job stage-in of inputs.
    StageIn,
    /// Per-job stage-out of outputs.
    StageOut,
    /// A POSIX operation storm (metadata calls, no payload bytes).
    OpStorm,
}

impl OpKind {
    /// Stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::StageIn => "stage_in",
            OpKind::StageOut => "stage_out",
            OpKind::OpStorm => "op_storm",
        }
    }

    fn tag(self) -> u8 {
        match self {
            OpKind::Read => 0,
            OpKind::Write => 1,
            OpKind::StageIn => 2,
            OpKind::StageOut => 3,
            OpKind::OpStorm => 4,
        }
    }
}

/// An injected fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker instance crashed.
    NodeCrash,
    /// The spot market revoked an instance.
    SpotTermination,
    /// A storage service/peer failed.
    StorageFailure,
}

impl FaultKind {
    /// Stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::SpotTermination => "spot_termination",
            FaultKind::StorageFailure => "storage_failure",
        }
    }

    fn tag(self) -> u8 {
        match self {
            FaultKind::NodeCrash => 0,
            FaultKind::SpotTermination => 1,
            FaultKind::StorageFailure => 2,
        }
    }
}

/// One observability event. Timestamps live outside the payload (the bus
/// stamps each emission with its current simulated time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A task's dependencies are satisfied; it joined the ready queue.
    TaskReady {
        /// Task id.
        task: u32,
    },
    /// A task acquired a slot (dispatch); opens the task span and the
    /// implicit dispatch-overhead phase.
    TaskStart {
        /// Task id.
        task: u32,
        /// Worker node id.
        node: u32,
        /// Execution attempts so far (0 on the first try).
        attempt: u32,
    },
    /// A task entered a lifecycle phase (closes the previous one).
    TaskPhase {
        /// Task id.
        task: u32,
        /// Worker node id.
        node: u32,
        /// The phase being entered.
        phase: Phase,
    },
    /// A task finished and released its slot; closes the task span.
    TaskEnd {
        /// Task id.
        task: u32,
        /// Worker node id.
        node: u32,
        /// Total executions (1 = no retries).
        attempt: u32,
    },
    /// A fault killed an in-flight execution.
    TaskKilled {
        /// Task id.
        task: u32,
        /// Worker node id.
        node: u32,
        /// Partially-executed work thrown away, nanoseconds.
        wasted_nanos: u64,
    },
    /// A transient failure aborted an execution at compute end.
    TaskFailed {
        /// Task id.
        task: u32,
        /// Worker node id.
        node: u32,
    },
    /// The ready queue changed size (sampled on event boundaries).
    ReadyDepth {
        /// Queue depth after the change.
        depth: u32,
    },

    /// A fluid flow started.
    FlowStart {
        /// Flow id.
        id: u64,
        /// Bytes to move.
        bytes: u64,
        /// Initial max–min fair rate, as `f64::to_bits` (bit-stable).
        rate_bits: u64,
    },
    /// One resource crossed by the flow that just started (one event per
    /// path element, emitted right after its `FlowStart`).
    FlowRes {
        /// Flow id.
        id: u64,
        /// Resource index.
        resource: u32,
    },
    /// A fluid flow delivered its last byte.
    FlowEnd {
        /// Flow id.
        id: u64,
    },
    /// A fluid flow was cancelled (kill path).
    FlowCancel {
        /// Flow id.
        id: u64,
    },

    /// A storage system planned an operation.
    StorageOp {
        /// Operation kind.
        op: OpKind,
        /// Node the operation is for.
        node: u32,
        /// Foreground payload bytes (0 for metadata-only ops).
        bytes: u64,
    },
    /// A read was served from a cache.
    CacheHit {
        /// Node whose cache hit.
        node: u32,
    },
    /// A read missed every cache.
    CacheMiss {
        /// Node that missed.
        node: u32,
    },

    /// A background (writeback) stage joined the queue.
    BgEnqueue {
        /// Queue depth after the enqueue.
        depth: u32,
    },
    /// A background stage left the queue and started.
    BgStart {
        /// Queue depth after the dequeue.
        depth: u32,
    },
    /// A background stage completed.
    BgDone,

    /// A fault was injected.
    Fault {
        /// Fault class.
        kind: FaultKind,
        /// Victim node id.
        node: u32,
    },
    /// Storage failover reported lost files.
    FilesLost {
        /// Number of files lost.
        count: u32,
    },
    /// The rescue-DAG pass resubmitted a completed task.
    RescueResubmit {
        /// Task id.
        task: u32,
    },
    /// A crashed/terminated worker came back up.
    NodeRecovered {
        /// Worker node id.
        node: u32,
    },

    /// A billing segment opened (instance incarnation came up).
    SegmentOpen {
        /// Cluster node id.
        node: u32,
        /// Whether the incarnation is a spot instance.
        spot: bool,
    },
    /// A billing segment closed (instance went away or run finished).
    SegmentClose {
        /// Cluster node id.
        node: u32,
    },
}

impl Event {
    /// Feed this event's canonical byte encoding into a digest: a unique
    /// tag byte followed by every field in little-endian order. The
    /// encoding is part of the replay contract — changing it invalidates
    /// checked-in golden digests.
    pub fn encode_into(&self, sink: &mut impl FnMut(&[u8])) {
        match *self {
            Event::TaskReady { task } => {
                sink(&[0]);
                sink(&task.to_le_bytes());
            }
            Event::TaskStart {
                task,
                node,
                attempt,
            } => {
                sink(&[1]);
                sink(&task.to_le_bytes());
                sink(&node.to_le_bytes());
                sink(&attempt.to_le_bytes());
            }
            Event::TaskPhase { task, node, phase } => {
                sink(&[2, phase.tag()]);
                sink(&task.to_le_bytes());
                sink(&node.to_le_bytes());
            }
            Event::TaskEnd {
                task,
                node,
                attempt,
            } => {
                sink(&[3]);
                sink(&task.to_le_bytes());
                sink(&node.to_le_bytes());
                sink(&attempt.to_le_bytes());
            }
            Event::TaskKilled {
                task,
                node,
                wasted_nanos,
            } => {
                sink(&[4]);
                sink(&task.to_le_bytes());
                sink(&node.to_le_bytes());
                sink(&wasted_nanos.to_le_bytes());
            }
            Event::TaskFailed { task, node } => {
                sink(&[5]);
                sink(&task.to_le_bytes());
                sink(&node.to_le_bytes());
            }
            Event::ReadyDepth { depth } => {
                sink(&[6]);
                sink(&depth.to_le_bytes());
            }
            Event::FlowStart {
                id,
                bytes,
                rate_bits,
            } => {
                sink(&[7]);
                sink(&id.to_le_bytes());
                sink(&bytes.to_le_bytes());
                sink(&rate_bits.to_le_bytes());
            }
            Event::FlowRes { id, resource } => {
                sink(&[8]);
                sink(&id.to_le_bytes());
                sink(&resource.to_le_bytes());
            }
            Event::FlowEnd { id } => {
                sink(&[9]);
                sink(&id.to_le_bytes());
            }
            Event::FlowCancel { id } => {
                sink(&[10]);
                sink(&id.to_le_bytes());
            }
            Event::StorageOp { op, node, bytes } => {
                sink(&[11, op.tag()]);
                sink(&node.to_le_bytes());
                sink(&bytes.to_le_bytes());
            }
            Event::CacheHit { node } => {
                sink(&[12]);
                sink(&node.to_le_bytes());
            }
            Event::CacheMiss { node } => {
                sink(&[13]);
                sink(&node.to_le_bytes());
            }
            Event::BgEnqueue { depth } => {
                sink(&[14]);
                sink(&depth.to_le_bytes());
            }
            Event::BgStart { depth } => {
                sink(&[15]);
                sink(&depth.to_le_bytes());
            }
            Event::BgDone => sink(&[16]),
            Event::Fault { kind, node } => {
                sink(&[17, kind.tag()]);
                sink(&node.to_le_bytes());
            }
            Event::FilesLost { count } => {
                sink(&[18]);
                sink(&count.to_le_bytes());
            }
            Event::RescueResubmit { task } => {
                sink(&[19]);
                sink(&task.to_le_bytes());
            }
            Event::NodeRecovered { node } => {
                sink(&[20]);
                sink(&node.to_le_bytes());
            }
            Event::SegmentOpen { node, spot } => {
                sink(&[21, u8::from(spot)]);
                sink(&node.to_le_bytes());
            }
            Event::SegmentClose { node } => {
                sink(&[22]);
                sink(&node.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoding(ev: &Event) -> Vec<u8> {
        let mut out = Vec::new();
        ev.encode_into(&mut |b| out.extend_from_slice(b));
        out
    }

    #[test]
    fn encodings_are_distinct_across_variants() {
        let events = [
            Event::TaskReady { task: 1 },
            Event::TaskEnd {
                task: 1,
                node: 0,
                attempt: 1,
            },
            Event::FlowEnd { id: 1 },
            Event::FlowCancel { id: 1 },
            Event::CacheHit { node: 1 },
            Event::CacheMiss { node: 1 },
            Event::BgDone,
            Event::SegmentClose { node: 1 },
        ];
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                assert_ne!(encoding(a), encoding(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn phase_tag_distinguishes_phase_marks() {
        let a = Event::TaskPhase {
            task: 3,
            node: 0,
            phase: Phase::Read,
        };
        let b = Event::TaskPhase {
            task: 3,
            node: 0,
            phase: Phase::Write,
        };
        assert_ne!(encoding(&a), encoding(&b));
    }
}
