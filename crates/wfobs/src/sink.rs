//! The streaming sink API: live consumers of the observability stream.
//!
//! A [`ObsSink`] is an observer the bus fans every event out to *while
//! the run is in flight* — the streaming counterpart of the post-hoc
//! exporters (Chrome trace, OTLP, folded stacks), and the foundation of
//! the live TUI viewer ([`crate::tui`]).
//!
//! Determinism rules (see DESIGN.md § Live streaming):
//!
//! - **Sinks are observers, never participants.** The bus digests every
//!   event *before* fanning it out, and sinks have no way to emit back
//!   into the bus (re-entrant emission panics on the `RefCell`). A run
//!   with any set of sinks attached produces the identical digest,
//!   metrics and exporter bytes as the same run with none.
//! - **Sim-time throttle.** Metric ticks fire at most once per simulated
//!   interval (aligned bucket boundaries), driven purely by the bus
//!   clock — never by wall clock — so tick times replay identically.
//! - **Bounded buffering, no back-pressure.** Sinks must keep O(window)
//!   state (ring buffers, pruned interval sets). A slow consumer can
//!   only slow the process down; it can never change what the
//!   simulation computes.

use crate::event::Event;
use crate::metrics::Metrics;

/// A live consumer of the observability stream.
///
/// Implementations must treat every callback as read-only with respect
/// to the simulation: they may render, buffer (bounded) or forward, but
/// they cannot influence the run. Callbacks are invoked while the bus is
/// mutably borrowed, so calling back into any [`crate::ObsHandle`] from
/// a sink panics by construction.
pub trait ObsSink {
    /// A resource label was registered (index order matches the
    /// `FlowRes::resource` numbering). Default: ignore.
    fn on_resource(&mut self, ix: u32, label: &str) {
        let _ = (ix, label);
    }

    /// One event, stamped with the bus clock (nanoseconds of simulated
    /// time). Called for every digested event, at `Digest` level too —
    /// live consumption does not require the unbounded `Full` event log.
    fn on_event(&mut self, t_nanos: u64, ev: &Event);

    /// At most one call per simulated throttle interval (see
    /// [`crate::ObsHandle::set_tick_interval`]), plus exactly one final
    /// tick at flush time if the run did not end on a boundary. The
    /// metrics registry is populated only at `Full` level; at `Digest`
    /// level it is empty and sinks should rely on their own accumulators.
    fn on_metric_tick(&mut self, t_nanos: u64, metrics: &Metrics) {
        let _ = (t_nanos, metrics);
    }

    /// The run is over; flush any buffered output and restore terminal
    /// state. Called exactly once, after the final metric tick.
    fn on_flush(&mut self, t_nanos: u64) {
        let _ = t_nanos;
    }
}

/// A bounded in-memory event buffer: the simplest useful sink, and the
/// reference for the "bounded, back-pressure-free" contract. Keeps the
/// most recent `cap` events; older ones fall off the front.
#[derive(Debug)]
pub struct RingBufferSink {
    cap: usize,
    events: std::collections::VecDeque<(u64, Event)>,
    ticks: Vec<u64>,
    flushed_at: Option<u64>,
}

impl RingBufferSink {
    /// A ring buffer holding at most `cap` events (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            cap: cap.max(1),
            events: std::collections::VecDeque::new(),
            ticks: Vec::new(),
            flushed_at: None,
        }
    }

    /// The buffered (time, event) pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.events.iter()
    }

    /// Times at which metric ticks fired.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// The flush time, once flushed.
    pub fn flushed_at(&self) -> Option<u64> {
        self.flushed_at
    }
}

impl ObsSink for RingBufferSink {
    fn on_event(&mut self, t_nanos: u64, ev: &Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back((t_nanos, *ev));
    }

    fn on_metric_tick(&mut self, t_nanos: u64, _metrics: &Metrics) {
        self.ticks.push(t_nanos);
    }

    fn on_flush(&mut self, t_nanos: u64) {
        self.flushed_at = Some(t_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut s = RingBufferSink::new(2);
        s.on_event(1, &Event::BgDone);
        s.on_event(2, &Event::TaskReady { task: 7 });
        s.on_event(3, &Event::BgDone);
        let ts: Vec<u64> = s.events().map(|&(t, _)| t).collect();
        assert_eq!(ts, vec![2, 3]);
    }

    #[test]
    fn zero_cap_is_clamped() {
        let mut s = RingBufferSink::new(0);
        s.on_event(1, &Event::BgDone);
        assert_eq!(s.events().count(), 1);
    }
}
