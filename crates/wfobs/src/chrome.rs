//! Chrome `chrome://tracing` / Perfetto exporter.
//!
//! Renders a [`ObsReport`](crate::bus::ObsReport) recorded at
//! [`ObsLevel::Full`](crate::bus::ObsLevel) as a Trace Event Format JSON
//! document: one process for the workflow with one *lane group* per
//! worker node, plus counter tracks for queue depths and per-resource
//! in-flight flows. Nodes can run several tasks at once (multi-slot
//! instances), so each node's concurrent task spans are spread over
//! greedily-assigned sublanes — within any single lane (`tid`) spans are
//! strictly nested or disjoint, which is what Chrome's viewer (and our
//! property test) expects.

use crate::bus::ObsReport;
use crate::event::{Event, Phase};

/// Human-readable labels the exporter joins back onto integer ids.
#[derive(Debug, Clone, Default)]
pub struct ChromeLabels {
    /// Task names by task id (missing ids render as `t<id>`).
    pub task_names: Vec<String>,
    /// Node labels by node id (missing ids render as `w<id>`).
    pub node_names: Vec<String>,
}

impl ChromeLabels {
    fn task(&self, id: u32) -> String {
        self.task_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("t{id}"))
    }

    fn node(&self, id: u32) -> String {
        self.node_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("w{id}"))
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(t_nanos: u64) -> f64 {
    t_nanos as f64 / 1e3
}

const WF_PID: u32 = 0;
const COUNTER_PID: u32 = 1;
/// Sublane stride: lane id = node * STRIDE + sublane.
const STRIDE: u32 = 256;

#[derive(Debug, Clone, Copy)]
struct OpenTask {
    node: u32,
    tid: u32,
    start: u64,
    phase: Option<(Phase, u64)>,
}

fn push_span(spans: &mut Vec<String>, name: &str, cat: &str, tid: u32, start: u64, end: u64) {
    spans.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
         \"ts\":{:.3},\"dur\":{:.3}}}",
        esc(name),
        cat,
        WF_PID,
        tid,
        us(start),
        us(end.saturating_sub(start)),
    ));
}

/// Claim the first free sublane of `node`, registering a lane label the
/// first time a sublane is used.
fn claim_lane(
    busy: &mut Vec<Vec<bool>>,
    lanes: &mut Vec<(u32, String)>,
    labels: &ChromeLabels,
    node: u32,
) -> u32 {
    let n = node as usize;
    if busy.len() <= n {
        busy.resize_with(n + 1, Vec::new);
    }
    let sub = match busy[n].iter().position(|&b| !b) {
        Some(s) => s,
        None => {
            busy[n].push(false);
            busy[n].len() - 1
        }
    };
    busy[n][sub] = true;
    let tid = node * STRIDE + sub as u32;
    if !lanes.iter().any(|(t, _)| *t == tid) {
        let name = if sub == 0 {
            labels.node(node)
        } else {
            format!("{}+{}", labels.node(node), sub)
        };
        lanes.push((tid, name));
    }
    tid
}

/// Render the report as a Trace Event Format JSON document.
pub fn chrome_trace(report: &ObsReport, labels: &ChromeLabels) -> String {
    let mut spans: Vec<String> = Vec::new();
    let mut instants: Vec<String> = Vec::new();
    let mut lanes: Vec<(u32, String)> = Vec::new();
    let mut busy: Vec<Vec<bool>> = Vec::new();
    let mut open: Vec<Option<OpenTask>> = Vec::new();
    let mut t_end: u64 = 0;

    for &(t, ev) in &report.events {
        t_end = t_end.max(t);
        match ev {
            Event::TaskStart { task, node, .. } => {
                let ix = task as usize;
                if open.len() <= ix {
                    open.resize(ix + 1, None);
                }
                let tid = claim_lane(&mut busy, &mut lanes, labels, node);
                open[ix] = Some(OpenTask {
                    node,
                    tid,
                    start: t,
                    phase: None,
                });
            }
            Event::TaskPhase { task, phase, .. } => {
                if let Some(Some(o)) = open.get_mut(task as usize) {
                    if let Some((p, p0)) = o.phase.take() {
                        push_span(&mut spans, p.label(), "phase", o.tid, p0, t);
                    }
                    o.phase = Some((phase, t));
                }
            }
            Event::TaskEnd { task, .. }
            | Event::TaskKilled { task, .. }
            | Event::TaskFailed { task, .. } => {
                if let Some(o) = open.get_mut(task as usize).and_then(Option::take) {
                    if let Some((p, p0)) = o.phase {
                        push_span(&mut spans, p.label(), "phase", o.tid, p0, t);
                    }
                    let cat = match ev {
                        Event::TaskEnd { .. } => "task",
                        Event::TaskKilled { .. } => "task-killed",
                        _ => "task-failed",
                    };
                    push_span(&mut spans, &labels.task(task), cat, o.tid, o.start, t);
                    let sub = (o.tid % STRIDE) as usize;
                    if let Some(b) = busy
                        .get_mut(o.node as usize)
                        .and_then(|row| row.get_mut(sub))
                    {
                        *b = false;
                    }
                }
            }
            Event::Fault { kind, node } => {
                instants.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\
                     \"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                    kind.label(),
                    WF_PID,
                    node * STRIDE,
                    us(t),
                ));
            }
            Event::NodeRecovered { node } => {
                instants.push(format!(
                    "{{\"name\":\"recovered\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\
                     \"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
                    WF_PID,
                    node * STRIDE,
                    us(t),
                ));
            }
            _ => {}
        }
    }

    // Any task still open at the end of the stream (e.g. a truncated
    // trace) closes at the last observed timestamp.
    for (task, slot) in open.iter_mut().enumerate() {
        if let Some(o) = slot.take() {
            if let Some((p, p0)) = o.phase {
                push_span(&mut spans, p.label(), "phase", o.tid, p0, t_end);
            }
            push_span(
                &mut spans,
                &labels.task(task as u32),
                "task",
                o.tid,
                o.start,
                t_end,
            );
        }
    }

    let mut parts: Vec<String> = Vec::new();
    parts.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{WF_PID},\"tid\":0,\
         \"args\":{{\"name\":\"workflow\"}}}}"
    ));
    parts.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{COUNTER_PID},\"tid\":0,\
         \"args\":{{\"name\":\"counters\"}}}}"
    ));
    lanes.sort_by_key(|(tid, _)| *tid);
    for (tid, name) in &lanes {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{WF_PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
        parts.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{WF_PID},\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }
    parts.extend(spans);
    parts.extend(instants);

    let mut names: Vec<&str> = report.metrics.series_names().collect();
    names.sort_unstable();
    for name in names {
        let Some(pts) = report.metrics.series(name) else {
            continue;
        };
        for &(t, v) in pts {
            parts.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{COUNTER_PID},\"tid\":0,\
                 \"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                esc(name),
                us(t),
                v,
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        parts.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{ObsHandle, ObsLevel};

    fn sample_report() -> ObsReport {
        let h = ObsHandle::new(ObsLevel::Full, 3);
        h.set_now(0);
        h.emit(Event::TaskStart {
            task: 0,
            node: 0,
            attempt: 0,
        });
        // A second task on the same node while the first is running:
        // must land on a different sublane.
        h.emit(Event::TaskStart {
            task: 1,
            node: 0,
            attempt: 0,
        });
        h.set_now(1_000_000_000);
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Compute,
        });
        h.set_now(2_000_000_000);
        h.emit(Event::TaskEnd {
            task: 0,
            node: 0,
            attempt: 1,
        });
        h.emit(Event::TaskEnd {
            task: 1,
            node: 0,
            attempt: 1,
        });
        h.take_report().unwrap()
    }

    #[test]
    fn concurrent_tasks_get_distinct_lanes() {
        let json = chrome_trace(&sample_report(), &ChromeLabels::default());
        assert!(json.contains("\"tid\":0"), "sublane 0 missing");
        assert!(json.contains("\"tid\":1"), "sublane 1 missing");
        assert!(json.contains("\"name\":\"w0\""));
        assert!(json.contains("\"name\":\"w0+1\""));
    }

    #[test]
    fn spans_carry_microsecond_times() {
        let json = chrome_trace(&sample_report(), &ChromeLabels::default());
        // Phase span: 1s..2s -> ts 1e6 µs, dur 1e6 µs.
        assert!(
            json.contains("\"ts\":1000000.000,\"dur\":1000000.000"),
            "phase timing missing in:\n{json}"
        );
        assert!(json.contains("\"name\":\"compute\""));
    }

    #[test]
    fn labels_and_escaping_are_applied() {
        let labels = ChromeLabels {
            task_names: vec!["say \"hi\"".into()],
            node_names: vec!["node\\0".into()],
        };
        let json = chrome_trace(&sample_report(), &labels);
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("node\\\\0"));
    }
}
