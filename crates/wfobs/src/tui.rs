//! Dependency-free ANSI terminal viewer for in-flight runs.
//!
//! Three layers, from pure to impure:
//!
//! 1. [`TuiState`] — a bounded-memory model of "what is the run doing
//!    right now", folded incrementally from the event stream: a per-node
//!    Gantt with task-attempt sublanes, storage-throughput and
//!    ready-depth rings, a fault ticker, and cost-so-far from the
//!    billing-segment events.
//! 2. [`render_frame`] — a *headless* renderer: `(state, cols, rows) →
//!    String` of exactly `rows` lines, each exactly `cols` ASCII
//!    characters. Everything a terminal would show is golden- and
//!    property-testable without one.
//! 3. [`LiveSink`] — an [`ObsSink`](crate::sink::ObsSink) that drives a
//!    real terminal with raw escape codes (alternate screen + home
//!    cursor; no ratatui/crossterm), throttled by the bus's sim-time
//!    ticks and additionally rate-limited on wall clock so fast
//!    simulations don't melt the tty. Under a dumb/non-tty terminal it
//!    degrades to plain progress lines.
//!
//! Determinism: the state machine and renderer consume only simulated
//! time. Wall clock is used exclusively to decide whether to *physically
//! write* an already-rendered frame — it can never influence the
//! simulation, the digest, or the frame contents.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;

use crate::event::{Event, FaultKind, Phase};
use crate::metrics::Metrics;
use crate::sink::ObsSink;

/// Most fault-ticker entries kept.
const TICKER_CAP: usize = 64;
/// Most sparkline buckets kept.
const SPARK_CAP: usize = 256;
/// Progress-bar width in the stats line.
const BAR_W: usize = 20;

/// Per-node billing rates, used for the cost-so-far readout. `wfobs` is
/// dependency-free, so the caller (which knows the instance types)
/// supplies cents-per-hour figures; segments bill per started hour,
/// matching `wfcost::CostModel::segments_cents`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeRate {
    /// On-demand cents per hour.
    pub cents_per_hour: u32,
    /// Spot cents per hour (used when the segment is a spot incarnation).
    pub spot_cents_per_hour: u32,
}

/// Static labels and knobs for the viewer.
#[derive(Debug, Clone)]
pub struct TuiConfig {
    /// Run title (workflow name).
    pub title: String,
    /// Storage-backend label (e.g. `s3`, `nfs`).
    pub backend: String,
    /// Total task count, for the progress readout.
    pub total_tasks: u32,
    /// Task names by task id (missing ids render as `t{id}`).
    pub task_names: Vec<String>,
    /// Node labels by cluster node id (missing ids render as `n{id}`).
    pub node_names: Vec<String>,
    /// Billing rates by cluster node id (missing ids cost nothing).
    pub node_rates: Vec<NodeRate>,
    /// Width of the scrolling Gantt window, in simulated seconds.
    pub window_secs: f64,
    /// Most task-attempt sublanes rendered per node.
    pub lane_cap: usize,
}

impl Default for TuiConfig {
    fn default() -> Self {
        TuiConfig {
            title: "run".to_owned(),
            backend: "?".to_owned(),
            total_tasks: 0,
            task_names: Vec::new(),
            node_names: Vec::new(),
            node_rates: Vec::new(),
            window_secs: 120.0,
            lane_cap: 4,
        }
    }
}

/// One closed stretch of a sublane: `[start, end)` rendered as `ch`.
#[derive(Debug, Clone, Copy)]
struct Seg {
    start: u64,
    end: u64,
    ch: u8,
}

/// The open stretch of a sublane: a task attempt in some phase.
#[derive(Debug, Clone, Copy)]
struct Cur {
    start: u64,
    ch: u8,
    task: u32,
    attempt: u32,
}

/// One task-attempt sublane of a node's Gantt row.
#[derive(Debug, Default)]
struct Lane {
    segs: VecDeque<Seg>,
    cur: Option<Cur>,
}

/// Per-node Gantt state.
#[derive(Debug, Default)]
struct NodeLanes {
    lanes: Vec<Lane>,
    /// Closed down-intervals plus the open one, pruned like segments.
    down: VecDeque<(u64, Option<u64>)>,
}

impl NodeLanes {
    fn is_down(&self) -> bool {
        self.down.back().is_some_and(|&(_, end)| end.is_none())
    }
}

/// The bounded live model the sink folds events into.
#[derive(Debug)]
pub struct TuiState {
    cfg: TuiConfig,
    now: u64,
    done: u32,
    retries: u64,
    faults: u64,
    ready_depth: u32,
    /// Started-hour cents of every closed billing segment.
    closed_cents: u64,
    /// Open billing segments: node id → (opened-at, spot).
    open_segments: BTreeMap<u32, (u64, bool)>,
    nodes: BTreeMap<u32, NodeLanes>,
    ticker: VecDeque<(u64, String)>,
    bytes_since_tick: u64,
    io_spark: VecDeque<f64>,
    ready_spark: VecDeque<f64>,
    last_tick: Option<u64>,
}

fn phase_char(p: Phase) -> u8 {
    match p {
        Phase::Ops => b':',
        Phase::StageIn => b'i',
        Phase::Read => b'r',
        Phase::Compute => b'#',
        Phase::Write => b'w',
        Phase::StageOut => b'o',
    }
}

fn phase_name(ch: u8) -> &'static str {
    match ch {
        b'.' => "dispatch",
        b':' => "ops",
        b'i' => "stage-in",
        b'r' => "read",
        b'#' => "compute",
        b'w' => "write",
        b'o' => "stage-out",
        b'x' => "killed",
        _ => "",
    }
}

impl TuiState {
    /// Fresh state over the given configuration.
    pub fn new(cfg: TuiConfig) -> Self {
        TuiState {
            cfg,
            now: 0,
            done: 0,
            retries: 0,
            faults: 0,
            ready_depth: 0,
            closed_cents: 0,
            open_segments: BTreeMap::new(),
            nodes: BTreeMap::new(),
            ticker: VecDeque::new(),
            bytes_since_tick: 0,
            io_spark: VecDeque::new(),
            ready_spark: VecDeque::new(),
            last_tick: None,
        }
    }

    /// Current simulated time, nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.now
    }

    /// Completed-task count.
    pub fn tasks_done(&self) -> u32 {
        self.done
    }

    /// Fault-injection count so far.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Cost so far in cents: every closed segment bills its started
    /// hours; open segments bill as if closed now.
    pub fn cost_cents(&self) -> u64 {
        let open: u64 = self
            .open_segments
            .iter()
            .map(|(&node, &(open, spot))| self.segment_cents(node, open, self.now, spot))
            .sum();
        self.closed_cents + open
    }

    fn segment_cents(&self, node: u32, open: u64, close: u64, spot: bool) -> u64 {
        let rate = self
            .cfg
            .node_rates
            .get(node as usize)
            .copied()
            .unwrap_or_default();
        let cents = if spot {
            rate.spot_cents_per_hour
        } else {
            rate.cents_per_hour
        };
        let hours = (close.saturating_sub(open))
            .div_ceil(3_600_000_000_000)
            .max(1);
        hours * u64::from(cents)
    }

    fn task_name(&self, id: u32) -> String {
        self.cfg
            .task_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("t{id}"))
    }

    fn node_name(&self, id: u32) -> String {
        self.cfg
            .node_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("n{id}"))
    }

    fn push_ticker(&mut self, t: u64, msg: String) {
        if self.ticker.len() == TICKER_CAP {
            self.ticker.pop_front();
        }
        self.ticker.push_back((t, msg));
    }

    fn lane_close(&mut self, node: u32, task: u32, t: u64, kill_ch: Option<u8>) {
        if let Some(nl) = self.nodes.get_mut(&node) {
            for lane in &mut nl.lanes {
                if lane.cur.is_some_and(|c| c.task == task) {
                    let c = lane.cur.take().expect("checked");
                    lane.segs.push_back(Seg {
                        start: c.start,
                        end: t,
                        ch: kill_ch.unwrap_or(c.ch),
                    });
                    return;
                }
            }
        }
    }

    /// Fold one event into the model. Pure sim-time; no I/O.
    pub fn apply(&mut self, t: u64, ev: &Event) {
        self.now = self.now.max(t);
        match *ev {
            Event::TaskStart {
                task,
                node,
                attempt,
            } => {
                if attempt > 0 {
                    self.retries += 1;
                }
                let nl = self.nodes.entry(node).or_default();
                let lane = match nl.lanes.iter_mut().position(|l| l.cur.is_none()) {
                    Some(i) => &mut nl.lanes[i],
                    None => {
                        nl.lanes.push(Lane::default());
                        nl.lanes.last_mut().expect("just pushed")
                    }
                };
                lane.cur = Some(Cur {
                    start: t,
                    ch: b'.',
                    task,
                    attempt,
                });
            }
            Event::TaskPhase { task, node, phase } => {
                if let Some(nl) = self.nodes.get_mut(&node) {
                    for lane in &mut nl.lanes {
                        if let Some(c) = &mut lane.cur {
                            if c.task == task {
                                let closed = Seg {
                                    start: c.start,
                                    end: t,
                                    ch: c.ch,
                                };
                                lane.segs.push_back(closed);
                                c.start = t;
                                c.ch = phase_char(phase);
                                break;
                            }
                        }
                    }
                }
            }
            Event::TaskEnd { task, node, .. } => {
                self.done += 1;
                self.lane_close(node, task, t, None);
            }
            Event::TaskKilled { task, node, .. } => {
                let msg = format!(
                    "task {} killed on {}",
                    self.task_name(task),
                    self.node_name(node)
                );
                self.push_ticker(t, msg);
                self.lane_close(node, task, t, Some(b'x'));
            }
            Event::TaskFailed { task, node } => {
                let msg = format!(
                    "task {} failed on {}",
                    self.task_name(task),
                    self.node_name(node)
                );
                self.push_ticker(t, msg);
                self.lane_close(node, task, t, Some(b'x'));
            }
            Event::ReadyDepth { depth } => self.ready_depth = depth,
            Event::StorageOp { bytes, .. } => self.bytes_since_tick += bytes,
            Event::Fault { kind, node } => {
                self.faults += 1;
                let msg = format!("{} on {}", kind.label(), self.node_name(node));
                self.push_ticker(t, msg);
                if matches!(kind, FaultKind::NodeCrash | FaultKind::SpotTermination) {
                    let nl = self.nodes.entry(node).or_default();
                    if !nl.is_down() {
                        nl.down.push_back((t, None));
                    }
                }
            }
            Event::NodeRecovered { node } => {
                let msg = format!("{} recovered", self.node_name(node));
                self.push_ticker(t, msg);
                let nl = self.nodes.entry(node).or_default();
                if let Some(last) = nl.down.back_mut() {
                    if last.1.is_none() {
                        last.1 = Some(t);
                    }
                }
            }
            Event::FilesLost { count } => {
                self.push_ticker(t, format!("{count} file(s) lost to failover"));
            }
            Event::RescueResubmit { task } => {
                let msg = format!("rescue resubmit {}", self.task_name(task));
                self.push_ticker(t, msg);
            }
            Event::SegmentOpen { node, spot } => {
                self.open_segments.insert(node, (t, spot));
            }
            Event::SegmentClose { node } => {
                if let Some((open, spot)) = self.open_segments.remove(&node) {
                    self.closed_cents += self.segment_cents(node, open, t, spot);
                }
            }
            // Flow- and cache-level events carry no widget today.
            Event::TaskReady { .. }
            | Event::FlowStart { .. }
            | Event::FlowRes { .. }
            | Event::FlowEnd { .. }
            | Event::FlowCancel { .. }
            | Event::CacheHit { .. }
            | Event::CacheMiss { .. }
            | Event::BgEnqueue { .. }
            | Event::BgStart { .. }
            | Event::BgDone => {}
        }
    }

    /// One throttled metric tick: close the current sparkline buckets
    /// and prune everything that scrolled out of the Gantt window.
    pub fn tick(&mut self, t: u64) {
        self.now = self.now.max(t);
        let dt = t.saturating_sub(self.last_tick.unwrap_or(0)).max(1);
        let mbps = self.bytes_since_tick as f64 / (dt as f64 / 1e9) / 1e6;
        push_spark(&mut self.io_spark, mbps);
        push_spark(&mut self.ready_spark, f64::from(self.ready_depth));
        self.bytes_since_tick = 0;
        self.last_tick = Some(t);
        self.prune();
    }

    /// Drop Gantt segments, down-intervals and empty trailing lanes that
    /// ended before the visible window — the bounded-memory guarantee.
    fn prune(&mut self) {
        let horizon = self
            .now
            .saturating_sub(crate::nanos_from_secs(self.cfg.window_secs));
        for nl in self.nodes.values_mut() {
            for lane in &mut nl.lanes {
                while lane.segs.front().is_some_and(|s| s.end < horizon) {
                    lane.segs.pop_front();
                }
            }
            while nl
                .down
                .front()
                .is_some_and(|&(_, end)| end.is_some_and(|e| e < horizon))
            {
                nl.down.pop_front();
            }
            while nl
                .lanes
                .last()
                .is_some_and(|l| l.cur.is_none() && l.segs.is_empty())
                && nl.lanes.len() > 1
            {
                nl.lanes.pop();
            }
        }
    }
}

fn push_spark(ring: &mut VecDeque<f64>, v: f64) {
    if ring.len() == SPARK_CAP {
        ring.pop_front();
    }
    ring.push_back(v);
}

/// ASCII sparkline of the last `w` ring values, scaled to the window max.
fn sparkline(ring: &VecDeque<f64>, w: usize) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    if w == 0 {
        return String::new();
    }
    let vals: Vec<f64> = ring.iter().rev().take(w).rev().copied().collect();
    let max = vals.iter().copied().fold(0.0f64, f64::max);
    let mut out = String::with_capacity(w);
    for _ in vals.len()..w {
        out.push(' ');
    }
    for v in vals {
        let ix = if max > 0.0 && v > 0.0 {
            (((v / max) * 9.0).ceil() as usize).clamp(1, 9)
        } else {
            0
        };
        out.push(LEVELS[ix] as char);
    }
    out
}

/// Clamp to printable ASCII, truncate to `w` chars, pad with spaces —
/// the invariant that makes every frame exactly `cols × rows`.
fn fit(s: &str, w: usize) -> String {
    let mut out = String::with_capacity(w);
    for c in s.chars().take(w) {
        out.push(if (' '..='~').contains(&c) { c } else { '?' });
    }
    while out.len() < w {
        out.push(' ');
    }
    out
}

/// Left text + right text on one line of width `w` (right wins ties).
fn lr(left: &str, right: &str, w: usize) -> String {
    let right = fit(right, right.len().min(w));
    let left_w = w.saturating_sub(right.len());
    let mut out = fit(left, left_w);
    out.push_str(&right);
    fit(&out, w)
}

fn secs(t: u64) -> f64 {
    t as f64 / 1e9
}

/// Render one frame: exactly `rows` lines joined by `\n`, each exactly
/// `cols` printable-ASCII characters. Headless — no terminal, no escape
/// codes, no wall clock — so golden tests and proptests pin it directly.
pub fn render_frame(state: &TuiState, cols: usize, rows: usize) -> String {
    let mut lines: Vec<String> = Vec::new();
    let now = state.now;
    let window = crate::nanos_from_secs(state.cfg.window_secs);
    let t0 = now.saturating_sub(window);

    // Title: run + backend left, sim clock right.
    lines.push(lr(
        &format!("{} on {}", state.cfg.title, state.cfg.backend),
        &format!("t {:>10.1}s ", secs(now)),
        cols,
    ));

    // Stats strip: progress, retries, faults, cost, bar.
    let total = state.cfg.total_tasks;
    let pct = if total > 0 {
        (u64::from(state.done) * 100 / u64::from(total)) as usize
    } else {
        0
    };
    let filled = if total > 0 {
        (u64::from(state.done) as usize * BAR_W) / total as usize
    } else {
        0
    };
    let bar: String = std::iter::repeat_n('=', filled.min(BAR_W))
        .chain(std::iter::repeat_n('.', BAR_W - filled.min(BAR_W)))
        .collect();
    let cents = state.cost_cents();
    lines.push(fit(
        &format!(
            "tasks {}/{}  retry {}  faults {}  cost ${}.{:02}  [{}] {:>3}%",
            state.done,
            total,
            state.retries,
            state.faults,
            cents / 100,
            cents % 100,
            bar,
            pct
        ),
        cols,
    ));

    // Sparklines: storage throughput + ready-queue depth.
    let io_now = state.io_spark.back().copied().unwrap_or(0.0);
    let spark_w = (cols.saturating_sub(44) / 2).clamp(4, 24);
    lines.push(fit(
        &format!(
            "io {:>8.1} MB/s [{}]  ready {:>3} [{}]",
            io_now,
            sparkline(&state.io_spark, spark_w),
            state.ready_depth,
            sparkline(&state.ready_spark, spark_w),
        ),
        cols,
    ));

    // Gantt: header + one row per (node, sublane).
    let label_w = 7usize;
    let right_w = if cols >= 48 { 20 } else { 0 };
    let band_w = cols.saturating_sub(label_w + right_w + 2);
    if band_w >= 8 {
        lines.push(fit(
            &format!(
                "{:<label_w$}|{}|",
                "node",
                fit(
                    &format!(
                        " {:.1}s .. {:.1}s (1 col = {:.1}s)",
                        secs(t0),
                        secs(now),
                        secs((now - t0) / band_w as u64)
                    ),
                    band_w
                )
            ),
            cols,
        ));
        let empty_lane = Lane::default();
        for (&node, nl) in &state.nodes {
            let name = state.node_name(node);
            // A node with no task lanes yet still gets one row, so
            // down-bands ('~') show for idle crashed nodes.
            let lanes: &[Lane] = if nl.lanes.is_empty() {
                std::slice::from_ref(&empty_lane)
            } else {
                &nl.lanes
            };
            let shown = lanes.len().min(state.cfg.lane_cap.max(1));
            for (li, lane) in lanes.iter().take(shown).enumerate() {
                let label = if lanes.len() > 1 {
                    format!("{name}.{li}")
                } else {
                    name.clone()
                };
                let band = render_band(lane, nl, t0, now, band_w);
                let right = match lane.cur {
                    Some(c) => format!(
                        " {}:{} {}",
                        state.task_name(c.task),
                        c.attempt,
                        phase_name(c.ch)
                    ),
                    None if nl.is_down() => " down".to_owned(),
                    None => String::new(),
                };
                lines.push(fit(
                    &format!("{:<label_w$}|{}|{}", fit(&label, label_w), band, right),
                    cols,
                ));
            }
            if lanes.len() > shown {
                lines.push(fit(
                    &format!(
                        "{:<label_w$}|{} more lane(s) not shown",
                        "",
                        lanes.len() - shown
                    ),
                    cols,
                ));
            }
        }
    }

    // Fault ticker: newest entries last, as many as fit.
    lines.push(fit("faults:", cols));
    if state.ticker.is_empty() {
        lines.push(fit("  (none)", cols));
    } else {
        let room = rows.saturating_sub(lines.len()).max(1);
        let skip = state.ticker.len().saturating_sub(room);
        for (t, msg) in state.ticker.iter().skip(skip) {
            lines.push(fit(&format!("  {:>9.1}s  {}", secs(*t), msg), cols));
        }
    }

    lines.truncate(rows);
    while lines.len() < rows {
        lines.push(fit("", cols));
    }
    lines.join("\n")
}

/// Paint one sublane band over `[t0, now]`: each column shows the phase
/// char of the segment covering its midpoint, `~` where the node was
/// down, space where idle.
fn render_band(lane: &Lane, nl: &NodeLanes, t0: u64, now: u64, w: usize) -> String {
    let mut out = String::with_capacity(w);
    let span = (now - t0).max(1);
    for c in 0..w {
        // Bucket midpoint, computed in u128 to dodge overflow on long runs.
        let mid = t0 + ((span as u128 * (2 * c as u128 + 1)) / (2 * w as u128)) as u64;
        let mut ch = b' ';
        for s in &lane.segs {
            if s.start <= mid && mid < s.end {
                ch = s.ch;
                break;
            }
        }
        if ch == b' ' {
            if let Some(cur) = lane.cur {
                if cur.start <= mid {
                    ch = cur.ch;
                }
            }
        }
        if ch == b' '
            && nl
                .down
                .iter()
                .any(|&(s, e)| s <= mid && e.is_none_or(|e| mid < e))
        {
            ch = b'~';
        }
        out.push(ch as char);
    }
    out
}

// ---------------------------------------------------------------------
// Live terminal sink
// ---------------------------------------------------------------------

/// How [`LiveSink`] talks to the terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMode {
    /// Full-screen ANSI rendering (alternate screen, home cursor).
    Ansi,
    /// Plain, escape-free progress lines (dumb terminals, pipes, CI).
    Plain,
}

/// Pick a live mode for stderr: ANSI only when stderr is a real
/// terminal and `TERM` is set to something that isn't `dumb`.
pub fn detect_live_mode() -> LiveMode {
    use std::io::IsTerminal;
    let term = std::env::var("TERM").unwrap_or_default();
    if std::io::stderr().is_terminal() && !term.is_empty() && term != "dumb" {
        LiveMode::Ansi
    } else {
        LiveMode::Plain
    }
}

/// Terminal geometry from the `COLUMNS`/`LINES` environment (no ioctl —
/// dependency-free), with a sane default.
pub fn term_size_from_env() -> (usize, usize) {
    let get = |k: &str, lo: usize, hi: usize| {
        std::env::var(k)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|v| v.clamp(lo, hi))
    };
    (
        get("COLUMNS", 40, 500).unwrap_or(100),
        get("LINES", 8, 200).unwrap_or(32),
    )
}

/// The live viewer: folds events into a [`TuiState`] and repaints the
/// terminal on throttled metric ticks.
pub struct LiveSink {
    state: TuiState,
    mode: LiveMode,
    cols: usize,
    rows: usize,
    /// Wall-clock floor between physical repaints.
    min_redraw: std::time::Duration,
    last_draw: Option<std::time::Instant>,
    screen_open: bool,
}

impl LiveSink {
    /// A sink rendering `cols × rows` frames in the given mode.
    pub fn new(cfg: TuiConfig, mode: LiveMode, cols: usize, rows: usize) -> Self {
        LiveSink {
            state: TuiState::new(cfg),
            mode,
            cols: cols.max(20),
            rows: rows.max(4),
            min_redraw: std::time::Duration::from_millis(33),
            last_draw: None,
            screen_open: false,
        }
    }

    fn plain_line(&self) -> String {
        let s = &self.state;
        let cents = s.cost_cents();
        format!(
            "live: t={:.1}s tasks {}/{} faults {} cost ${}.{:02}",
            secs(s.now_nanos()),
            s.tasks_done(),
            s.cfg.total_tasks,
            s.fault_count(),
            cents / 100,
            cents % 100,
        )
    }

    fn draw(&mut self, force: bool) {
        // Wall-clock rate limit: output-only, never feeds back into the
        // simulation or the frame contents.
        if !force
            && self
                .last_draw
                .is_some_and(|t| t.elapsed() < self.min_redraw)
        {
            return;
        }
        self.last_draw = Some(std::time::Instant::now());
        let err = std::io::stderr();
        let mut out = err.lock();
        match self.mode {
            LiveMode::Ansi => {
                let frame = render_frame(&self.state, self.cols, self.rows);
                if !self.screen_open {
                    // Alternate screen, hidden cursor.
                    let _ = out.write_all(b"\x1b[?1049h\x1b[?25l");
                    self.screen_open = true;
                }
                let mut buf = String::with_capacity(frame.len() + 64);
                buf.push_str("\x1b[H");
                for line in frame.split('\n') {
                    buf.push_str(line);
                    buf.push_str("\x1b[K\r\n");
                }
                let _ = out.write_all(buf.as_bytes());
                let _ = out.flush();
            }
            LiveMode::Plain => {
                let _ = writeln!(out, "{}", self.plain_line());
            }
        }
    }

    fn close_screen(&mut self) {
        if self.screen_open {
            let err = std::io::stderr();
            let mut out = err.lock();
            // Restore main screen + cursor.
            let _ = out.write_all(b"\x1b[?1049l\x1b[?25h");
            let _ = out.flush();
            self.screen_open = false;
        }
    }
}

impl ObsSink for LiveSink {
    fn on_event(&mut self, t_nanos: u64, ev: &Event) {
        self.state.apply(t_nanos, ev);
    }

    fn on_metric_tick(&mut self, t_nanos: u64, _metrics: &Metrics) {
        self.state.tick(t_nanos);
        self.draw(false);
    }

    fn on_flush(&mut self, _t_nanos: u64) {
        self.draw(true);
        self.close_screen();
        if self.mode == LiveMode::Ansi {
            // Leave the last frame on the main screen for scrollback.
            let frame = render_frame(&self.state, self.cols, self.rows);
            let err = std::io::stderr();
            let mut out = err.lock();
            let _ = writeln!(out, "{frame}");
        }
    }
}

/// A headless frame capturer: renders on every tick like the live
/// viewer, but stores frames (bounded) instead of touching a terminal.
/// The golden-frame tests and the live-determinism metamorphic test run
/// on this.
pub struct FrameSink {
    state: TuiState,
    cols: usize,
    rows: usize,
    cap: usize,
    frames: std::rc::Rc<std::cell::RefCell<Vec<(u64, String)>>>,
}

impl FrameSink {
    /// Capture up to `cap` `(tick-time, frame)` pairs into `frames`.
    pub fn new(
        cfg: TuiConfig,
        cols: usize,
        rows: usize,
        cap: usize,
        frames: std::rc::Rc<std::cell::RefCell<Vec<(u64, String)>>>,
    ) -> Self {
        FrameSink {
            state: TuiState::new(cfg),
            cols,
            rows,
            cap: cap.max(1),
            frames,
        }
    }
}

impl ObsSink for FrameSink {
    fn on_event(&mut self, t_nanos: u64, ev: &Event) {
        self.state.apply(t_nanos, ev);
    }

    fn on_metric_tick(&mut self, t_nanos: u64, _metrics: &Metrics) {
        self.state.tick(t_nanos);
        let mut frames = self.frames.borrow_mut();
        if frames.len() == self.cap {
            frames.remove(0);
        }
        frames.push((t_nanos, render_frame(&self.state, self.cols, self.rows)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_dims(frame: &str) -> (usize, Vec<usize>) {
        let lines: Vec<&str> = frame.split('\n').collect();
        let widths = lines.iter().map(|l| l.chars().count()).collect();
        (lines.len(), widths)
    }

    #[test]
    fn empty_state_renders_exact_geometry() {
        let s = TuiState::new(TuiConfig::default());
        for (c, r) in [(80, 24), (20, 5), (1, 1), (200, 50)] {
            let f = render_frame(&s, c, r);
            let (rows, widths) = frame_dims(&f);
            assert_eq!(rows, r);
            assert!(widths.iter().all(|&w| w == c), "{c}x{r}: {widths:?}");
        }
    }

    #[test]
    fn task_lifecycle_paints_lanes() {
        let mut s = TuiState::new(TuiConfig {
            total_tasks: 1,
            task_names: vec!["mAdd".into()],
            node_names: vec!["w0".into()],
            window_secs: 100.0,
            ..TuiConfig::default()
        });
        let sec = crate::nanos_from_secs;
        s.apply(
            sec(1.0),
            &Event::TaskStart {
                task: 0,
                node: 0,
                attempt: 0,
            },
        );
        s.apply(
            sec(10.0),
            &Event::TaskPhase {
                task: 0,
                node: 0,
                phase: Phase::Compute,
            },
        );
        s.tick(sec(50.0));
        let f = render_frame(&s, 100, 12);
        assert!(f.contains("mAdd:0 compute"), "{f}");
        assert!(f.contains('#'), "compute cells painted: {f}");
        s.apply(
            sec(60.0),
            &Event::TaskEnd {
                task: 0,
                node: 0,
                attempt: 1,
            },
        );
        s.tick(sec(61.0));
        let f = render_frame(&s, 100, 12);
        assert!(f.contains("tasks 1/1"), "{f}");
    }

    #[test]
    fn fault_ticker_and_down_band() {
        let mut s = TuiState::new(TuiConfig {
            node_names: vec!["w0".into()],
            window_secs: 100.0,
            ..TuiConfig::default()
        });
        let sec = crate::nanos_from_secs;
        s.apply(
            sec(5.0),
            &Event::Fault {
                kind: FaultKind::NodeCrash,
                node: 0,
            },
        );
        s.tick(sec(20.0));
        let f = render_frame(&s, 90, 14);
        assert!(f.contains("node_crash on w0"), "{f}");
        assert!(f.contains('~'), "down cells painted: {f}");
        s.apply(sec(30.0), &Event::NodeRecovered { node: 0 });
        s.tick(sec(40.0));
        let f = render_frame(&s, 90, 14);
        assert!(f.contains("w0 recovered"), "{f}");
    }

    #[test]
    fn cost_counts_open_and_closed_segments() {
        let mut s = TuiState::new(TuiConfig {
            node_rates: vec![
                NodeRate {
                    cents_per_hour: 68,
                    spot_cents_per_hour: 20,
                },
                NodeRate {
                    cents_per_hour: 68,
                    spot_cents_per_hour: 20,
                },
            ],
            ..TuiConfig::default()
        });
        let sec = crate::nanos_from_secs;
        s.apply(
            sec(0.0),
            &Event::SegmentOpen {
                node: 0,
                spot: false,
            },
        );
        s.apply(
            sec(0.0),
            &Event::SegmentOpen {
                node: 1,
                spot: true,
            },
        );
        s.apply(sec(10.0), &Event::SegmentClose { node: 1 });
        s.apply(sec(20.0), &Event::BgDone); // advances the clock
                                            // Node 0 open 20 s → 1 started hour à 68; node 1 closed → 1 spot hour à 20.
        assert_eq!(s.cost_cents(), 88);
    }

    #[test]
    fn ticker_is_bounded() {
        let mut s = TuiState::new(TuiConfig::default());
        for i in 0..(TICKER_CAP as u64 + 40) {
            s.apply(i, &Event::FilesLost { count: 1 });
        }
        assert_eq!(s.ticker.len(), TICKER_CAP);
    }

    #[test]
    fn pruning_bounds_lane_memory() {
        let mut s = TuiState::new(TuiConfig {
            window_secs: 10.0,
            ..TuiConfig::default()
        });
        let sec = crate::nanos_from_secs;
        for i in 0..200u32 {
            let t0 = f64::from(i) * 2.0;
            s.apply(
                sec(t0),
                &Event::TaskStart {
                    task: i,
                    node: 0,
                    attempt: 0,
                },
            );
            s.apply(
                sec(t0 + 1.0),
                &Event::TaskEnd {
                    task: i,
                    node: 0,
                    attempt: 1,
                },
            );
            s.tick(sec(t0 + 1.5));
        }
        let lanes = &s.nodes[&0].lanes;
        let total: usize = lanes.iter().map(|l| l.segs.len()).sum();
        assert!(total < 20, "pruned to the window, got {total}");
    }

    #[test]
    fn sparkline_scales_and_pads() {
        let mut ring = VecDeque::new();
        push_spark(&mut ring, 0.0);
        push_spark(&mut ring, 5.0);
        push_spark(&mut ring, 10.0);
        let s = sparkline(&ring, 5);
        assert_eq!(s.len(), 5);
        assert!(s.ends_with('@'), "{s:?}");
        assert_eq!(sparkline(&VecDeque::new(), 4), "    ");
    }

    #[test]
    fn fit_sanitises_non_ascii() {
        assert_eq!(fit("héllo", 6), "h?llo ");
        assert_eq!(fit("abcdef", 3), "abc");
    }
}
