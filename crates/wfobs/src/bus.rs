//! The event bus: a cheap-to-clone handle the whole stack emits through.
//!
//! The handle is a nullable `Rc<RefCell<..>>`. When observability is off
//! (the default) the option is `None` and every emission is a single
//! branch on a niche-optimised pointer — the "zero overhead when
//! disabled" contract. The simulation loop owns the clock: it calls
//! [`ObsHandle::set_now`] before draining each event, so emitters
//! (drivers, storage backends) never pass timestamps themselves.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::digest::RunDigest;
use crate::event::{Event, FaultKind, OpKind};
use crate::metrics::Metrics;

/// How much the bus records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// No bus at all; emission sites compile to a null check.
    #[default]
    Off,
    /// Stream every event through the run digest, record nothing else.
    Digest,
    /// Digest + in-memory event log + metrics registry (for exporters).
    Full,
}

/// Convert simulated seconds to the bus's nanosecond clock.
pub fn nanos_from_secs(secs: f64) -> u64 {
    // Simulated times are non-negative and far below u64::MAX nanoseconds
    // (≈ 584 years); round-to-nearest keeps equal f64 times equal.
    (secs * 1e9).round() as u64
}

/// Everything the bus accumulated over one run, extracted at the end.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Recording level the run used.
    pub level: ObsLevel,
    /// Seed the digest was initialised with.
    pub seed: u64,
    /// Timestamped event log (empty unless [`ObsLevel::Full`]).
    pub events: Vec<(u64, Event)>,
    /// Registered resource labels, by resource index.
    pub resources: Vec<String>,
    /// Metrics registry (empty unless [`ObsLevel::Full`]).
    pub metrics: Metrics,
    /// Final run digest.
    pub digest: u64,
}

#[derive(Debug)]
struct BusInner {
    level: ObsLevel,
    seed: u64,
    now: u64,
    digest: RunDigest,
    events: Vec<(u64, Event)>,
    resources: Vec<String>,
    metrics: Metrics,
    /// Resources crossed by each in-flight flow (Full only; used to keep
    /// per-resource in-flight counts on flow end/cancel).
    flow_paths: BTreeMap<u64, Vec<u32>>,
    /// In-flight flow count per resource index (Full only).
    inflight: Vec<u32>,
}

impl BusInner {
    fn record(&mut self, ev: Event) {
        let t = self.now;
        self.digest.absorb(t, &ev);
        if self.level != ObsLevel::Full {
            return;
        }
        self.events.push((t, ev));
        self.update_metrics(t, &ev);
    }

    fn update_metrics(&mut self, t: u64, ev: &Event) {
        const DEPTH_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 64];
        let m = &mut self.metrics;
        match *ev {
            Event::TaskReady { .. } => m.count("tasks_ready", 1),
            Event::TaskStart { .. } => m.count("tasks_started", 1),
            Event::TaskEnd { .. } => m.count("tasks_finished", 1),
            Event::TaskKilled { wasted_nanos, .. } => {
                m.count("tasks_killed", 1);
                m.count("wasted_nanos", wasted_nanos);
            }
            Event::TaskFailed { .. } => m.count("tasks_failed", 1),
            Event::ReadyDepth { depth } => {
                m.observe("ready_depth", &DEPTH_BOUNDS, u64::from(depth));
                m.sample("ready_depth", t, f64::from(depth));
            }
            Event::FlowStart { id, bytes, .. } => {
                m.count("flows_started", 1);
                m.count("flow_bytes", bytes);
                self.flow_paths.insert(id, Vec::new());
            }
            Event::FlowRes { id, resource } => {
                if let Some(path) = self.flow_paths.get_mut(&id) {
                    path.push(resource);
                }
                self.bump_inflight(t, resource, 1);
            }
            Event::FlowEnd { id } => {
                m.count("flows_finished", 1);
                self.drop_flow(t, id);
            }
            Event::FlowCancel { id } => {
                m.count("flows_cancelled", 1);
                self.drop_flow(t, id);
            }
            Event::StorageOp { op, bytes, .. } => {
                let name = match op {
                    OpKind::Read => "storage_reads",
                    OpKind::Write => "storage_writes",
                    OpKind::StageIn => "storage_stage_ins",
                    OpKind::StageOut => "storage_stage_outs",
                    OpKind::OpStorm => "storage_op_storms",
                };
                m.count(name, 1);
                m.count("storage_bytes", bytes);
            }
            Event::CacheHit { .. } => m.count("cache_hits", 1),
            Event::CacheMiss { .. } => m.count("cache_misses", 1),
            Event::BgEnqueue { depth } => {
                m.count("bg_enqueued", 1);
                m.observe("bg_depth", &DEPTH_BOUNDS, u64::from(depth));
                m.sample("bg_depth", t, f64::from(depth));
            }
            Event::BgStart { depth } => m.sample("bg_depth", t, f64::from(depth)),
            Event::BgDone => m.count("bg_done", 1),
            Event::Fault { kind, .. } => {
                let name = match kind {
                    FaultKind::NodeCrash => "faults_node_crash",
                    FaultKind::SpotTermination => "faults_spot_termination",
                    FaultKind::StorageFailure => "faults_storage_failure",
                };
                m.count(name, 1);
            }
            Event::FilesLost { count } => m.count("files_lost", u64::from(count)),
            Event::RescueResubmit { .. } => m.count("rescue_resubmits", 1),
            Event::NodeRecovered { .. } => m.count("nodes_recovered", 1),
            Event::SegmentOpen { .. } => m.count("segments_opened", 1),
            Event::SegmentClose { .. } => m.count("segments_closed", 1),
            Event::TaskPhase { .. } => {}
        }
    }

    fn bump_inflight(&mut self, t: u64, resource: u32, delta: i64) {
        let ix = resource as usize;
        if self.inflight.len() <= ix {
            self.inflight.resize(ix + 1, 0);
        }
        let v = i64::from(self.inflight[ix]) + delta;
        self.inflight[ix] = v.max(0) as u32;
        let label = self
            .resources
            .get(ix)
            .cloned()
            .unwrap_or_else(|| format!("r{ix}"));
        self.metrics
            .sample(&format!("inflight_flows.{label}"), t, v.max(0) as f64);
    }

    fn drop_flow(&mut self, t: u64, id: u64) {
        if let Some(path) = self.flow_paths.remove(&id) {
            for r in path {
                self.bump_inflight(t, r, -1);
            }
        }
    }
}

/// The cloneable bus handle. `Default` (and [`ObsHandle::disabled`]) is
/// the null handle: every method is a no-op behind one branch.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle(Option<Rc<RefCell<BusInner>>>);

impl ObsHandle {
    /// A live bus at the given level, or the null handle for
    /// [`ObsLevel::Off`].
    pub fn new(level: ObsLevel, seed: u64) -> Self {
        if level == ObsLevel::Off {
            return ObsHandle(None);
        }
        ObsHandle(Some(Rc::new(RefCell::new(BusInner {
            level,
            seed,
            now: 0,
            digest: RunDigest::new(seed),
            events: Vec::new(),
            resources: Vec::new(),
            metrics: Metrics::default(),
            flow_paths: BTreeMap::new(),
            inflight: Vec::new(),
        }))))
    }

    /// The null handle.
    pub fn disabled() -> Self {
        ObsHandle(None)
    }

    /// Whether emissions do anything. Emission sites that must build a
    /// payload (e.g. look up a flow rate) should guard on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Recording level.
    pub fn level(&self) -> ObsLevel {
        self.0.as_ref().map_or(ObsLevel::Off, |b| b.borrow().level)
    }

    /// Advance the bus clock. Called by the simulation loop only.
    #[inline]
    pub fn set_now(&self, t_nanos: u64) {
        if let Some(b) = &self.0 {
            b.borrow_mut().now = t_nanos;
        }
    }

    /// Emit one event, stamped with the current bus clock.
    #[inline]
    pub fn emit(&self, ev: Event) {
        if let Some(b) = &self.0 {
            b.borrow_mut().record(ev);
        }
    }

    /// Register a resource label; call order defines resource indices and
    /// must match the emitter's `FlowRes::resource` numbering.
    pub fn register_resource(&self, label: &str) {
        if let Some(b) = &self.0 {
            b.borrow_mut().resources.push(label.to_owned());
        }
    }

    /// The digest so far, if the bus is live.
    pub fn digest(&self) -> Option<u64> {
        self.0.as_ref().map(|b| b.borrow().digest.value())
    }

    /// Number of events absorbed so far (digested, not just recorded).
    pub fn event_count(&self) -> u64 {
        self.0.as_ref().map_or(0, |b| b.borrow().digest.count())
    }

    /// Extract the final report, draining the bus. Returns `None` for the
    /// null handle.
    pub fn take_report(&self) -> Option<ObsReport> {
        let b = self.0.as_ref()?;
        let mut inner = b.borrow_mut();
        Some(ObsReport {
            level: inner.level,
            seed: inner.seed,
            events: std::mem::take(&mut inner.events),
            resources: std::mem::take(&mut inner.resources),
            metrics: std::mem::take(&mut inner.metrics),
            digest: inner.digest.value(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_inert() {
        let h = ObsHandle::disabled();
        assert!(!h.enabled());
        h.set_now(5);
        h.emit(Event::BgDone);
        assert_eq!(h.digest(), None);
        assert!(h.take_report().is_none());
    }

    #[test]
    fn digest_and_full_levels_agree_on_digest() {
        let mk = |level| {
            let h = ObsHandle::new(level, 42);
            h.set_now(nanos_from_secs(1.5));
            h.emit(Event::TaskReady { task: 0 });
            h.emit(Event::TaskStart {
                task: 0,
                node: 0,
                attempt: 0,
            });
            h.set_now(nanos_from_secs(2.0));
            h.emit(Event::TaskEnd {
                task: 0,
                node: 0,
                attempt: 1,
            });
            h.digest().unwrap()
        };
        assert_eq!(mk(ObsLevel::Digest), mk(ObsLevel::Full));
    }

    #[test]
    fn full_level_records_events_and_metrics() {
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.register_resource("net:w0");
        h.set_now(10);
        h.emit(Event::FlowStart {
            id: 1,
            bytes: 100,
            rate_bits: 1.0f64.to_bits(),
        });
        h.emit(Event::FlowRes { id: 1, resource: 0 });
        h.set_now(20);
        h.emit(Event::FlowEnd { id: 1 });
        let r = h.take_report().unwrap();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.metrics.counter("flows_started"), 1);
        assert_eq!(r.metrics.counter("flows_finished"), 1);
        assert_eq!(r.metrics.counter("flow_bytes"), 100);
        assert_eq!(
            r.metrics.series("inflight_flows.net:w0").unwrap(),
            &[(10, 1.0), (20, 0.0)]
        );
    }

    #[test]
    fn digest_level_records_nothing_but_digest() {
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.emit(Event::BgDone);
        let r = h.take_report().unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.metrics.counter("bg_done"), 0);
        assert_eq!(h.event_count(), 1, "the event was still digested");
        assert_ne!(r.digest, 0);
    }
}
