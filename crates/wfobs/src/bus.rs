//! The event bus: a cheap-to-clone handle the whole stack emits through.
//!
//! The handle is a nullable `Rc<RefCell<..>>`. When observability is off
//! (the default) the option is `None` and every emission is a single
//! branch on a niche-optimised pointer — the "zero overhead when
//! disabled" contract. The simulation loop owns the clock: it calls
//! [`ObsHandle::set_now`] before draining each event, so emitters
//! (drivers, storage backends) never pass timestamps themselves.
//!
//! Since the live-streaming refactor the bus is a fan-out pipeline: the
//! digest absorbs every event first, then the in-memory recorder (itself
//! just an [`ObsSink`]) and any attached live sinks see it. Sinks are
//! observers only — attaching them cannot change the digest, the
//! metrics, or anything the simulation computes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::digest::RunDigest;
use crate::event::{Event, FaultKind, OpKind};
use crate::metrics::Metrics;
use crate::sink::ObsSink;

/// How much the bus records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// No bus at all; emission sites compile to a null check.
    #[default]
    Off,
    /// Stream every event through the run digest, record nothing else.
    Digest,
    /// Digest + in-memory event log + metrics registry (for exporters).
    Full,
}

/// Convert simulated seconds to the bus's nanosecond clock.
pub fn nanos_from_secs(secs: f64) -> u64 {
    // Simulated times are non-negative and far below u64::MAX nanoseconds
    // (≈ 584 years); round-to-nearest keeps equal f64 times equal.
    (secs * 1e9).round() as u64
}

/// Default sim-time metric-tick interval: 250 ms of simulated time.
pub const DEFAULT_TICK_NANOS: u64 = 250_000_000;

/// Everything the bus accumulated over one run, extracted at the end.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Recording level the run used.
    pub level: ObsLevel,
    /// Seed the digest was initialised with.
    pub seed: u64,
    /// Timestamped event log (empty unless [`ObsLevel::Full`]).
    pub events: Vec<(u64, Event)>,
    /// Registered resource labels, by resource index.
    pub resources: Vec<String>,
    /// Metrics registry (empty unless [`ObsLevel::Full`]).
    pub metrics: Metrics,
    /// Final run digest.
    pub digest: u64,
}

/// The in-memory recorder: the original record-then-export store,
/// restructured as one [`ObsSink`] among many. It owns the event log,
/// the metrics registry and the per-resource in-flight bookkeeping the
/// exporters consume after the run.
#[derive(Debug, Default)]
struct Recorder {
    events: Vec<(u64, Event)>,
    resources: Vec<String>,
    metrics: Metrics,
    /// Resources crossed by each in-flight flow (used to keep
    /// per-resource in-flight counts on flow end/cancel).
    flow_paths: BTreeMap<u64, Vec<u32>>,
    /// In-flight flow count per resource index.
    inflight: Vec<u32>,
}

impl Recorder {
    fn update_metrics(&mut self, t: u64, ev: &Event) {
        const DEPTH_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 64];
        let m = &mut self.metrics;
        match *ev {
            Event::TaskReady { .. } => m.count("tasks_ready", 1),
            Event::TaskStart { .. } => m.count("tasks_started", 1),
            Event::TaskEnd { .. } => m.count("tasks_finished", 1),
            Event::TaskKilled { wasted_nanos, .. } => {
                m.count("tasks_killed", 1);
                m.count("wasted_nanos", wasted_nanos);
            }
            Event::TaskFailed { .. } => m.count("tasks_failed", 1),
            Event::ReadyDepth { depth } => {
                m.observe("ready_depth", &DEPTH_BOUNDS, u64::from(depth));
                m.sample("ready_depth", t, f64::from(depth));
            }
            Event::FlowStart { id, bytes, .. } => {
                m.count("flows_started", 1);
                m.count("flow_bytes", bytes);
                self.flow_paths.insert(id, Vec::new());
            }
            Event::FlowRes { id, resource } => {
                if let Some(path) = self.flow_paths.get_mut(&id) {
                    path.push(resource);
                }
                self.bump_inflight(t, resource, 1);
            }
            Event::FlowEnd { id } => {
                m.count("flows_finished", 1);
                self.drop_flow(t, id);
            }
            Event::FlowCancel { id } => {
                m.count("flows_cancelled", 1);
                self.drop_flow(t, id);
            }
            Event::StorageOp { op, bytes, .. } => {
                let name = match op {
                    OpKind::Read => "storage_reads",
                    OpKind::Write => "storage_writes",
                    OpKind::StageIn => "storage_stage_ins",
                    OpKind::StageOut => "storage_stage_outs",
                    OpKind::OpStorm => "storage_op_storms",
                };
                m.count(name, 1);
                m.count("storage_bytes", bytes);
            }
            Event::CacheHit { .. } => m.count("cache_hits", 1),
            Event::CacheMiss { .. } => m.count("cache_misses", 1),
            Event::BgEnqueue { depth } => {
                m.count("bg_enqueued", 1);
                m.observe("bg_depth", &DEPTH_BOUNDS, u64::from(depth));
                m.sample("bg_depth", t, f64::from(depth));
            }
            Event::BgStart { depth } => m.sample("bg_depth", t, f64::from(depth)),
            Event::BgDone => m.count("bg_done", 1),
            Event::Fault { kind, .. } => {
                let name = match kind {
                    FaultKind::NodeCrash => "faults_node_crash",
                    FaultKind::SpotTermination => "faults_spot_termination",
                    FaultKind::StorageFailure => "faults_storage_failure",
                };
                m.count(name, 1);
            }
            Event::FilesLost { count } => m.count("files_lost", u64::from(count)),
            Event::RescueResubmit { .. } => m.count("rescue_resubmits", 1),
            Event::NodeRecovered { .. } => m.count("nodes_recovered", 1),
            Event::SegmentOpen { .. } => m.count("segments_opened", 1),
            Event::SegmentClose { .. } => m.count("segments_closed", 1),
            Event::TaskPhase { .. } => {}
        }
    }

    fn bump_inflight(&mut self, t: u64, resource: u32, delta: i64) {
        let ix = resource as usize;
        if self.inflight.len() <= ix {
            self.inflight.resize(ix + 1, 0);
        }
        let v = i64::from(self.inflight[ix]) + delta;
        self.inflight[ix] = v.max(0) as u32;
        let label = self
            .resources
            .get(ix)
            .cloned()
            .unwrap_or_else(|| format!("r{ix}"));
        self.metrics
            .sample(&format!("inflight_flows.{label}"), t, v.max(0) as f64);
    }

    fn drop_flow(&mut self, t: u64, id: u64) {
        if let Some(path) = self.flow_paths.remove(&id) {
            for r in path {
                self.bump_inflight(t, r, -1);
            }
        }
    }
}

impl ObsSink for Recorder {
    fn on_resource(&mut self, _ix: u32, label: &str) {
        self.resources.push(label.to_owned());
    }

    fn on_event(&mut self, t_nanos: u64, ev: &Event) {
        self.events.push((t_nanos, *ev));
        self.update_metrics(t_nanos, ev);
    }
}

struct BusInner {
    level: ObsLevel,
    seed: u64,
    now: u64,
    digest: RunDigest,
    recorder: Recorder,
    sinks: Vec<Box<dyn ObsSink>>,
    /// Next aligned sim-time boundary at which a metric tick may fire.
    next_tick: u64,
    /// Sim-time width of one tick bucket.
    tick_interval: u64,
    /// Time of the last tick fired (so flush never double-ticks).
    last_tick: Option<u64>,
    /// Whether any event was recorded after the last tick. The sim loop
    /// advances the clock *before* emitting, so events at time `t` land
    /// after a tick at `t` — flush must re-tick to make the final frame
    /// reflect them.
    events_since_tick: bool,
}

impl std::fmt::Debug for BusInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusInner")
            .field("level", &self.level)
            .field("seed", &self.seed)
            .field("now", &self.now)
            .field("events", &self.recorder.events.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl BusInner {
    fn record(&mut self, ev: Event) {
        let t = self.now;
        // Digest first: sinks can never perturb the replay contract.
        self.digest.absorb(t, &ev);
        if self.level == ObsLevel::Full {
            self.recorder.on_event(t, &ev);
        }
        for s in &mut self.sinks {
            s.on_event(t, &ev);
        }
        self.events_since_tick = true;
    }

    /// Fire a metric tick at `t` if the clock crossed the next aligned
    /// boundary. Called on every clock advance; the alignment guarantees
    /// at most one tick per simulated interval regardless of how many
    /// events land inside it.
    fn maybe_tick(&mut self, t: u64) {
        if self.sinks.is_empty() || t < self.next_tick {
            return;
        }
        self.fire_tick(t);
        let interval = self.tick_interval.max(1);
        self.next_tick = (t / interval + 1) * interval;
    }

    fn fire_tick(&mut self, t: u64) {
        for s in &mut self.sinks {
            s.on_metric_tick(t, &self.recorder.metrics);
        }
        self.last_tick = Some(t);
        self.events_since_tick = false;
    }
}

/// The cloneable bus handle. `Default` (and [`ObsHandle::disabled`]) is
/// the null handle: every method is a no-op behind one branch.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle(Option<Rc<RefCell<BusInner>>>);

impl ObsHandle {
    /// A live bus at the given level, or the null handle for
    /// [`ObsLevel::Off`].
    pub fn new(level: ObsLevel, seed: u64) -> Self {
        if level == ObsLevel::Off {
            return ObsHandle(None);
        }
        ObsHandle(Some(Rc::new(RefCell::new(BusInner {
            level,
            seed,
            now: 0,
            digest: RunDigest::new(seed),
            recorder: Recorder::default(),
            sinks: Vec::new(),
            next_tick: 0,
            tick_interval: DEFAULT_TICK_NANOS,
            last_tick: None,
            events_since_tick: false,
        }))))
    }

    /// The null handle.
    pub fn disabled() -> Self {
        ObsHandle(None)
    }

    /// Whether emissions do anything. Emission sites that must build a
    /// payload (e.g. look up a flow rate) should guard on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Recording level.
    pub fn level(&self) -> ObsLevel {
        self.0.as_ref().map_or(ObsLevel::Off, |b| b.borrow().level)
    }

    /// Attach a live sink. Every subsequent event fans out to it, and
    /// metric ticks fire on sim-time boundaries. No-op on the null
    /// handle (live viewing requires at least [`ObsLevel::Digest`]).
    pub fn add_sink(&self, sink: Box<dyn ObsSink>) {
        if let Some(b) = &self.0 {
            let mut inner = b.borrow_mut();
            // Replay already-registered resources so late-attached sinks
            // know every label.
            let labels: Vec<String> = inner.recorder.resources.clone();
            let mut sink = sink;
            for (ix, l) in labels.iter().enumerate() {
                sink.on_resource(ix as u32, l);
            }
            inner.sinks.push(sink);
        }
    }

    /// Number of attached live sinks.
    pub fn sink_count(&self) -> usize {
        self.0.as_ref().map_or(0, |b| b.borrow().sinks.len())
    }

    /// Set the sim-time metric-tick interval (nanoseconds; clamped to
    /// ≥ 1). Ticks fire on aligned bucket boundaries, at most once per
    /// bucket — the deterministic throttle that keeps live consumption
    /// from scaling with event density.
    pub fn set_tick_interval(&self, nanos: u64) {
        if let Some(b) = &self.0 {
            b.borrow_mut().tick_interval = nanos.max(1);
        }
    }

    /// Advance the bus clock. Called by the simulation loop only. Fires
    /// a throttled metric tick when the clock crosses a tick boundary.
    #[inline]
    pub fn set_now(&self, t_nanos: u64) {
        if let Some(b) = &self.0 {
            let mut inner = b.borrow_mut();
            inner.now = t_nanos;
            inner.maybe_tick(t_nanos);
        }
    }

    /// Emit one event, stamped with the current bus clock.
    #[inline]
    pub fn emit(&self, ev: Event) {
        if let Some(b) = &self.0 {
            b.borrow_mut().record(ev);
        }
    }

    /// Register a resource label; call order defines resource indices and
    /// must match the emitter's `FlowRes::resource` numbering.
    pub fn register_resource(&self, label: &str) {
        if let Some(b) = &self.0 {
            let mut inner = b.borrow_mut();
            let ix = inner.recorder.resources.len() as u32;
            inner.recorder.on_resource(ix, label);
            // Split borrow: resources was just pushed, label lives there.
            let label = inner.recorder.resources[ix as usize].clone();
            for s in &mut inner.sinks {
                s.on_resource(ix, &label);
            }
        }
    }

    /// The digest so far, if the bus is live.
    pub fn digest(&self) -> Option<u64> {
        self.0.as_ref().map(|b| b.borrow().digest.value())
    }

    /// Number of events absorbed so far (digested, not just recorded).
    pub fn event_count(&self) -> u64 {
        self.0.as_ref().map_or(0, |b| b.borrow().digest.count())
    }

    /// End-of-run sink flush: fire one final metric tick at the current
    /// clock — unless a tick already fired at exactly this instant *and*
    /// no event landed since — then `on_flush` every sink. Does not touch
    /// the digest, the recorder or the metrics — flushing is invisible to
    /// the replay contract.
    pub fn flush_sinks(&self) {
        if let Some(b) = &self.0 {
            let mut inner = b.borrow_mut();
            if inner.sinks.is_empty() {
                return;
            }
            let t = inner.now;
            if inner.last_tick != Some(t) || inner.events_since_tick {
                inner.fire_tick(t);
            }
            for s in &mut inner.sinks {
                s.on_flush(t);
            }
        }
    }

    /// Extract the final report, draining the bus. Returns `None` for the
    /// null handle.
    pub fn take_report(&self) -> Option<ObsReport> {
        let b = self.0.as_ref()?;
        let mut inner = b.borrow_mut();
        Some(ObsReport {
            level: inner.level,
            seed: inner.seed,
            events: std::mem::take(&mut inner.recorder.events),
            resources: std::mem::take(&mut inner.recorder.resources),
            metrics: std::mem::take(&mut inner.recorder.metrics),
            digest: inner.digest.value(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn null_handle_is_inert() {
        let h = ObsHandle::disabled();
        assert!(!h.enabled());
        h.set_now(5);
        h.emit(Event::BgDone);
        h.add_sink(Box::new(RingBufferSink::new(4)));
        h.flush_sinks();
        assert_eq!(h.sink_count(), 0);
        assert_eq!(h.digest(), None);
        assert!(h.take_report().is_none());
    }

    #[test]
    fn digest_and_full_levels_agree_on_digest() {
        let mk = |level| {
            let h = ObsHandle::new(level, 42);
            h.set_now(nanos_from_secs(1.5));
            h.emit(Event::TaskReady { task: 0 });
            h.emit(Event::TaskStart {
                task: 0,
                node: 0,
                attempt: 0,
            });
            h.set_now(nanos_from_secs(2.0));
            h.emit(Event::TaskEnd {
                task: 0,
                node: 0,
                attempt: 1,
            });
            h.digest().unwrap()
        };
        assert_eq!(mk(ObsLevel::Digest), mk(ObsLevel::Full));
    }

    #[test]
    fn full_level_records_events_and_metrics() {
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.register_resource("net:w0");
        h.set_now(10);
        h.emit(Event::FlowStart {
            id: 1,
            bytes: 100,
            rate_bits: 1.0f64.to_bits(),
        });
        h.emit(Event::FlowRes { id: 1, resource: 0 });
        h.set_now(20);
        h.emit(Event::FlowEnd { id: 1 });
        let r = h.take_report().unwrap();
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.metrics.counter("flows_started"), 1);
        assert_eq!(r.metrics.counter("flows_finished"), 1);
        assert_eq!(r.metrics.counter("flow_bytes"), 100);
        assert_eq!(
            r.metrics.series("inflight_flows.net:w0").unwrap(),
            &[(10, 1.0), (20, 0.0)]
        );
    }

    #[test]
    fn digest_level_records_nothing_but_digest() {
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.emit(Event::BgDone);
        let r = h.take_report().unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.metrics.counter("bg_done"), 0);
        assert_eq!(h.event_count(), 1, "the event was still digested");
        assert_ne!(r.digest, 0);
    }

    /// A sink sharing its observations with the test through an `Rc`.
    #[derive(Default)]
    struct Shared {
        events: Vec<(u64, Event)>,
        ticks: Vec<u64>,
        resources: Vec<(u32, String)>,
        flushes: u32,
    }
    struct SharedSink(Rc<RefCell<Shared>>);
    impl ObsSink for SharedSink {
        fn on_resource(&mut self, ix: u32, label: &str) {
            self.0.borrow_mut().resources.push((ix, label.to_owned()));
        }
        fn on_event(&mut self, t: u64, ev: &Event) {
            self.0.borrow_mut().events.push((t, *ev));
        }
        fn on_metric_tick(&mut self, t: u64, _m: &Metrics) {
            self.0.borrow_mut().ticks.push(t);
        }
        fn on_flush(&mut self, _t: u64) {
            self.0.borrow_mut().flushes += 1;
        }
    }

    #[test]
    fn sinks_see_every_event_even_at_digest_level() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.add_sink(Box::new(SharedSink(shared.clone())));
        h.set_now(10);
        h.emit(Event::TaskReady { task: 3 });
        h.set_now(20);
        h.emit(Event::BgDone);
        let s = shared.borrow();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0], (10, Event::TaskReady { task: 3 }));
    }

    #[test]
    fn attaching_a_sink_does_not_change_the_digest() {
        let run = |attach: bool| {
            let h = ObsHandle::new(ObsLevel::Full, 9);
            if attach {
                h.add_sink(Box::new(RingBufferSink::new(2)));
            }
            for t in 0..50u64 {
                h.set_now(t * 77_000_000);
                h.emit(Event::TaskReady { task: t as u32 });
            }
            h.flush_sinks();
            h.digest().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn ticks_fire_at_most_once_per_interval() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.set_tick_interval(100);
        h.add_sink(Box::new(SharedSink(shared.clone())));
        // Many clock advances inside the same bucket: one tick each time
        // the clock *crosses* a boundary, regardless of event density.
        for t in [5u64, 7, 12, 99, 101, 103, 150, 420] {
            h.set_now(t);
            h.emit(Event::BgDone);
        }
        // t=5 fires (first boundary at 0 already passed), next at 100;
        // t=101 fires, next at 200; t=420 fires.
        assert_eq!(shared.borrow().ticks, vec![5, 101, 420]);
    }

    #[test]
    fn flush_does_not_retick_when_nothing_new_happened() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.set_tick_interval(100);
        h.add_sink(Box::new(SharedSink(shared.clone())));
        h.set_now(250);
        h.flush_sinks();
        // One tick at 250 (crossing); no events after it, so flush must
        // not re-tick at 250.
        assert_eq!(shared.borrow().ticks, vec![250]);
        assert_eq!(shared.borrow().flushes, 1);
    }

    #[test]
    fn flush_reticks_for_events_after_the_last_tick() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.set_tick_interval(100);
        h.add_sink(Box::new(SharedSink(shared.clone())));
        h.set_now(250); // tick fires here, before the event lands
        h.emit(Event::BgDone);
        h.flush_sinks();
        // The final tick must reflect the trailing event, even at the
        // same instant as the previous tick.
        assert_eq!(shared.borrow().ticks, vec![250, 250]);
        assert_eq!(shared.borrow().flushes, 1);
    }

    #[test]
    fn flush_ticks_when_run_end_missed_the_boundary() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Digest, 1);
        h.set_tick_interval(100);
        h.add_sink(Box::new(SharedSink(shared.clone())));
        h.set_now(50);
        h.emit(Event::BgDone);
        h.set_now(60);
        h.emit(Event::BgDone);
        h.flush_sinks();
        // Tick at 50 (first crossing), none at 60, final tick at 60.
        assert_eq!(shared.borrow().ticks, vec![50, 60]);
    }

    #[test]
    fn late_attached_sink_sees_existing_resources() {
        let shared = Rc::new(RefCell::new(Shared::default()));
        let h = ObsHandle::new(ObsLevel::Full, 1);
        h.register_resource("disk.w0");
        h.register_resource("nic.w0");
        h.add_sink(Box::new(SharedSink(shared.clone())));
        h.register_resource("nic.w1");
        let s = shared.borrow();
        let labels: Vec<&str> = s.resources.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["disk.w0", "nic.w0", "nic.w1"]);
        assert_eq!(s.resources[2].0, 2);
    }
}
