//! Streaming run digest: a 64-bit FNV-1a hash over the canonical event
//! stream, seeded with the run seed.
//!
//! The digest is the one-word answer to "did this run replay
//! byte-identically?". Two runs with the same workflow, configuration and
//! seed must produce the same digest; any divergence in event ordering,
//! payload, or timestamp changes it. Seeding the hash state with the run
//! seed guarantees that different seeds produce different digests even on
//! the (degenerate) workloads whose event streams coincide.

use crate::event::Event;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a 64 hasher over `(time, event)` records.
#[derive(Debug, Clone)]
pub struct RunDigest {
    state: u64,
    count: u64,
}

impl RunDigest {
    /// Start a digest for a run with the given seed.
    pub fn new(seed: u64) -> Self {
        let mut d = RunDigest {
            state: FNV_OFFSET,
            count: 0,
        };
        d.write(&seed.to_le_bytes());
        d
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= u64::from(b);
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Fold one timestamped event into the digest.
    pub fn absorb(&mut self, t_nanos: u64, ev: &Event) {
        self.write(&t_nanos.to_le_bytes());
        ev.encode_into(&mut |b| {
            let mut s = self.state;
            for &byte in b {
                s ^= u64::from(byte);
                s = s.wrapping_mul(FNV_PRIME);
            }
            self.state = s;
        });
        self.count += 1;
    }

    /// Fold arbitrary bytes (for digests over non-`Event` streams, e.g.
    /// the differential oracle's flow-completion records).
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.write(bytes);
        self.count += 1;
    }

    /// Number of records absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The digest value. Folding the record count in at the end makes
    /// truncated streams distinguishable from complete ones.
    pub fn value(&self) -> u64 {
        let mut tail = self.clone();
        tail.write(&self.count.to_le_bytes());
        tail.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_same_digest() {
        let mut a = RunDigest::new(7);
        let mut b = RunDigest::new(7);
        for d in [&mut a, &mut b] {
            d.absorb(10, &Event::TaskReady { task: 0 });
            d.absorb(
                20,
                &Event::TaskStart {
                    task: 0,
                    node: 1,
                    attempt: 0,
                },
            );
        }
        assert_eq!(a.value(), b.value());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn seed_perturbs_digest_of_identical_streams() {
        let mut a = RunDigest::new(7);
        let mut b = RunDigest::new(8);
        for d in [&mut a, &mut b] {
            d.absorb(10, &Event::TaskReady { task: 0 });
        }
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn timestamp_and_payload_perturb_digest() {
        let base = {
            let mut d = RunDigest::new(1);
            d.absorb(10, &Event::TaskReady { task: 0 });
            d.value()
        };
        let late = {
            let mut d = RunDigest::new(1);
            d.absorb(11, &Event::TaskReady { task: 0 });
            d.value()
        };
        let other = {
            let mut d = RunDigest::new(1);
            d.absorb(10, &Event::TaskReady { task: 1 });
            d.value()
        };
        assert_ne!(base, late);
        assert_ne!(base, other);
    }

    #[test]
    fn truncated_stream_differs_from_empty_tail() {
        // One event vs the same event plus nothing folded differently:
        // the trailing count makes prefix streams distinguishable.
        let one = {
            let mut d = RunDigest::new(1);
            d.absorb(0, &Event::BgDone);
            d.value()
        };
        let two = {
            let mut d = RunDigest::new(1);
            d.absorb(0, &Event::BgDone);
            d.absorb(0, &Event::BgDone);
            d.value()
        };
        assert_ne!(one, two);
    }
}
