//! Deterministic metrics registry: counters, gauges, fixed-bucket
//! histograms and per-resource time-series.
//!
//! Everything here is sampled on *event boundaries* — a metric moves only
//! when an [`Event`](crate::event::Event) is emitted, never on wall clock —
//! so two same-seed runs produce byte-identical metric dumps.

use std::collections::BTreeMap;

/// A fixed-bucket histogram. Bucket upper bounds are chosen at
/// construction; values above the last bound land in an overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bound of each bucket, ascending.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total of all observed values (for means).
    pub sum: u64,
    /// Number of observations.
    pub n: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            n: 0,
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        let ix = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[ix] += 1;
        self.sum += v;
        self.n += 1;
    }
}

/// One point of a per-resource time series: simulated time and value.
pub type SeriesPoint = (u64, f64);

/// The metrics registry. All maps are `BTreeMap` so iteration (and hence
/// CSV output) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<String, Vec<SeriesPoint>>,
}

impl Metrics {
    /// Add `by` to a named counter.
    pub fn count(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Set a named gauge.
    pub fn gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Record a value into a named histogram, creating it with the given
    /// bounds on first use.
    pub fn observe(&mut self, name: &'static str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Append a time-series point, skipping exact duplicates of the last
    /// sample (event boundaries often re-sample an unchanged value).
    pub fn sample(&mut self, series: &str, t_nanos: u64, v: f64) {
        let pts = match self.series.get_mut(series) {
            Some(p) => p,
            None => {
                self.series.insert(series.to_owned(), Vec::new());
                self.series.get_mut(series).expect("just inserted")
            }
        };
        if pts.last().is_some_and(|&(lt, lv)| lt == t_nanos && lv == v) {
            return;
        }
        pts.push((t_nanos, v));
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Read a time series.
    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Render the whole registry as CSV: one section per metric family.
    /// Times are seconds with nanosecond precision.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("kind,name,field,value\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},value,{v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},value,{v}\n"));
        }
        for (name, h) in &self.histograms {
            for (i, c) in h.counts.iter().enumerate() {
                let bound = h
                    .bounds
                    .get(i)
                    .map_or_else(|| "+inf".to_owned(), u64::to_string);
                out.push_str(&format!("histogram,{name},le={bound},{c}\n"));
            }
            out.push_str(&format!("histogram,{name},sum,{}\n", h.sum));
            out.push_str(&format!("histogram,{name},count,{}\n", h.n));
        }
        for (name, pts) in &self.series {
            for &(t, v) in pts {
                let secs = t as f64 / 1e9;
                out.push_str(&format!("series,{name},t={secs:.9},{v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(50);
        h.observe(1000);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.n, 4);
        assert_eq!(h.sum, 1065);
    }

    #[test]
    fn series_dedups_identical_consecutive_points() {
        let mut m = Metrics::default();
        m.sample("q", 10, 1.0);
        m.sample("q", 10, 1.0);
        m.sample("q", 20, 1.0);
        m.sample("q", 20, 2.0);
        assert_eq!(m.series("q").unwrap(), &[(10, 1.0), (20, 1.0), (20, 2.0)]);
    }

    #[test]
    fn empty_series_reads_and_renders_as_absent() {
        let m = Metrics::default();
        assert!(m.series("never_sampled").is_none());
        assert_eq!(m.series_names().count(), 0);
        // CSV carries the header only — no phantom series rows.
        assert_eq!(m.to_csv(), "kind,name,field,value\n");
    }

    #[test]
    fn single_sample_series_round_trips() {
        let mut m = Metrics::default();
        m.sample("lonely", 0, 0.0);
        assert_eq!(m.series("lonely").unwrap(), &[(0, 0.0)]);
        assert_eq!(m.series_names().collect::<Vec<_>>(), vec!["lonely"]);
        assert!(m.to_csv().contains("series,lonely,t=0.000000000,0\n"));
    }

    #[test]
    fn final_tick_at_run_end_dedups_only_exact_duplicates() {
        // A run whose last metric tick lands exactly on the final event
        // time: the flush-time re-sample of an unchanged value must not
        // double the last point, but a changed value at the same instant
        // must still be recorded.
        let mut m = Metrics::default();
        let end = 5_000_000_000;
        m.sample("q", 1_000_000_000, 3.0);
        m.sample("q", end, 1.0);
        m.sample("q", end, 1.0); // flush re-sample, unchanged → dropped
        assert_eq!(m.series("q").unwrap(), &[(1_000_000_000, 3.0), (end, 1.0)]);
        m.sample("q", end, 0.0); // same instant, new value → kept
        assert_eq!(
            m.series("q").unwrap(),
            &[(1_000_000_000, 3.0), (end, 1.0), (end, 0.0)]
        );
    }

    #[test]
    fn csv_is_deterministic_and_sectioned() {
        let mut m = Metrics::default();
        m.count("b_counter", 2);
        m.count("a_counter", 1);
        m.gauge("g", 0.5);
        m.observe("h", &[1], 3);
        m.sample("s", 1_500_000_000, 4.0);
        let csv = m.to_csv();
        let a = csv.find("counter,a_counter").unwrap();
        let b = csv.find("counter,b_counter").unwrap();
        assert!(a < b, "counters must be sorted");
        assert!(csv.contains("histogram,h,le=+inf,1"));
        assert!(csv.contains("series,s,t=1.500000000,4"));
        assert_eq!(csv, m.to_csv());
    }
}
