//! `wfobs` — simulation-wide observability.
//!
//! A dependency-free instrumentation layer the rest of the stack emits
//! into: a zero-overhead-when-disabled [event bus](bus::ObsHandle) of
//! typed [events](event::Event), a deterministic [metrics
//! registry](metrics::Metrics), a [Chrome-trace exporter](chrome), an
//! [OTLP/JSON exporter](otlp) with an in-repo conformance
//! [decoder](otlp::decode), a [folded-stack flamegraph
//! exporter](folded), and a [streaming run digest](digest::RunDigest)
//! that turns "did this run replay byte-identically?" into a single
//! `u64` comparison.
//!
//! Design rules (see DESIGN.md § Observability):
//!
//! - **Zero overhead off.** The handle is a nullable `Rc`; with
//!   observability off every emission is one branch.
//! - **Integer ids on the hot path.** Events are `Copy` structs over
//!   `u32`/`u64` ids; names are joined back in by exporters after the run.
//! - **Simulated time only.** The simulation loop stamps the bus clock;
//!   nothing reads wall clock, so metrics and digests are deterministic.
//! - **Digest ⊂ Full.** Both levels absorb the identical event stream
//!   into the digest; `Full` additionally records events and metrics, so
//!   a digest taken while exporting traces matches one taken without.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod chrome;
pub mod digest;
pub mod event;
pub mod folded;
pub mod metrics;
pub mod otlp;
pub mod sink;
pub mod tui;

pub use bus::{nanos_from_secs, ObsHandle, ObsLevel, ObsReport, DEFAULT_TICK_NANOS};
pub use chrome::{chrome_trace, ChromeLabels};
pub use digest::RunDigest;
pub use event::{Event, FaultKind, OpKind, Phase};
pub use folded::folded_storage_stacks;
pub use metrics::{Histogram, Metrics};
pub use otlp::{otlp_metrics, otlp_trace, OtlpLabels, SegmentLabel};
pub use sink::{ObsSink, RingBufferSink};
pub use tui::{
    detect_live_mode, render_frame, term_size_from_env, FrameSink, LiveMode, LiveSink, NodeRate,
    TuiConfig, TuiState,
};
