//! Property tests for workflow transformations: clustering and the
//! interchange format must preserve semantics on arbitrary layered DAGs.

use proptest::prelude::*;
use wfdag::{analysis, cluster_horizontal, from_json, to_json, FileId, Workflow, WorkflowBuilder};

#[derive(Debug, Clone)]
struct GenDag {
    layers: Vec<u8>,
    fanin: u8,
    transformations_per_layer: u8,
}

fn gen_dag() -> impl Strategy<Value = GenDag> {
    (proptest::collection::vec(1u8..8, 1..5), 1u8..4, 1u8..3).prop_map(
        |(layers, fanin, transformations_per_layer)| GenDag {
            layers,
            fanin,
            transformations_per_layer,
        },
    )
}

fn build(dag: &GenDag) -> Workflow {
    let mut b = WorkflowBuilder::new("random");
    let mut prev: Vec<FileId> = Vec::new();
    let mut uid = 7u32;
    for (li, &width) in dag.layers.iter().enumerate() {
        let mut outs = Vec::new();
        for t in 0..width {
            let out = b.file(format!("f{li}_{t}"), 1000 + u64::from(t));
            let mut inputs: Vec<FileId> = (0..dag.fanin)
                .filter_map(|_| {
                    if prev.is_empty() {
                        None
                    } else {
                        uid = uid.wrapping_mul(1664525).wrapping_add(1013904223);
                        Some(prev[(uid as usize) % prev.len()])
                    }
                })
                .collect();
            inputs.sort_unstable();
            inputs.dedup();
            let trans = format!("x{li}_{}", t % dag.transformations_per_layer.max(1));
            let tid = b.task(format!("t{li}_{t}"), trans, 1.5, 1 << 20, inputs, vec![out]);
            b.set_io_ops(tid, 10 + u32::from(t));
            outs.push(out);
        }
        prev = outs;
    }
    b.build().expect("layered DAGs validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering preserves compute totals, file tables, byte classes
    /// and operation counts, and never increases the job count.
    #[test]
    fn clustering_preserves_semantics(dag in gen_dag(), k in 1u32..6) {
        let wf = build(&dag);
        let c = cluster_horizontal(&wf, k);
        let (s0, s1) = (analysis::stats(&wf), analysis::stats(&c));
        prop_assert!((s0.total_cpu_secs - s1.total_cpu_secs).abs() < 1e-9);
        prop_assert_eq!(s0.files, s1.files);
        prop_assert_eq!(s0.input_bytes, s1.input_bytes);
        prop_assert_eq!(s0.output_bytes, s1.output_bytes);
        prop_assert!(c.task_count() <= wf.task_count());
        let ops0: u64 = wf.tasks().iter().map(|t| u64::from(t.io_ops)).sum();
        let ops1: u64 = c.tasks().iter().map(|t| u64::from(t.io_ops)).sum();
        prop_assert_eq!(ops0, ops1, "operation demand is conserved");
        // Critical path can only stay equal or grow (members serialize).
        prop_assert!(
            analysis::critical_path_secs(&c) + 1e-9 >= analysis::critical_path_secs(&wf)
        );
    }

    /// The interchange format round-trips arbitrary layered DAGs exactly.
    #[test]
    fn serialization_round_trips(dag in gen_dag()) {
        let wf = build(&dag);
        let back = from_json(&to_json(&wf)).expect("round trip");
        prop_assert_eq!(wf.task_count(), back.task_count());
        prop_assert_eq!(wf.file_count(), back.file_count());
        prop_assert_eq!(analysis::stats(&wf), analysis::stats(&back));
        for (a, b) in wf.tasks().iter().zip(back.tasks()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(a.io_ops, b.io_ops);
            prop_assert_eq!(&a.inputs, &b.inputs);
            prop_assert_eq!(&a.outputs, &b.outputs);
        }
    }

    /// Clustering then serializing commutes with serializing then
    /// clustering (both paths produce equivalent structure).
    #[test]
    fn clustering_commutes_with_serialization(dag in gen_dag(), k in 1u32..5) {
        let wf = build(&dag);
        let a = to_json(&cluster_horizontal(&wf, k));
        let b = to_json(&cluster_horizontal(&from_json(&to_json(&wf)).unwrap(), k));
        prop_assert_eq!(a, b);
    }
}
