//! Files, tasks and the workflow container.
//!
//! A workflow is the paper's model (§I): a set of tasks linked by data-flow
//! dependencies, communicating exclusively through write-once files. Task A
//! precedes task B iff B consumes a file A produces.

use crate::ids::{FileId, TaskId};
use serde::{Deserialize, Serialize};

/// How a file relates to the workflow as a whole (derived during
/// validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileClass {
    /// No producer task: must be pre-staged to the cluster (§III.C).
    Input,
    /// Produced and consumed within the workflow.
    Intermediate,
    /// Produced but never consumed: a final product of the workflow.
    Output,
}

/// A workflow file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct File {
    /// Logical file name (unique within the workflow).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Derived classification (valid after `Workflow::build`).
    pub class: FileClass,
    /// Producing task, if any (valid after `Workflow::build`).
    pub producer: Option<TaskId>,
    /// Consuming tasks (valid after `Workflow::build`).
    pub consumers: Vec<TaskId>,
}

/// A workflow task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Unique task name, e.g. `mProjectPP_0042`.
    pub name: String,
    /// Transformation (executable) name, e.g. `mProjectPP`; tasks of one
    /// transformation share a service-time profile.
    pub transformation: String,
    /// Pure compute demand in seconds on a reference core (c1.xlarge).
    pub cpu_secs: f64,
    /// Peak resident memory in bytes (drives the memory-aware scheduler).
    pub peak_mem: u64,
    /// Number of POSIX I/O operations the task issues (opens, seeks,
    /// small reads — what a ptrace profiler like wfprof counts). Drives
    /// per-operation server load on storage systems that charge for it
    /// (NFS). Legacy simulation codes with record-oriented I/O have high
    /// counts; streaming tools low ones.
    pub io_ops: u32,
    /// Files read.
    pub inputs: Vec<FileId>,
    /// Files written (each file has exactly one producer).
    pub outputs: Vec<FileId>,
    /// Depth in the DAG: longest chain of predecessors (valid after
    /// `Workflow::build`).
    pub level: u32,
}

impl Task {
    /// Total bytes this task reads.
    pub fn input_bytes(&self, files: &[File]) -> u64 {
        self.inputs.iter().map(|f| files[f.index()].size).sum()
    }

    /// Total bytes this task writes.
    pub fn output_bytes(&self, files: &[File]) -> u64 {
        self.outputs.iter().map(|f| files[f.index()].size).sum()
    }
}

/// Validation failures for a workflow under construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowError {
    /// Two tasks claim to produce the same file (violates write-once).
    MultipleProducers {
        /// The doubly-produced file.
        file: FileId,
        /// First claimed producer.
        first: TaskId,
        /// Second claimed producer.
        second: TaskId,
    },
    /// A task lists the same file as both input and output.
    SelfLoop {
        /// The offending task.
        task: TaskId,
        /// The file read and written by the same task.
        file: FileId,
    },
    /// The data-flow graph contains a cycle.
    Cycle {
        /// A task on the cycle.
        witness: TaskId,
    },
    /// A task references a file id outside the file table.
    DanglingFile {
        /// The offending task.
        task: TaskId,
    },
    /// Duplicate file name.
    DuplicateFileName {
        /// The repeated name.
        name: String,
    },
    /// Duplicate task name.
    DuplicateTaskName {
        /// The repeated name.
        name: String,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::MultipleProducers {
                file,
                first,
                second,
            } => write!(
                f,
                "file {file:?} produced by both {first:?} and {second:?} (write-once violated)"
            ),
            WorkflowError::SelfLoop { task, file } => {
                write!(f, "task {task:?} both reads and writes file {file:?}")
            }
            WorkflowError::Cycle { witness } => {
                write!(f, "dependency cycle through task {witness:?}")
            }
            WorkflowError::DanglingFile { task } => {
                write!(f, "task {task:?} references an unknown file id")
            }
            WorkflowError::DuplicateFileName { name } => write!(f, "duplicate file name {name:?}"),
            WorkflowError::DuplicateTaskName { name } => write!(f, "duplicate task name {name:?}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A validated workflow DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workflow {
    /// Human-readable workflow name (e.g. `montage-8deg`).
    pub name: String,
    files: Vec<File>,
    tasks: Vec<Task>,
    /// Task ids in a topological order.
    topo: Vec<TaskId>,
    /// Per-task direct successor lists.
    children: Vec<Vec<TaskId>>,
    /// Per-task direct predecessor counts (in-degree in the task graph).
    parent_counts: Vec<u32>,
}

impl Workflow {
    /// Files table.
    pub fn files(&self) -> &[File] {
        &self.files
    }

    /// Tasks table.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// A file by id.
    pub fn file(&self, id: FileId) -> &File {
        &self.files[id.index()]
    }

    /// A task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Task ids in topological order.
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Direct successors of a task.
    pub fn children(&self, id: TaskId) -> &[TaskId] {
        &self.children[id.index()]
    }

    /// Number of direct predecessors of a task.
    pub fn parent_count(&self, id: TaskId) -> u32 {
        self.parent_counts[id.index()]
    }

    /// Tasks with no predecessors (runnable immediately).
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.tasks.len() as u32)
            .map(TaskId)
            .filter(|t| self.parent_counts[t.index()] == 0)
            .collect()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Validate and finish a workflow. Fills in derived fields (producers,
    /// consumers, classes, levels, topological order).
    pub fn build(
        name: impl Into<String>,
        mut files: Vec<File>,
        mut tasks: Vec<Task>,
    ) -> Result<Workflow, WorkflowError> {
        use std::collections::HashSet;

        let mut names = HashSet::new();
        for f in &files {
            if !names.insert(f.name.as_str()) {
                return Err(WorkflowError::DuplicateFileName {
                    name: f.name.clone(),
                });
            }
        }
        names.clear();
        for t in &tasks {
            if !names.insert(t.name.as_str()) {
                return Err(WorkflowError::DuplicateTaskName {
                    name: t.name.clone(),
                });
            }
        }
        drop(names);

        // Reset derived state.
        for f in files.iter_mut() {
            f.producer = None;
            f.consumers.clear();
        }

        // Producers, consumers, dangling references, self-loops.
        for (ti, t) in tasks.iter().enumerate() {
            let tid = TaskId(ti as u32);
            for out in &t.outputs {
                let Some(f) = files.get_mut(out.index()) else {
                    return Err(WorkflowError::DanglingFile { task: tid });
                };
                if let Some(first) = f.producer {
                    return Err(WorkflowError::MultipleProducers {
                        file: *out,
                        first,
                        second: tid,
                    });
                }
                f.producer = Some(tid);
            }
            for inp in &t.inputs {
                if inp.index() >= files.len() {
                    return Err(WorkflowError::DanglingFile { task: tid });
                }
                if t.outputs.contains(inp) {
                    return Err(WorkflowError::SelfLoop {
                        task: tid,
                        file: *inp,
                    });
                }
            }
        }
        for (ti, t) in tasks.iter().enumerate() {
            for inp in &t.inputs {
                files[inp.index()].consumers.push(TaskId(ti as u32));
            }
        }

        // Classes.
        for f in files.iter_mut() {
            f.class = match (f.producer.is_some(), !f.consumers.is_empty()) {
                (false, _) => FileClass::Input,
                (true, true) => FileClass::Intermediate,
                (true, false) => FileClass::Output,
            };
        }

        // Task graph edges via files; Kahn's algorithm for topo + levels.
        let n = tasks.len();
        let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut indeg = vec![0u32; n];
        for (ti, t) in tasks.iter().enumerate() {
            let tid = TaskId(ti as u32);
            let mut preds: Vec<TaskId> = t
                .inputs
                .iter()
                .filter_map(|f| files[f.index()].producer)
                .collect();
            preds.sort_unstable();
            preds.dedup();
            indeg[ti] = preds.len() as u32;
            for p in preds {
                children[p.index()].push(tid);
            }
        }
        let parent_counts = indeg.clone();

        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut level = vec![0u32; n];
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for &c in &children[t.index()] {
                level[c.index()] = level[c.index()].max(level[t.index()] + 1);
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            let witness = (0..n as u32)
                .map(TaskId)
                .find(|t| indeg[t.index()] > 0)
                .expect("cycle implies a task with positive in-degree");
            return Err(WorkflowError::Cycle { witness });
        }
        for (ti, t) in tasks.iter_mut().enumerate() {
            t.level = level[ti];
        }

        Ok(Workflow {
            name: name.into(),
            files,
            tasks,
            topo,
            children,
            parent_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;

    fn diamond() -> Workflow {
        // a -> (b, c) -> d through files.
        let mut b = WorkflowBuilder::new("diamond");
        let fin = b.file("in.dat", 100);
        let f1 = b.file("f1.dat", 10);
        let f2 = b.file("f2.dat", 20);
        let fout = b.file("out.dat", 5);
        b.task("a", "gen", 1.0, 0, vec![fin], vec![f1, f2]);
        b.task("b", "lhs", 1.0, 0, vec![f1], vec![]);
        let f3 = b.file("f3.dat", 7);
        b.task("c", "rhs", 1.0, 0, vec![f2], vec![f3]);
        b.task("d", "join", 1.0, 0, vec![f3], vec![fout]);
        b.build().unwrap()
    }

    #[test]
    fn classes_are_derived() {
        let w = diamond();
        assert_eq!(w.file(FileId(0)).class, FileClass::Input);
        assert_eq!(w.file(FileId(1)).class, FileClass::Intermediate);
        assert_eq!(w.file(FileId(3)).class, FileClass::Output);
    }

    #[test]
    fn levels_and_topo() {
        let w = diamond();
        assert_eq!(w.task(TaskId(0)).level, 0);
        assert_eq!(w.task(TaskId(1)).level, 1);
        assert_eq!(w.task(TaskId(2)).level, 1);
        assert_eq!(w.task(TaskId(3)).level, 2);
        assert_eq!(w.topo_order()[0], TaskId(0));
        assert_eq!(w.topo_order().len(), 4);
    }

    #[test]
    fn roots_and_children() {
        let w = diamond();
        assert_eq!(w.roots(), vec![TaskId(0)]);
        assert_eq!(w.children(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(w.parent_count(TaskId(3)), 1);
    }

    #[test]
    fn multiple_producers_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let f = b.file("f", 1);
        b.task("t1", "x", 1.0, 0, vec![], vec![f]);
        b.task("t2", "x", 1.0, 0, vec![], vec![f]);
        assert!(matches!(
            b.build(),
            Err(WorkflowError::MultipleProducers { .. })
        ));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let f = b.file("f", 1);
        b.task("t", "x", 1.0, 0, vec![f], vec![f]);
        assert!(matches!(b.build(), Err(WorkflowError::SelfLoop { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        b.file("f", 1);
        b.file("f", 2);
        assert!(matches!(
            b.build(),
            Err(WorkflowError::DuplicateFileName { .. })
        ));
    }

    #[test]
    fn input_and_output_byte_helpers() {
        let w = diamond();
        let a = w.task(TaskId(0));
        assert_eq!(a.input_bytes(w.files()), 100);
        assert_eq!(a.output_bytes(w.files()), 30);
    }
}
