//! Compact identifiers for tasks and files.

use serde::{Deserialize, Serialize};

/// Identifier of a file within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Identifier of a task within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl FileId {
    /// Raw index into the workflow's file table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// Raw index into the workflow's task table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
