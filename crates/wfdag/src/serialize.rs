//! A DAX-like interchange format: stable JSON serialisation of abstract
//! workflows, with validation on load.
//!
//! Pegasus workflows travel as DAX documents; this module provides the
//! equivalent for this library — a versioned, minimal JSON document that
//! round-trips through [`Workflow::build`] so a loaded workflow is always
//! validated (write-once, acyclic, no dangling references).

use crate::builder::WorkflowBuilder;
use crate::model::{Workflow, WorkflowError};
use serde::{Deserialize, Serialize};

/// Current document format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Doc {
    version: u32,
    name: String,
    files: Vec<FileDoc>,
    tasks: Vec<TaskDoc>,
}

#[derive(Debug, Serialize, Deserialize)]
struct FileDoc {
    name: String,
    size: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct TaskDoc {
    name: String,
    transformation: String,
    cpu_secs: f64,
    peak_mem: u64,
    io_ops: u32,
    /// Indices into `files`.
    inputs: Vec<u32>,
    /// Indices into `files`.
    outputs: Vec<u32>,
}

/// Errors when loading a workflow document.
#[derive(Debug)]
pub enum LoadError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// The document version is not supported.
    Version {
        /// Version found in the document.
        found: u32,
    },
    /// The workflow failed validation.
    Invalid(WorkflowError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Json(e) => write!(f, "malformed workflow document: {e}"),
            LoadError::Version { found } => {
                write!(
                    f,
                    "unsupported document version {found} (expected {FORMAT_VERSION})"
                )
            }
            LoadError::Invalid(e) => write!(f, "invalid workflow: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialise a workflow to the interchange JSON.
pub fn to_json(wf: &Workflow) -> String {
    let doc = Doc {
        version: FORMAT_VERSION,
        name: wf.name.clone(),
        files: wf
            .files()
            .iter()
            .map(|f| FileDoc {
                name: f.name.clone(),
                size: f.size,
            })
            .collect(),
        tasks: wf
            .tasks()
            .iter()
            .map(|t| TaskDoc {
                name: t.name.clone(),
                transformation: t.transformation.clone(),
                cpu_secs: t.cpu_secs,
                peak_mem: t.peak_mem,
                io_ops: t.io_ops,
                inputs: t.inputs.iter().map(|f| f.0).collect(),
                outputs: t.outputs.iter().map(|f| f.0).collect(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("workflow documents always serialise")
}

/// Load and validate a workflow from the interchange JSON.
pub fn from_json(json: &str) -> Result<Workflow, LoadError> {
    let doc: Doc = serde_json::from_str(json).map_err(LoadError::Json)?;
    if doc.version != FORMAT_VERSION {
        return Err(LoadError::Version { found: doc.version });
    }
    let mut b = WorkflowBuilder::new(doc.name);
    for f in &doc.files {
        b.file(f.name.clone(), f.size);
    }
    let nfiles = doc.files.len() as u32;
    for t in doc.tasks {
        // Out-of-range indices surface as DanglingFile through build();
        // map them eagerly so the error names the right task.
        let to_ids = |ixs: &[u32]| {
            ixs.iter()
                .map(|&i| crate::ids::FileId(i.min(nfiles))) // clamp to an invalid id
                .collect::<Vec<_>>()
        };
        let tid = b.task(
            t.name,
            t.transformation,
            t.cpu_secs,
            t.peak_mem,
            to_ids(&t.inputs),
            to_ids(&t.outputs),
        );
        b.set_io_ops(tid, t.io_ops);
    }
    b.build().map_err(LoadError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new("sample");
        let a = b.file("a", 100);
        let c = b.file("c", 50);
        let t = b.task("t0", "gen", 1.5, 1 << 20, vec![a], vec![c]);
        b.set_io_ops(t, 77);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let wf = sample();
        let json = to_json(&wf);
        let back = from_json(&json).unwrap();
        assert_eq!(back.name, wf.name);
        assert_eq!(back.file_count(), wf.file_count());
        assert_eq!(back.task_count(), wf.task_count());
        let (t0, t1) = (&wf.tasks()[0], &back.tasks()[0]);
        assert_eq!(t0.cpu_secs.to_bits(), t1.cpu_secs.to_bits());
        assert_eq!(t0.io_ops, t1.io_ops);
        assert_eq!(t0.peak_mem, t1.peak_mem);
        assert_eq!(analysis::stats(&wf), analysis::stats(&back));
    }

    #[test]
    fn paper_scale_round_trip() {
        // A structurally rich DAG survives the trip intact.
        let mut b = WorkflowBuilder::new("layered");
        let mut prev = Vec::new();
        for l in 0..4 {
            let mut next = Vec::new();
            for i in 0..5 {
                let f = b.file(format!("f{l}_{i}"), 1000 + i);
                b.task(
                    format!("t{l}_{i}"),
                    format!("x{l}"),
                    1.0,
                    1 << 20,
                    prev.clone(),
                    vec![f],
                );
                next.push(f);
            }
            prev = next;
        }
        let wf = b.build().unwrap();
        let back = from_json(&to_json(&wf)).unwrap();
        assert_eq!(back.topo_order().len(), wf.topo_order().len());
        for (x, y) in wf.tasks().iter().zip(back.tasks()) {
            assert_eq!(x.level, y.level);
            assert_eq!(x.inputs, y.inputs);
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let json = to_json(&sample()).replace("\"version\": 1", "\"version\": 99");
        assert!(matches!(
            from_json(&json),
            Err(LoadError::Version { found: 99 })
        ));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(from_json("{nope"), Err(LoadError::Json(_))));
    }

    #[test]
    fn rejects_invalid_workflows() {
        // Two tasks producing the same file index.
        let json = r#"{
            "version": 1, "name": "bad",
            "files": [{"name": "f", "size": 1}],
            "tasks": [
                {"name": "a", "transformation": "x", "cpu_secs": 1.0, "peak_mem": 0, "io_ops": 1, "inputs": [], "outputs": [0]},
                {"name": "b", "transformation": "x", "cpu_secs": 1.0, "peak_mem": 0, "io_ops": 1, "inputs": [], "outputs": [0]}
            ]
        }"#;
        assert!(matches!(from_json(json), Err(LoadError::Invalid(_))));
    }

    #[test]
    fn rejects_dangling_file_indices() {
        let json = r#"{
            "version": 1, "name": "bad",
            "files": [{"name": "f", "size": 1}],
            "tasks": [
                {"name": "a", "transformation": "x", "cpu_secs": 1.0, "peak_mem": 0, "io_ops": 1, "inputs": [5], "outputs": []}
            ]
        }"#;
        assert!(matches!(from_json(json), Err(LoadError::Invalid(_))));
    }
}
