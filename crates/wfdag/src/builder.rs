//! Incremental workflow construction.

use crate::ids::{FileId, TaskId};
use crate::model::{File, FileClass, Task, Workflow, WorkflowError};

/// Builds a [`Workflow`] one file/task at a time, then validates.
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    files: Vec<File>,
    tasks: Vec<Task>,
}

impl WorkflowBuilder {
    /// Start a workflow named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            files: Vec::new(),
            tasks: Vec::new(),
        }
    }

    /// Declare a file of `size` bytes. Classification (input, intermediate,
    /// output) is derived at build time from who produces/consumes it.
    pub fn file(&mut self, name: impl Into<String>, size: u64) -> FileId {
        let id = FileId(u32::try_from(self.files.len()).expect("file count fits u32"));
        self.files.push(File {
            name: name.into(),
            size,
            class: FileClass::Input,
            producer: None,
            consumers: Vec::new(),
        });
        id
    }

    /// Declare a task.
    ///
    /// `cpu_secs` is pure compute demand on a reference core; `peak_mem`
    /// the peak RSS in bytes; `inputs`/`outputs` the files read/written.
    pub fn task(
        &mut self,
        name: impl Into<String>,
        transformation: impl Into<String>,
        cpu_secs: f64,
        peak_mem: u64,
        inputs: Vec<FileId>,
        outputs: Vec<FileId>,
    ) -> TaskId {
        assert!(
            cpu_secs.is_finite() && cpu_secs >= 0.0,
            "cpu_secs must be non-negative"
        );
        let id = TaskId(u32::try_from(self.tasks.len()).expect("task count fits u32"));
        // Default operation count: a few calls per file touched.
        let io_ops = 4 * (inputs.len() + outputs.len()) as u32 + 4;
        self.tasks.push(Task {
            name: name.into(),
            transformation: transformation.into(),
            cpu_secs,
            peak_mem,
            inputs,
            outputs,
            level: 0,
            io_ops,
        });
        id
    }

    /// Override the POSIX-operation count of a declared task (see
    /// [`crate::model::Task::io_ops`]).
    pub fn set_io_ops(&mut self, task: TaskId, io_ops: u32) {
        self.tasks[task.index()].io_ops = io_ops;
    }

    /// Number of files declared so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of tasks declared so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validate and produce the immutable workflow.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        Workflow::build(self.name, self.files, self.tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut b = WorkflowBuilder::new("w");
        let f = b.file("f", 1);
        b.task("t", "x", 1.0, 0, vec![], vec![f]);
        assert_eq!(b.file_count(), 1);
        assert_eq!(b.task_count(), 1);
        let w = b.build().unwrap();
        assert_eq!(w.name, "w");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cpu_rejected() {
        let mut b = WorkflowBuilder::new("w");
        b.task("t", "x", -1.0, 0, vec![], vec![]);
    }
}
