//! Horizontal task clustering, Pegasus-style.
//!
//! The standard mitigation for workflows with huge numbers of short tasks
//! (like Montage's 6,171 mDiffFit jobs) is to bundle same-level tasks of
//! the same transformation into *clustered jobs*: one scheduler dispatch,
//! one stage-in, shared inputs fetched once. Pegasus calls this
//! horizontal clustering; it directly attacks the per-job overheads that
//! §V shows dominating S3 and NFS for Montage.
//!
//! Clustering is safe for same-level tasks because a data dependency
//! always increases the level, so no two tasks on one level depend on
//! each other.

use crate::builder::WorkflowBuilder;
use crate::ids::{FileId, TaskId};
use crate::model::Workflow;
use std::collections::BTreeMap;

/// Bundle same-(level, transformation) tasks into clusters of at most
/// `max_cluster_size` tasks. Returns a new, revalidated workflow.
///
/// The clustered job's compute demand is the sum of its members', its
/// peak memory the members' maximum (members run sequentially inside the
/// cluster), its operation count the sum, and its input set the union —
/// with duplicates removed, which is one of clustering's real wins.
pub fn cluster_horizontal(wf: &Workflow, max_cluster_size: u32) -> Workflow {
    assert!(max_cluster_size >= 1, "cluster size must be at least 1");
    if max_cluster_size == 1 {
        return wf.clone();
    }

    // Group task ids by (level, transformation), deterministically.
    let mut groups: BTreeMap<(u32, String), Vec<TaskId>> = BTreeMap::new();
    for (i, t) in wf.tasks().iter().enumerate() {
        groups
            .entry((t.level, t.transformation.clone()))
            .or_default()
            .push(TaskId(i as u32));
    }

    let mut b = WorkflowBuilder::new(format!("{}-clustered{}", wf.name, max_cluster_size));
    // Files carry over 1:1 (ids are preserved because insertion order is
    // preserved).
    for f in wf.files() {
        b.file(f.name.clone(), f.size);
    }

    for ((level, transformation), members) in groups {
        for (ci, chunk) in members.chunks(max_cluster_size as usize).enumerate() {
            let mut inputs: Vec<FileId> = Vec::new();
            let mut outputs: Vec<FileId> = Vec::new();
            let mut cpu = 0.0;
            let mut mem = 0u64;
            let mut ops = 0u32;
            for &tid in chunk {
                let t = wf.task(tid);
                inputs.extend(&t.inputs);
                outputs.extend(&t.outputs);
                cpu += t.cpu_secs;
                mem = mem.max(t.peak_mem);
                ops = ops.saturating_add(t.io_ops);
            }
            inputs.sort_unstable();
            inputs.dedup();
            outputs.sort_unstable();
            outputs.dedup();
            let name = if chunk.len() == 1 {
                wf.task(chunk[0]).name.clone()
            } else {
                format!("cluster_{transformation}_l{level}_{ci}")
            };
            let tid = b.task(name, transformation.clone(), cpu, mem, inputs, outputs);
            b.set_io_ops(tid, ops);
        }
    }

    b.build().expect("clustering preserves acyclicity")
}

/// How much clustering shrank the job count: (before, after).
pub fn job_counts(original: &Workflow, clustered: &Workflow) -> (usize, usize) {
    (original.task_count(), clustered.task_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    fn fan(width: u32) -> Workflow {
        let mut b = WorkflowBuilder::new("fan");
        let seed = b.file("seed", 1_000_000);
        b.task("src", "gen", 1.0, 64 << 20, vec![], vec![seed]);
        let mut outs = Vec::new();
        for i in 0..width {
            let o = b.file(format!("o{i}"), 1000);
            b.task(format!("w{i}"), "work", 2.0, 128 << 20, vec![seed], vec![o]);
            outs.push(o);
        }
        let fin = b.file("final", 500);
        b.task("join", "join", 1.0, 64 << 20, outs, vec![fin]);
        b.build().unwrap()
    }

    #[test]
    fn clusters_same_level_same_transformation() {
        let wf = fan(16);
        let c = cluster_horizontal(&wf, 4);
        // 16 workers -> 4 clusters; src and join untouched.
        assert_eq!(c.task_count(), 1 + 4 + 1);
        let (before, after) = job_counts(&wf, &c);
        assert_eq!((before, after), (18, 6));
    }

    #[test]
    fn cluster_aggregates_demands() {
        let wf = fan(8);
        let c = cluster_horizontal(&wf, 8);
        let cluster = c
            .tasks()
            .iter()
            .find(|t| t.name.starts_with("cluster_work"))
            .expect("one big cluster");
        assert!((cluster.cpu_secs - 16.0).abs() < 1e-9, "summed cpu");
        assert_eq!(cluster.peak_mem, 128 << 20, "max memory");
        // The shared seed input is deduplicated to one read.
        assert_eq!(cluster.inputs.len(), 1);
        assert_eq!(cluster.outputs.len(), 8);
    }

    #[test]
    fn clustering_preserves_totals_and_dependencies() {
        let wf = fan(12);
        let c = cluster_horizontal(&wf, 5);
        let (s0, s1) = (analysis::stats(&wf), analysis::stats(&c));
        assert!((s0.total_cpu_secs - s1.total_cpu_secs).abs() < 1e-9);
        assert_eq!(s0.files, s1.files);
        assert_eq!(s0.output_bytes, s1.output_bytes);
        // The join must still depend on every cluster.
        let join = c.tasks().iter().position(|t| t.name == "join").unwrap();
        assert_eq!(
            c.parent_count(crate::ids::TaskId(join as u32)),
            3,
            "12/5 -> 3 clusters"
        );
        // Level structure is intact (3 levels).
        assert_eq!(analysis::level_histogram(&c).len(), 3);
    }

    #[test]
    fn cluster_size_one_is_identity() {
        let wf = fan(4);
        let c = cluster_horizontal(&wf, 1);
        assert_eq!(c.task_count(), wf.task_count());
    }

    #[test]
    fn oversized_cluster_size_is_fine() {
        let wf = fan(4);
        let c = cluster_horizontal(&wf, 1000);
        assert_eq!(c.task_count(), 3, "src + one cluster + join");
    }
}
