//! Workflow analysis: aggregate statistics and critical-path bounds.

use crate::ids::TaskId;
use crate::model::{FileClass, Workflow};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a workflow, in the units the paper reports
/// (§II: task counts, input/output volume, file counts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowStats {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of distinct files.
    pub files: usize,
    /// Bytes of workflow input (files with no producer).
    pub input_bytes: u64,
    /// Bytes of final output (files never consumed).
    pub output_bytes: u64,
    /// Bytes of intermediate (temporary) data.
    pub intermediate_bytes: u64,
    /// Total bytes read across all tasks (reuse counted every time).
    pub bytes_read: u64,
    /// Total bytes written across all tasks.
    pub bytes_written: u64,
    /// Total file accesses (each input or output reference counts once).
    pub file_accesses: usize,
    /// Sum of task compute demand, in reference-core seconds.
    pub total_cpu_secs: f64,
    /// Number of DAG levels.
    pub levels: u32,
    /// Largest number of tasks on one level (a parallelism upper bound).
    pub max_level_width: usize,
}

/// Compute [`WorkflowStats`].
pub fn stats(w: &Workflow) -> WorkflowStats {
    let mut s = WorkflowStats {
        tasks: w.task_count(),
        files: w.file_count(),
        input_bytes: 0,
        output_bytes: 0,
        intermediate_bytes: 0,
        bytes_read: 0,
        bytes_written: 0,
        file_accesses: 0,
        total_cpu_secs: 0.0,
        levels: 0,
        max_level_width: 0,
    };
    for f in w.files() {
        match f.class {
            FileClass::Input => s.input_bytes += f.size,
            FileClass::Output => s.output_bytes += f.size,
            FileClass::Intermediate => s.intermediate_bytes += f.size,
        }
    }
    for t in w.tasks() {
        s.bytes_read += t.input_bytes(w.files());
        s.bytes_written += t.output_bytes(w.files());
        s.file_accesses += t.inputs.len() + t.outputs.len();
        s.total_cpu_secs += t.cpu_secs;
    }
    let hist = level_histogram(w);
    s.levels = hist.len() as u32;
    s.max_level_width = hist.iter().copied().max().unwrap_or(0);
    s
}

/// Tasks per DAG level.
pub fn level_histogram(w: &Workflow) -> Vec<usize> {
    let mut hist = Vec::new();
    for t in w.tasks() {
        let l = t.level as usize;
        if hist.len() <= l {
            hist.resize(l + 1, 0);
        }
        hist[l] += 1;
    }
    hist
}

/// Length of the compute-only critical path in reference-core seconds: a
/// lower bound on makespan with unlimited resources and free I/O.
pub fn critical_path_secs(w: &Workflow) -> f64 {
    let n = w.task_count();
    let mut finish = vec![0.0f64; n];
    for &tid in w.topo_order() {
        let t = w.task(tid);
        let start = t
            .inputs
            .iter()
            .filter_map(|f| w.file(*f).producer)
            .map(|p: TaskId| finish[p.index()])
            .fold(0.0f64, f64::max);
        finish[tid.index()] = start + t.cpu_secs;
    }
    finish.iter().copied().fold(0.0, f64::max)
}

/// Sum of compute demand divided by the critical path: the maximum useful
/// core count (average parallelism).
pub fn average_parallelism(w: &Workflow) -> f64 {
    let cp = critical_path_secs(w);
    if cp <= 0.0 {
        return 0.0;
    }
    stats(w).total_cpu_secs / cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkflowBuilder;

    fn chain_of(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let out = b.file(format!("f{i}"), 10);
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            b.task(format!("t{i}"), "step", 2.0, 0, inputs, vec![out]);
            prev = Some(out);
        }
        b.build().unwrap()
    }

    fn fan(width: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("fan");
        let seed = b.file("seed", 100);
        b.task("src", "gen", 1.0, 0, vec![], vec![seed]);
        for i in 0..width {
            let out = b.file(format!("o{i}"), 10);
            b.task(format!("w{i}"), "work", 3.0, 0, vec![seed], vec![out]);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_critical_path_is_sum() {
        let w = chain_of(5);
        assert!((critical_path_secs(&w) - 10.0).abs() < 1e-9);
        assert!((average_parallelism(&w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fan_critical_path_is_two_stages() {
        let w = fan(10);
        assert!((critical_path_secs(&w) - 4.0).abs() < 1e-9);
        let ap = average_parallelism(&w);
        assert!((ap - 31.0 / 4.0).abs() < 1e-9, "{ap}");
    }

    #[test]
    fn stats_classify_bytes() {
        let w = fan(4);
        let s = stats(&w);
        assert_eq!(s.tasks, 5);
        assert_eq!(s.input_bytes, 0);
        assert_eq!(s.intermediate_bytes, 100);
        assert_eq!(s.output_bytes, 40);
        // seed read 4 times.
        assert_eq!(s.bytes_read, 400);
        assert_eq!(s.bytes_written, 140);
        assert_eq!(s.levels, 2);
        assert_eq!(s.max_level_width, 4);
    }

    #[test]
    fn level_histogram_of_chain() {
        let w = chain_of(3);
        assert_eq!(level_histogram(&w), vec![1, 1, 1]);
    }

    #[test]
    fn file_access_count() {
        let w = fan(4);
        // src: 0 in + 1 out; workers: 1 in + 1 out each.
        assert_eq!(stats(&w).file_accesses, 1 + 4 * 2);
    }
}
