//! # wfdag — the scientific-workflow DAG model
//!
//! Workflows in the paper (§I) are loosely-coupled parallel applications:
//! tasks communicate exclusively through write-once files, and task A
//! precedes task B iff B consumes a file A produces.
//!
//! * [`builder::WorkflowBuilder`] — declare files and tasks incrementally.
//! * [`model::Workflow`] — the validated DAG: producers, consumers, file
//!   classes, levels, topological order. Validation rejects write-once
//!   violations, self-loops and cycles.
//! * [`analysis`] — aggregate statistics (§II's table of task counts and
//!   data volumes), critical paths, parallelism bounds.
//! * [`clustering`] — Pegasus-style horizontal task clustering.
//! * [`serialize`] — a DAX-like JSON interchange format with validation
//!   on load.
//!
//! ```
//! use wfdag::{WorkflowBuilder, critical_path_secs};
//!
//! let mut b = WorkflowBuilder::new("demo");
//! let raw = b.file("raw.dat", 1_000_000);
//! let out = b.file("out.dat", 1_000);
//! b.task("produce", "gen", 2.0, 0, vec![], vec![raw]);
//! b.task("consume", "use", 3.0, 0, vec![raw], vec![out]);
//! let wf = b.build().unwrap();
//! assert_eq!(wf.task_count(), 2);
//! assert_eq!(critical_path_secs(&wf), 5.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod clustering;
pub mod ids;
pub mod model;
pub mod serialize;

pub use analysis::{
    average_parallelism, critical_path_secs, level_histogram, stats, WorkflowStats,
};
pub use builder::WorkflowBuilder;
pub use clustering::cluster_horizontal;
pub use ids::{FileId, TaskId};
pub use model::{File, FileClass, Task, Workflow, WorkflowError};
pub use serialize::{from_json, to_json, LoadError};
