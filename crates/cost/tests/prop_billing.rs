//! Property tests for the billing model.

use proptest::prelude::*;
use vcluster::InstanceType;
use wfcost::{BillingGranularity, CostModel, UsageReport};

fn any_instance() -> impl Strategy<Value = InstanceType> {
    prop_oneof![
        Just(InstanceType::C1Xlarge),
        Just(InstanceType::M1Xlarge),
        Just(InstanceType::M24Xlarge),
        Just(InstanceType::M1Small),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Per-second billing never exceeds per-hour billing, and per-hour is
    /// within one hourly rate of per-second (the rounding bound).
    #[test]
    fn hour_rounding_bounds(itype in any_instance(), secs in 1.0f64..200_000.0) {
        let m = CostModel::default();
        let ps = m.instance_cents(itype, secs, BillingGranularity::PerSecond);
        let ph = m.instance_cents(itype, secs, BillingGranularity::PerHour);
        let hourly = f64::from(itype.price_cents_per_hour());
        prop_assert!(ps <= ph + 1e-9);
        prop_assert!(ph <= ps + hourly + 1e-9, "rounding up costs at most one hour");
    }

    /// Billing is monotone in wall time under both granularities.
    #[test]
    fn monotone_in_time(itype in any_instance(), a in 1.0f64..100_000.0, b in 1.0f64..100_000.0) {
        let m = CostModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for g in BillingGranularity::BOTH {
            prop_assert!(m.instance_cents(itype, lo, g) <= m.instance_cents(itype, hi, g) + 1e-9);
        }
    }

    /// Workflow cost is additive over instances.
    #[test]
    fn additive_over_instances(secs in 1.0f64..50_000.0, w in 1u32..16) {
        let m = CostModel::default();
        let single = UsageReport {
            wall_secs: secs,
            instances: vec![(InstanceType::C1Xlarge, 1)],
            s3_puts: 0,
            s3_gets: 0,
            s3_peak_bytes: 0,
        };
        let many = UsageReport {
            instances: vec![(InstanceType::C1Xlarge, w)],
            ..single.clone()
        };
        for g in BillingGranularity::BOTH {
            let one = m.workflow_cost(&single, g).total_cents();
            let lots = m.workflow_cost(&many, g).total_cents();
            prop_assert!((lots - one * f64::from(w)).abs() < 1e-6);
        }
    }

    /// Request fees are linear and non-negative.
    #[test]
    fn request_fees_linear(puts in 0u64..10_000_000, gets in 0u64..10_000_000) {
        let m = CostModel::default();
        let c = m.request_cents(puts, gets);
        prop_assert!(c >= 0.0);
        let doubled = m.request_cents(puts * 2, gets * 2);
        prop_assert!((doubled - 2.0 * c).abs() < 1e-6);
    }

    /// WAN staging time decomposes into bandwidth and handshake terms.
    #[test]
    fn staging_decomposes(bytes in 0u64..100_000_000_000u64, files in 0u64..100_000) {
        use wfcost::transfer::{stage_in, TransferPricing, WanLink};
        let link = WanLink::default();
        let p = TransferPricing::default();
        let e = stage_in(bytes, files, &link, &p);
        let expect = bytes as f64 / link.bandwidth_bps + files as f64 * link.per_file_secs;
        prop_assert!((e.secs - expect).abs() < 1e-9);
        prop_assert!((e.cents - bytes as f64 / 1e9 * 10.0).abs() < 1e-9);
    }
}
