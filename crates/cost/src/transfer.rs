//! Transfers between the submit host and the cloud (experiment E9).
//!
//! §III.C: "Since the focus of this paper is on the storage systems we
//! did not perform or measure data transfers to/from the cloud", deferring
//! to the authors' earlier study. This module supplies that missing edge
//! so end-to-end cost/time can be reported: a WAN link model between the
//! submit host and EC2, plus Amazon's 2010 transfer prices ($0.10/GB in,
//! $0.17/GB out; transfers within EC2 are free).

use serde::{Deserialize, Serialize};

/// Amazon's 2010 internet-transfer price schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPricing {
    /// Cents per GB into EC2/S3.
    pub in_cents_per_gb: f64,
    /// Cents per GB out of EC2/S3.
    pub out_cents_per_gb: f64,
}

impl Default for TransferPricing {
    fn default() -> Self {
        TransferPricing {
            in_cents_per_gb: 10.0,
            out_cents_per_gb: 17.0,
        }
    }
}

/// The WAN link between the submit host and the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WanLink {
    /// Sustained throughput, bytes/s (a well-connected 2010 campus saw
    /// 10–40 MB/s to us-east-1).
    pub bandwidth_bps: f64,
    /// Per-file overhead, seconds (connection setup, GridFTP handshake).
    pub per_file_secs: f64,
}

impl Default for WanLink {
    fn default() -> Self {
        WanLink {
            bandwidth_bps: 20.0e6,
            per_file_secs: 0.5,
        }
    }
}

/// One staging movement (in or out).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagingEstimate {
    /// Bytes moved.
    pub bytes: u64,
    /// Files moved.
    pub files: u64,
    /// Wall time, seconds.
    pub secs: f64,
    /// Transfer charge, cents.
    pub cents: f64,
}

/// Estimate moving `bytes` across `files` into the cloud.
pub fn stage_in(
    bytes: u64,
    files: u64,
    link: &WanLink,
    pricing: &TransferPricing,
) -> StagingEstimate {
    estimate(bytes, files, link, pricing.in_cents_per_gb)
}

/// Estimate moving `bytes` across `files` out of the cloud.
pub fn stage_out(
    bytes: u64,
    files: u64,
    link: &WanLink,
    pricing: &TransferPricing,
) -> StagingEstimate {
    estimate(bytes, files, link, pricing.out_cents_per_gb)
}

fn estimate(bytes: u64, files: u64, link: &WanLink, cents_per_gb: f64) -> StagingEstimate {
    StagingEstimate {
        bytes,
        files,
        secs: bytes as f64 / link.bandwidth_bps + files as f64 * link.per_file_secs,
        cents: bytes as f64 / 1e9 * cents_per_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn montage_scale_staging_matches_hand_arithmetic() {
        // 4.2 GB in over 2102 files at 20 MB/s + 0.5 s/file.
        let link = WanLink::default();
        let p = TransferPricing::default();
        let e = stage_in(4_200_000_000, 2102, &link, &p);
        assert!((e.secs - (210.0 + 1051.0)).abs() < 1.0, "{}", e.secs);
        assert!((e.cents - 42.0).abs() < 0.1, "{}", e.cents);
    }

    #[test]
    fn outbound_is_pricier_per_gb() {
        let link = WanLink::default();
        let p = TransferPricing::default();
        let i = stage_in(1_000_000_000, 1, &link, &p);
        let o = stage_out(1_000_000_000, 1, &link, &p);
        assert!(o.cents > i.cents);
        assert!((o.secs - i.secs).abs() < 1e-9, "same link both ways");
    }

    #[test]
    fn per_file_overhead_dominates_many_small_files() {
        let link = WanLink::default();
        let p = TransferPricing::default();
        let few_big = stage_in(1_000_000_000, 10, &link, &p);
        let many_small = stage_in(1_000_000_000, 10_000, &link, &p);
        assert!(many_small.secs > few_big.secs * 10.0);
        assert!(
            (many_small.cents - few_big.cents).abs() < 1e-9,
            "cost is per byte"
        );
    }

    #[test]
    fn zero_bytes_costs_nothing_but_still_pays_handshakes() {
        let link = WanLink::default();
        let p = TransferPricing::default();
        let e = stage_in(0, 4, &link, &p);
        assert_eq!(e.cents, 0.0);
        assert!((e.secs - 2.0).abs() < 1e-12);
    }
}
