//! # wfcost — the paper's Amazon billing model (§VI)
//!
//! Three cost categories: resource cost (VM instance hours), storage cost
//! (S3 $/GB-month; VM images and input archives are out of scope here as
//! in the paper), and S3 request fees. Two billing granularities:
//!
//! * **per-hour** — what Amazon actually charged in 2010: partial hours
//!   round *up*;
//! * **per-second** — the hourly rate divided by 3600, the hypothetical
//!   the paper uses to show how much of the hour-rounding is waste.
//!
//! 2010 request fees: $0.01 per 1,000 PUTs, $0.01 per 10,000 GETs, $0.15
//! per GB-month of storage; transfers within EC2 are free.
//!
//! ```
//! use wfcost::{BillingGranularity, CostModel};
//! use vcluster::InstanceType;
//!
//! let m = CostModel::default();
//! // A 10-minute run still pays the full hour under 2010 billing.
//! let hour = m.instance_cents(InstanceType::C1Xlarge, 600.0, BillingGranularity::PerHour);
//! let second = m.instance_cents(InstanceType::C1Xlarge, 600.0, BillingGranularity::PerSecond);
//! assert_eq!(hour, 68.0);
//! assert!((second - 68.0 / 6.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod transfer;

use serde::{Deserialize, Serialize};
use vcluster::InstanceType;

/// How VM time is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BillingGranularity {
    /// Amazon's 2010 billing: every started hour costs a full hour.
    PerHour,
    /// Hypothetical exact billing at `hourly / 3600` per second.
    PerSecond,
}

impl BillingGranularity {
    /// Both granularities, in the order of Figs 5–7.
    pub const BOTH: [BillingGranularity; 2] =
        [BillingGranularity::PerHour, BillingGranularity::PerSecond];
}

/// The S3 fee schedule (2010).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct S3Fees {
    /// Cents per 1,000 PUT requests.
    pub put_cents_per_1k: f64,
    /// Cents per 10,000 GET requests.
    pub get_cents_per_10k: f64,
    /// Cents per GB-month of stored data.
    pub storage_cents_per_gb_month: f64,
}

impl Default for S3Fees {
    fn default() -> Self {
        S3Fees {
            put_cents_per_1k: 1.0,
            get_cents_per_10k: 1.0,
            storage_cents_per_gb_month: 15.0,
        }
    }
}

/// The complete cost model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModel {
    /// S3 fee schedule.
    pub s3: S3Fees,
}

/// What a run consumed, for billing purposes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageReport {
    /// Wall-clock seconds every instance was held (the makespan; boot and
    /// data-transfer time are excluded in the paper's accounting, §V).
    pub wall_secs: f64,
    /// Instances held for the run: (type, count).
    pub instances: Vec<(InstanceType, u32)>,
    /// S3 PUT requests (0 unless the S3 storage option is in use).
    pub s3_puts: u64,
    /// S3 GET requests.
    pub s3_gets: u64,
    /// Peak bytes stored in S3.
    pub s3_peak_bytes: u64,
}

/// One continuous interval an instance was held. Fault injection splits a
/// node's lifetime into several segments (crash → replacement); a clean
/// run has exactly one per node spanning the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BilledSegment {
    /// Cluster node id the incarnation belonged to. Not priced — carried
    /// so exporters can attach billing records to the right node span.
    pub node: u32,
    /// The instance type held.
    pub itype: InstanceType,
    /// Seconds from acquisition to release (or termination).
    pub secs: f64,
    /// Whether this incarnation ran on the spot market (billed at the
    /// spot rate; its termination wastes the started hour all the same).
    pub spot: bool,
}

/// A cost breakdown in cents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// VM instance charges.
    pub resource_cents: f64,
    /// S3 request charges.
    pub request_cents: f64,
    /// S3 storage charges (pro-rated by wall time; negligible for the
    /// paper's workloads, and reported as such).
    pub storage_cents: f64,
}

impl CostBreakdown {
    /// Total cents.
    pub fn total_cents(self) -> f64 {
        self.resource_cents + self.request_cents + self.storage_cents
    }

    /// Total dollars.
    pub fn total_dollars(self) -> f64 {
        self.total_cents() / 100.0
    }
}

/// Seconds per billing month used for GB-month pro-rating.
const SECS_PER_MONTH: f64 = 30.0 * 24.0 * 3600.0;

impl CostModel {
    /// Cost of holding one `itype` instance for `wall_secs` under the
    /// given granularity, in cents.
    pub fn instance_cents(
        self,
        itype: InstanceType,
        wall_secs: f64,
        granularity: BillingGranularity,
    ) -> f64 {
        let hourly = f64::from(itype.price_cents_per_hour());
        match granularity {
            BillingGranularity::PerHour => (wall_secs / 3600.0).ceil().max(1.0) * hourly,
            BillingGranularity::PerSecond => wall_secs * hourly / 3600.0,
        }
    }

    /// Instance charges for per-incarnation billing, in cents. Under
    /// per-hour granularity every segment rounds up on its own clock: a
    /// node crash or spot termination forfeits the started hour, and the
    /// replacement instance opens a fresh one — the "wasted partial
    /// hours" cost of faults (§VI's billing model under churn).
    pub fn segments_cents(
        self,
        segments: &[BilledSegment],
        granularity: BillingGranularity,
    ) -> f64 {
        segments
            .iter()
            .map(|s| {
                let hourly = f64::from(if s.spot {
                    s.itype.spot_price_cents_per_hour()
                } else {
                    s.itype.price_cents_per_hour()
                });
                match granularity {
                    BillingGranularity::PerHour => (s.secs / 3600.0).ceil().max(1.0) * hourly,
                    BillingGranularity::PerSecond => s.secs * hourly / 3600.0,
                }
            })
            .sum()
    }

    /// S3 request charges in cents.
    pub fn request_cents(self, puts: u64, gets: u64) -> f64 {
        puts as f64 / 1000.0 * self.s3.put_cents_per_1k
            + gets as f64 / 10_000.0 * self.s3.get_cents_per_10k
    }

    /// S3 storage charges in cents, pro-rated over the run's wall time.
    pub fn storage_cents(self, peak_bytes: u64, wall_secs: f64) -> f64 {
        let gb = peak_bytes as f64 / 1e9;
        gb * self.s3.storage_cents_per_gb_month * (wall_secs / SECS_PER_MONTH)
    }

    /// The full breakdown for a run.
    pub fn workflow_cost(
        self,
        usage: &UsageReport,
        granularity: BillingGranularity,
    ) -> CostBreakdown {
        let resource_cents = usage
            .instances
            .iter()
            .map(|(t, n)| f64::from(*n) * self.instance_cents(*t, usage.wall_secs, granularity))
            .sum();
        CostBreakdown {
            resource_cents,
            request_cents: self.request_cents(usage.s3_puts, usage.s3_gets),
            storage_cents: self.storage_cents(usage.s3_peak_bytes, usage.wall_secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(secs: f64, workers: u32, server: bool) -> UsageReport {
        let mut instances = vec![(InstanceType::C1Xlarge, workers)];
        if server {
            instances.push((InstanceType::M1Xlarge, 1));
        }
        UsageReport {
            wall_secs: secs,
            instances,
            s3_puts: 0,
            s3_gets: 0,
            s3_peak_bytes: 0,
        }
    }

    #[test]
    fn partial_hours_round_up() {
        let m = CostModel::default();
        let c = m.instance_cents(InstanceType::C1Xlarge, 3601.0, BillingGranularity::PerHour);
        assert_eq!(c, 2.0 * 68.0);
        let c1 = m.instance_cents(InstanceType::C1Xlarge, 10.0, BillingGranularity::PerHour);
        assert_eq!(c1, 68.0, "even a 10 s run pays a full hour");
    }

    #[test]
    fn per_second_is_exact() {
        let m = CostModel::default();
        let c = m.instance_cents(
            InstanceType::C1Xlarge,
            1800.0,
            BillingGranularity::PerSecond,
        );
        assert!((c - 34.0).abs() < 1e-9);
    }

    #[test]
    fn per_second_never_exceeds_per_hour() {
        let m = CostModel::default();
        for secs in [1.0, 600.0, 3600.0, 3601.0, 7199.0, 86_400.0] {
            let ps = m.instance_cents(InstanceType::C1Xlarge, secs, BillingGranularity::PerSecond);
            let ph = m.instance_cents(InstanceType::C1Xlarge, secs, BillingGranularity::PerHour);
            assert!(ps <= ph + 1e-9, "{secs}: {ps} > {ph}");
        }
    }

    #[test]
    fn nfs_extra_node_costs_068_per_hour_block() {
        // §VI: "This results in an extra cost of $0.68 per workflow" for
        // runs under an hour.
        let m = CostModel::default();
        let with = m.workflow_cost(&usage(3000.0, 2, true), BillingGranularity::PerHour);
        let without = m.workflow_cost(&usage(3000.0, 2, false), BillingGranularity::PerHour);
        assert!((with.total_cents() - without.total_cents() - 68.0).abs() < 1e-9);
    }

    #[test]
    fn montage_s3_request_surcharge_matches_paper() {
        // §VI: Montage's S3 request fees come to ~$0.28. Montage writes
        // ~14.6k files (PUTs) and GETs a multiple of that.
        let m = CostModel::default();
        let cents = m.request_cents(14_600, 135_000);
        assert!((25.0..32.0).contains(&cents), "{cents} cents");
    }

    #[test]
    fn s3_storage_cost_is_negligible_for_paper_workloads() {
        // §VI: "the storage cost is insignificant (<< $0.01)".
        let m = CostModel::default();
        let cents = m.storage_cents(12_000_000_000, 3600.0);
        assert!(cents < 1.0, "{cents}");
    }

    #[test]
    fn adding_nodes_only_helps_with_superlinear_speedup() {
        // §VI: with uniform per-node cost, cost(2n, t/2) == cost(n, t)
        // under per-second billing — so only superlinear speedup reduces
        // cost.
        let m = CostModel::default();
        let a = m.workflow_cost(&usage(1000.0, 2, false), BillingGranularity::PerSecond);
        let b = m.workflow_cost(&usage(500.0, 4, false), BillingGranularity::PerSecond);
        assert!((a.total_cents() - b.total_cents()).abs() < 1e-9);
    }

    #[test]
    fn terminated_segments_waste_the_started_hour() {
        let m = CostModel::default();
        // A node that ran 30 min, was replaced, and the replacement ran
        // another 30 min: two started hours against one for an unbroken
        // node with the same useful time.
        let churned = [
            BilledSegment {
                node: 0,
                itype: InstanceType::C1Xlarge,
                secs: 1800.0,
                spot: false,
            },
            BilledSegment {
                node: 0,
                itype: InstanceType::C1Xlarge,
                secs: 1800.0,
                spot: false,
            },
        ];
        let unbroken = [BilledSegment {
            node: 0,
            itype: InstanceType::C1Xlarge,
            secs: 3600.0,
            spot: false,
        }];
        let ph = BillingGranularity::PerHour;
        assert_eq!(m.segments_cents(&churned, ph), 2.0 * 68.0);
        assert_eq!(m.segments_cents(&unbroken, ph), 68.0);
        // Per-second billing sees no waste.
        let ps = BillingGranularity::PerSecond;
        assert!((m.segments_cents(&churned, ps) - m.segments_cents(&unbroken, ps)).abs() < 1e-9);
    }

    #[test]
    fn spot_segments_bill_at_the_spot_rate() {
        let m = CostModel::default();
        let seg = |spot| BilledSegment {
            node: 0,
            itype: InstanceType::C1Xlarge,
            secs: 600.0,
            spot,
        };
        let on_demand = m.segments_cents(&[seg(false)], BillingGranularity::PerHour);
        let spot = m.segments_cents(&[seg(true)], BillingGranularity::PerHour);
        assert_eq!(on_demand, 68.0);
        assert_eq!(spot, 26.0);
    }

    #[test]
    fn clean_segments_match_usage_report_billing() {
        // One full-makespan segment per instance must price identically to
        // the aggregate UsageReport path, so fault-free cost figures are
        // unchanged by the segment accounting.
        let m = CostModel::default();
        let secs = 2750.0;
        let segs: Vec<BilledSegment> = (0..4)
            .map(|node| BilledSegment {
                node,
                itype: InstanceType::C1Xlarge,
                secs,
                spot: false,
            })
            .collect();
        for g in BillingGranularity::BOTH {
            let via_segments = m.segments_cents(&segs, g);
            let via_usage = m.workflow_cost(&usage(secs, 4, false), g).resource_cents;
            assert!((via_segments - via_usage).abs() < 1e-9, "{g:?}");
        }
    }

    #[test]
    fn breakdown_totals() {
        let b = CostBreakdown {
            resource_cents: 100.0,
            request_cents: 28.0,
            storage_cents: 0.5,
        };
        assert!((b.total_cents() - 128.5).abs() < 1e-12);
        assert!((b.total_dollars() - 1.285).abs() < 1e-12);
    }
}
