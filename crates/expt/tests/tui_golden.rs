//! Golden-frame tests: pin three rendered TUI frames for a tiny Montage
//! run with a scheduled node crash — a mid-run Gantt, the frame where
//! the fault ticker first shows the crash, and the final frame. The
//! renderer is wall-clock-free, so these are byte-stable across
//! machines; regenerate after an intentional event-stream or layout
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p expt --test tui_golden
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use wfengine::{run_workflow_with_obs, FaultPlan, NodeCrashSpec, RunConfig};
use wfgen::App;
use wfobs::{FrameSink, NodeRate, ObsHandle, ObsLevel, TuiConfig};
use wfstorage::StorageKind;

const COLS: usize = 100;
const ROWS: usize = 24;

fn captured_frames() -> Vec<(u64, String)> {
    let wf = App::Montage.tiny_workflow();
    let mut plan = FaultPlan::zero();
    plan.node_crash = Some(NodeCrashSpec {
        rate_per_hour: 0.0,
        scheduled: vec![(1, 40.0)],
        reprovision: true,
    });
    plan.max_fault_retries = 16;
    let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 3)
        .with_seed(42)
        .with_obs(ObsLevel::Digest);
    cfg.faults = Some(plan);

    let obs = ObsHandle::new(ObsLevel::Digest, cfg.seed);
    obs.set_tick_interval(2_000_000_000); // one frame per 2 simulated seconds
    let frames = Rc::new(RefCell::new(Vec::new()));
    obs.add_sink(Box::new(FrameSink::new(
        TuiConfig {
            title: wf.name.clone(),
            backend: "glusterfs-nufa".to_owned(),
            total_tasks: wf.task_count() as u32,
            task_names: wf.tasks().iter().map(|t| t.name.clone()).collect(),
            node_names: vec!["w0".into(), "w1".into(), "w2".into()],
            // c1.xlarge on-demand/spot rates, so cost-so-far is visible.
            node_rates: vec![
                NodeRate {
                    cents_per_hour: 68,
                    spot_cents_per_hour: 23,
                };
                3
            ],
            window_secs: 60.0,
            ..TuiConfig::default()
        },
        COLS,
        ROWS,
        100_000,
        Rc::clone(&frames),
    )));
    let stats = run_workflow_with_obs(wf, cfg, obs).expect("run succeeds");
    assert!(stats.faults.node_crashes > 0, "the scheduled crash fired");
    let captured = frames.borrow().clone();
    assert!(captured.len() > 10, "enough frames to choose from");
    captured
}

fn check_golden(name: &str, frame: &str) {
    let path = format!(
        "{}/tests/golden_frames/{name}.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, frame).expect("write golden frame");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}; run with UPDATE_GOLDEN=1 to create"));
    assert_eq!(
        frame, want,
        "frame {name} drifted from {path}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_frames_are_stable() {
    let frames = captured_frames();

    // Mid-run: a busy Gantt before the crash lands.
    let mid = &frames[frames.len() / 3].1;
    assert!(mid.contains('#'), "mid frame shows compute cells:\n{mid}");
    check_golden("mid", mid);

    // Fault: the first frame whose ticker shows the node crash.
    let fault = &frames
        .iter()
        .find(|(_, f)| f.contains("node_crash"))
        .expect("a frame captured the crash")
        .1;
    check_golden("fault", fault);

    // Final: the flush-time frame, with every task accounted for.
    let last = &frames.last().expect("nonempty").1;
    assert!(
        last.contains("tasks 66/66"),
        "final frame shows completion:\n{last}"
    );
    check_golden("final", last);
}

#[test]
fn frames_fit_requested_geometry() {
    for (t, frame) in captured_frames() {
        let lines: Vec<&str> = frame.split('\n').collect();
        assert_eq!(lines.len(), ROWS, "rows at t={t}");
        assert!(
            lines.iter().all(|l| l.chars().count() == COLS),
            "cols at t={t}"
        );
    }
}
