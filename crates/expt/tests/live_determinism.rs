//! Metamorphic determinism: attaching a live viewer must be invisible
//! to the run. A run with a `FrameSink` attached (frames rendered
//! headlessly on every sim-time tick, exactly what `wfsim run --live`
//! does minus the terminal writes) produces the identical run digest
//! and byte-identical OTLP exports as the same seed with no sink — the
//! ISSUE 5 acceptance criterion, and the contract that makes `--live`
//! safe to leave on for replay-verified experiments.

use std::cell::RefCell;
use std::rc::Rc;

use wfengine::{run_workflow_with_obs, RunConfig, RunStats};
use wfgen::App;
use wfobs::{FrameSink, ObsHandle, ObsLevel, TuiConfig};
use wfstorage::StorageKind;

const SEED: u64 = 42;
const WORKERS: u32 = 3;
const KIND: StorageKind = StorageKind::GlusterNufa;

fn run(with_sink: bool) -> (RunStats, Vec<(u64, String)>) {
    let wf = App::Montage.tiny_workflow();
    let cfg = RunConfig::cell(KIND, WORKERS)
        .with_seed(SEED)
        .with_obs(ObsLevel::Full);
    let obs = ObsHandle::new(ObsLevel::Full, SEED);
    let frames = Rc::new(RefCell::new(Vec::new()));
    if with_sink {
        obs.set_tick_interval(wfobs::DEFAULT_TICK_NANOS);
        obs.add_sink(Box::new(FrameSink::new(
            TuiConfig {
                title: wf.name.clone(),
                backend: KIND.label().to_owned(),
                total_tasks: wf.task_count() as u32,
                task_names: wf.tasks().iter().map(|t| t.name.clone()).collect(),
                node_names: (0..WORKERS).map(|i| format!("w{i}")).collect(),
                ..TuiConfig::default()
            },
            100,
            30,
            10_000,
            Rc::clone(&frames),
        )));
    }
    let stats = run_workflow_with_obs(wf, cfg, obs).expect("run succeeds");
    let captured = frames.borrow().clone();
    (stats, captured)
}

fn otlp_bytes(stats: &RunStats) -> (String, String) {
    let wf = App::Montage.tiny_workflow();
    let report = stats.obs.as_ref().expect("Full level records a report");
    let labels = wfengine::otlp_labels(stats, &wf, KIND.label(), WORKERS);
    (
        wfobs::otlp_trace(report, &labels),
        wfobs::otlp_metrics(report, &labels),
    )
}

#[test]
fn live_sink_is_digest_and_otlp_invariant() {
    let (plain, no_frames) = run(false);
    let (live, frames) = run(true);

    assert!(no_frames.is_empty(), "no sink, no frames");
    assert!(
        frames.len() > 3,
        "the live run rendered frames while in flight (got {})",
        frames.len()
    );

    // The metamorphic core: same digest, same makespan, same events.
    assert_eq!(
        plain.digest.expect("digest on"),
        live.digest.expect("digest on"),
        "attaching a live viewer changed the run digest"
    );
    assert_eq!(plain.makespan_secs, live.makespan_secs);
    assert_eq!(plain.events, live.events);

    // And the exporters see byte-identical streams.
    let (trace_a, metrics_a) = otlp_bytes(&plain);
    let (trace_b, metrics_b) = otlp_bytes(&live);
    assert_eq!(trace_a, trace_b, "OTLP trace bytes diverged");
    assert_eq!(metrics_a, metrics_b, "OTLP metrics bytes diverged");
}

#[test]
fn live_frames_replay_identically() {
    // Same seed, same sink geometry → byte-identical frame sequence:
    // the viewer itself is replay-deterministic (no wall clock anywhere
    // in the state machine or renderer).
    let (_, a) = run(true);
    let (_, b) = run(true);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.0, y.0, "tick times diverged");
        assert_eq!(x.1, y.1, "frame bytes diverged at t={}", x.0);
    }
}

#[test]
fn frame_geometry_holds_end_to_end() {
    let (_, frames) = run(true);
    for (t, frame) in &frames {
        let lines: Vec<&str> = frame.split('\n').collect();
        assert_eq!(lines.len(), 30, "rows at t={t}");
        assert!(
            lines.iter().all(|l| l.chars().count() == 100),
            "cols at t={t}"
        );
    }
}
