//! The event bus must be a faithful second witness of the run: the phase
//! breakdown reconstructed purely from `TaskStart`/`TaskPhase`/`TaskEnd`
//! events has to agree with the legacy record-based accounting to 1e-6
//! slot-seconds, on every paper application and storage kind the bus is
//! threaded through.

use wfengine::{phase_breakdown, phase_breakdown_from_bus, run_workflow, RunConfig};
use wfgen::App;
use wfobs::ObsLevel;
use wfstorage::StorageKind;

const KINDS: [StorageKind; 5] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterNufa,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

#[test]
fn bus_phase_totals_match_records_on_all_apps() {
    for app in [App::Montage, App::Epigenome, App::Broadband] {
        for kind in KINDS {
            let cfg = RunConfig::cell(kind, 2)
                .with_seed(42)
                .with_obs(ObsLevel::Full);
            let stats = run_workflow(app.tiny_workflow(), cfg)
                .unwrap_or_else(|e| panic!("{app:?}/{kind:?}: {e}"));
            let report = stats.obs.as_ref().expect("Full level records a report");
            let legacy = phase_breakdown(&stats);
            let bus = phase_breakdown_from_bus(report);
            for (name, a, b) in [
                ("overhead", legacy.overhead, bus.overhead),
                ("ops", legacy.ops, bus.ops),
                ("stage_in", legacy.stage_in, bus.stage_in),
                ("read", legacy.read, bus.read),
                ("compute", legacy.compute, bus.compute),
                ("write", legacy.write, bus.write),
                ("stage_out", legacy.stage_out, bus.stage_out),
            ] {
                assert!(
                    (a - b).abs() <= 1e-6,
                    "{app:?}/{kind:?} {name}: records {a} vs bus {b}"
                );
            }
            assert!(
                (legacy.total() - bus.total()).abs() <= 1e-6,
                "{app:?}/{kind:?} totals: {} vs {}",
                legacy.total(),
                bus.total()
            );
        }
    }
}
