//! Golden-file test for the folded-stack storage flamegraph exporter: a
//! small Montage run on GlusterFS (NUFA) must produce exactly the
//! checked-in `backend;op_kind;task weight` lines. Regenerate after an
//! intentional change with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p expt --test folded_golden
//! ```

use wfengine::{run_workflow, RunConfig};
use wfgen::App;
use wfobs::ObsLevel;
use wfstorage::StorageKind;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/montage_folded.txt"
);

#[test]
fn montage_folded_stacks_match_golden() {
    let kind = StorageKind::GlusterNufa;
    let wf = App::Montage.tiny_workflow();
    let task_names: Vec<String> = wf.tasks().iter().map(|t| t.name.clone()).collect();
    let cfg = RunConfig::cell(kind, 2)
        .with_seed(42)
        .with_obs(ObsLevel::Full);
    let stats = run_workflow(wf, cfg).expect("montage run succeeds");
    let report = stats.obs.as_ref().expect("Full level records a report");
    let folded = wfobs::folded_storage_stacks(report, &task_names, kind.label());

    // Shape invariants, independent of the pinned bytes.
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("`stack weight` shape");
        let parts: Vec<_> = stack.split(';').collect();
        assert_eq!(parts.len(), 3, "backend;op_kind;task: {line}");
        assert_eq!(parts[0], kind.label());
        let w: u64 = weight.parse().expect("integer microsecond weight");
        assert!(w > 0, "zero-weight lines are omitted: {line}");
    }

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &folded).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden fixture missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        folded, want,
        "folded stacks drifted from {GOLDEN}; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}
