//! The OTLP export must be a faithful third witness of the run: the
//! phase breakdown and the resource bill reconstructed purely from the
//! decoded `ExportTraceServiceRequest` have to agree with the bus
//! accounting (`phase_breakdown_from_bus`) and the engine's billed
//! segments (`wfcost::CostModel::segments_cents`) to 1e-6 — on every
//! paper application and storage kind, and under node-crash and
//! spot-market churn where the billing is segment-per-incarnation.

use wfcost::{BillingGranularity, CostModel};
use wfengine::{
    phase_breakdown_from_bus, phase_breakdown_from_otlp, run_workflow, segments_from_otlp,
    FaultPlan, NodeCrashSpec, RunConfig, RunStats, SpotSpec,
};
use wfgen::App;
use wfobs::otlp::decode;
use wfobs::ObsLevel;
use wfstorage::StorageKind;

const KINDS: [StorageKind; 5] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterNufa,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

fn export_trace(stats: &RunStats, wf: &wfdag::Workflow, kind: StorageKind, workers: u32) -> String {
    let report = stats.obs.as_ref().expect("Full level records a report");
    let labels = wfengine::otlp_labels(stats, wf, kind.label(), workers);
    wfobs::otlp_trace(report, &labels)
}

fn assert_phase_parity(ctx: &str, stats: &RunStats, trace: &decode::Trace) {
    let report = stats.obs.as_ref().expect("Full level records a report");
    let bus = phase_breakdown_from_bus(report);
    let otlp = phase_breakdown_from_otlp(trace);
    for (name, a, b) in [
        ("overhead", bus.overhead, otlp.overhead),
        ("ops", bus.ops, otlp.ops),
        ("stage_in", bus.stage_in, otlp.stage_in),
        ("read", bus.read, otlp.read),
        ("compute", bus.compute, otlp.compute),
        ("write", bus.write, otlp.write),
        ("stage_out", bus.stage_out, otlp.stage_out),
    ] {
        assert!((a - b).abs() <= 1e-6, "{ctx} {name}: bus {a} vs otlp {b}");
    }
    assert!(
        (bus.total() - otlp.total()).abs() <= 1e-6,
        "{ctx} totals: {} vs {}",
        bus.total(),
        otlp.total()
    );
}

fn assert_cost_parity(ctx: &str, stats: &RunStats, trace: &decode::Trace) {
    let from_otlp = segments_from_otlp(trace);
    assert_eq!(
        from_otlp.len(),
        stats.faults.segments.len(),
        "{ctx}: one billing record per incarnation span"
    );
    let m = CostModel::default();
    for g in [BillingGranularity::PerHour, BillingGranularity::PerSecond] {
        let engine = m.segments_cents(&stats.faults.segments, g);
        let otlp = m.segments_cents(&from_otlp, g);
        assert!(
            (engine - otlp).abs() <= 1e-6,
            "{ctx} {g:?}: engine {engine} vs otlp {otlp} cents"
        );
    }
}

/// Fault-free runs across every paper app × storage kind: phase totals
/// and the bill survive the OTLP round trip.
#[test]
fn otlp_phase_and_cost_parity_on_all_apps() {
    for app in [App::Montage, App::Epigenome, App::Broadband] {
        for kind in KINDS {
            let wf = app.tiny_workflow();
            let cfg = RunConfig::cell(kind, 2)
                .with_seed(42)
                .with_obs(ObsLevel::Full);
            let stats =
                run_workflow(wf.clone(), cfg).unwrap_or_else(|e| panic!("{app:?}/{kind:?}: {e}"));
            let json = export_trace(&stats, &wf, kind, 2);
            let trace = decode::trace(&json).expect("trace decodes");
            decode::check_well_formed(&trace).expect("well-formed");
            let ctx = format!("{app:?}/{kind:?}");
            assert_phase_parity(&ctx, &stats, &trace);
            assert_cost_parity(&ctx, &stats, &trace);
        }
    }
}

/// A mid-run node crash with reprovisioning splits the victim's lease
/// into multiple billed segments; the per-incarnation billing attributes
/// must still reproduce the exact fault-adjusted bill.
#[test]
fn otlp_cost_parity_under_node_churn() {
    let kind = StorageKind::GlusterNufa;
    let wf = App::Montage.tiny_workflow();
    let clean = run_workflow(
        wf.clone(),
        RunConfig::cell(kind, 3)
            .with_seed(7)
            .with_obs(ObsLevel::Full),
    )
    .expect("clean run succeeds");

    let mut plan = FaultPlan::zero();
    plan.node_crash = Some(NodeCrashSpec {
        rate_per_hour: 0.0,
        scheduled: vec![(1, clean.makespan_secs * 0.4)],
        reprovision: true,
    });
    plan.max_fault_retries = 16;
    let mut cfg = RunConfig::cell(kind, 3)
        .with_seed(7)
        .with_obs(ObsLevel::Full);
    cfg.faults = Some(plan);
    let stats = run_workflow(wf.clone(), cfg).expect("faulted run succeeds");
    assert!(stats.faults.node_crashes > 0, "the scheduled crash fired");
    assert!(
        stats.faults.segments.len() > 3,
        "the crash split the victim's lease into extra segments"
    );

    let json = export_trace(&stats, &wf, kind, 3);
    let trace = decode::trace(&json).expect("trace decodes");
    decode::check_well_formed(&trace).expect("well-formed under churn");
    assert_phase_parity("churn", &stats, &trace);
    assert_cost_parity("churn", &stats, &trace);
}

/// Spot-market workers bill at the spot rate; the `wf.billing.spot`
/// attribute must carry through so the discounted bill reproduces.
#[test]
fn otlp_cost_parity_on_spot_instances() {
    let kind = StorageKind::Nfs;
    let wf = App::Epigenome.tiny_workflow();
    let mut plan = FaultPlan::zero();
    plan.spot = Some(SpotSpec {
        rate_per_hour: 0.05,
        replace: true,
    });
    plan.max_fault_retries = 16;
    let mut cfg = RunConfig::cell(kind, 2)
        .with_seed(11)
        .with_obs(ObsLevel::Full);
    cfg.faults = Some(plan);
    let stats = run_workflow(wf.clone(), cfg).expect("spot run succeeds");
    assert!(
        stats.faults.segments.iter().any(|s| s.spot),
        "workers started on the spot market"
    );

    let json = export_trace(&stats, &wf, kind, 2);
    let trace = decode::trace(&json).expect("trace decodes");
    decode::check_well_formed(&trace).expect("well-formed on spot");
    assert_cost_parity("spot", &stats, &trace);

    // Spot billing genuinely discounts: same run priced as on-demand
    // segments costs strictly more, so the attribute is load-bearing.
    let m = CostModel::default();
    let on_demand: Vec<_> = stats
        .faults
        .segments
        .iter()
        .map(|s| wfcost::BilledSegment { spot: false, ..*s })
        .collect();
    assert!(
        m.segments_cents(&on_demand, BillingGranularity::PerHour)
            > m.segments_cents(&stats.faults.segments, BillingGranularity::PerHour),
        "spot attribute must change the bill"
    );
}
