//! Experiment E9 (beyond-paper): end-to-end accounting — provisioning
//! (§III.A) and WAN staging (§III.C excluded both from the makespans) —
//! so a complete "submit to archived outputs" timeline and bill can be
//! reported per application.

use serde::{Deserialize, Serialize};
use simcore::DetRng;
use vcluster::{provision_timeline, ClusterSpec, InstanceType, ProvisionConfig};
use wfcost::transfer::{stage_in, stage_out, TransferPricing, WanLink};
use wfdag::FileClass;
use wfgen::App;

/// The end-to-end picture for one application at a reference cluster
/// size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndToEndRow {
    /// The application.
    pub app: App,
    /// Provision-to-ready wall time, seconds.
    pub provision_secs: f64,
    /// Input staging (submit host → cloud), seconds.
    pub stage_in_secs: f64,
    /// Input staging transfer charge, cents.
    pub stage_in_cents: f64,
    /// The workflow makespan the paper reports, seconds.
    pub makespan_secs: f64,
    /// Output archiving (cloud → submit host), seconds.
    pub stage_out_secs: f64,
    /// Output transfer charge, cents.
    pub stage_out_cents: f64,
}

impl EndToEndRow {
    /// Total submit-to-archived wall time.
    pub fn total_secs(&self) -> f64 {
        self.provision_secs + self.stage_in_secs + self.makespan_secs + self.stage_out_secs
    }

    /// Fraction of the end-to-end time the paper's makespan covers.
    pub fn makespan_fraction(&self) -> f64 {
        self.makespan_secs / self.total_secs()
    }
}

/// Build the E9 table at 4 workers on each app's best-performing storage
/// option, given the already-measured makespans.
pub fn end_to_end(makespans: &[(App, f64)], seed: u64) -> Vec<EndToEndRow> {
    let link = WanLink::default();
    let pricing = TransferPricing::default();
    let pcfg = ProvisionConfig::default();
    makespans
        .iter()
        .map(|&(app, makespan_secs)| {
            let wf = app.paper_workflow();
            let (mut in_bytes, mut in_files) = (0u64, 0u64);
            for f in wf.files() {
                if f.class == FileClass::Input {
                    in_bytes += f.size;
                    in_files += 1;
                }
            }
            // Archive the science products (what §II counts as output).
            let products: Vec<&str> = match app {
                App::Montage => vec!["mAdd", "mShrink", "mJPEG"],
                App::Broadband => vec!["intensity", "compare"],
                App::Epigenome => vec!["mapIndex", "mapDensity"],
            };
            let (mut out_bytes, mut out_files) = (0u64, 0u64);
            for t in wf.tasks() {
                if products.contains(&t.transformation.as_str()) {
                    out_bytes += t.output_bytes(wf.files());
                    out_files += t.outputs.len() as u64;
                }
            }
            let mut rng = DetRng::stream(seed, "provision");
            let prov = provision_timeline(
                &ClusterSpec::with_server(4, InstanceType::M1Xlarge),
                &pcfg,
                &mut rng,
            );
            let si = stage_in(in_bytes, in_files, &link, &pricing);
            let so = stage_out(out_bytes, out_files, &link, &pricing);
            EndToEndRow {
                app,
                provision_secs: prov.total_secs(),
                stage_in_secs: si.secs,
                stage_in_cents: si.cents,
                makespan_secs,
                stage_out_secs: so.secs,
                stage_out_cents: so.cents,
            }
        })
        .collect()
}

/// Render the E9 table.
pub fn render(rows: &[EndToEndRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "E9 — END-TO-END (beyond paper): provisioning + WAN staging around the measured makespans"
    );
    let _ = writeln!(
        s,
        "  {:<10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>14}",
        "app", "provision", "stage-in", "makespan", "stage-out", "total", "makespan share"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<10} {:>9.0}s {:>9.0}s {:>9.0}s {:>9.0}s {:>8.0}s {:>13.0}%",
            r.app.label(),
            r.provision_secs,
            r.stage_in_secs,
            r.makespan_secs,
            r.stage_out_secs,
            r.total_secs(),
            r.makespan_fraction() * 100.0
        );
        let _ = writeln!(
            s,
            "  {:<10} transfer fees: in ${:.2}, out ${:.2}",
            "",
            r.stage_in_cents / 100.0,
            r.stage_out_cents / 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_covers_all_apps() {
        let rows = end_to_end(
            &[
                (App::Montage, 423.0),
                (App::Broadband, 2902.0),
                (App::Epigenome, 665.0),
            ],
            42,
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.provision_secs > 70.0, "{r:?}");
            assert!(r.stage_in_secs > 0.0);
            assert!(r.stage_out_secs > 0.0);
            assert!((0.0..=1.0).contains(&r.makespan_fraction()));
        }
        // Montage moves the most data out (7.9 GB of products).
        let montage = &rows[0];
        let epi = &rows[2];
        assert!(montage.stage_out_cents > epi.stage_out_cents * 10.0);
    }

    #[test]
    fn staging_is_a_significant_share_for_io_heavy_apps() {
        // Validates the paper's choice to study it separately: for
        // Montage the excluded edges rival the makespan itself.
        let rows = end_to_end(&[(App::Montage, 423.0)], 42);
        assert!(rows[0].makespan_fraction() < 0.5, "{:?}", rows[0]);
    }
}
