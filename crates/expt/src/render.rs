//! Plain-text rendering of the regenerated tables and figures.

use crate::figures::{CostFigure, RuntimeFigure, Table1, XtreemFsNote};
use crate::microbench::DiskMicrobench;
use crate::shape::ShapeCheck;
use std::fmt::Write as _;
use wfstorage::StorageKind;

/// Render Table I.
pub fn table1(t: &Table1) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE I — APPLICATION RESOURCE USAGE COMPARISON");
    let _ = writeln!(
        s,
        "{:<12} {:<8} {:<8} {:<8}",
        "Application", "I/O", "Memory", "CPU"
    );
    for (app, u) in &t.rows {
        let _ = writeln!(
            s,
            "{:<12} {:<8} {:<8} {:<8}",
            app.label(),
            u.io.to_string(),
            u.memory.to_string(),
            u.cpu.to_string()
        );
    }
    s
}

/// Render the §III.C disk microbenchmark.
pub fn microbench(b: &DiskMicrobench) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "§III.C EPHEMERAL-DISK MICROBENCHMARK (measured end-to-end)"
    );
    let _ = writeln!(
        s,
        "{:<18} {:>12} {:>12} {:>10}",
        "Device", "first write", "rewrite", "read"
    );
    for r in &b.rows {
        let dev = if r.disks == 1 {
            "1 ephemeral disk".to_string()
        } else {
            format!("{}-disk RAID 0", r.disks)
        };
        let _ = writeln!(
            s,
            "{:<18} {:>9.0} MB/s {:>9.0} MB/s {:>7.0} MB/s",
            dev, r.first_write_mbps, r.rewrite_mbps, r.read_mbps
        );
    }
    let _ = writeln!(
        s,
        "(paper: 20 / 100 / 110 single disk; 80-100 / 350-400 / ~310 RAID 0)"
    );
    s
}

/// A single horizontal ASCII bar.
fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

/// Render a runtime figure (Figs 2–4) as grouped ASCII bars.
pub fn runtime_figure(fig: &RuntimeFigure, number: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIG. {number} — Performance of {} using different storage systems (makespan, seconds)",
        fig.app.label()
    );
    let max = fig
        .cells
        .iter()
        .map(|c| c.makespan_secs)
        .fold(0.0f64, f64::max);
    for storage in StorageKind::EVALUATED {
        let pts: Vec<_> = fig
            .cells
            .iter()
            .filter(|c| c.cell.storage == storage)
            .collect();
        if pts.is_empty() {
            continue;
        }
        let _ = writeln!(s, "  {}", storage.label());
        for c in pts {
            let _ = writeln!(
                s,
                "    n={:<2} {:>8.0}s |{}",
                c.cell.workers,
                c.makespan_secs,
                bar(c.makespan_secs, max, 48)
            );
        }
    }
    if let Some(m24) = &fig.nfs_m24 {
        let _ = writeln!(
            s,
            "  NFS (m2.4xlarge server)\n    n={:<2} {:>8.0}s |{}",
            m24.cell.workers,
            m24.makespan_secs,
            bar(m24.makespan_secs, max, 48)
        );
    }
    s
}

/// Render a cost figure (Figs 5–7): per-hour and per-second charges.
pub fn cost_figure(fig: &CostFigure, number: u32) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIG. {number} — {} cost assuming per-hour charges (top) and per-second charges (bottom), USD",
        fig.app.label()
    );
    let max_h = fig.rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let max_s = fig.rows.iter().map(|r| r.3).fold(0.0f64, f64::max);
    for (pass, label, max) in [(0usize, "per-hour", max_h), (1, "per-second", max_s)] {
        let _ = writeln!(s, "  [{label}]");
        for storage in StorageKind::EVALUATED {
            for (st, n, ph, ps) in &fig.rows {
                if *st != storage {
                    continue;
                }
                let v = if pass == 0 { *ph } else { *ps };
                let _ = writeln!(
                    s,
                    "    {:<24} n={:<2} ${:>6.2} |{}",
                    storage.label(),
                    n,
                    v,
                    bar(v, max, 40)
                );
            }
        }
    }
    s
}

/// Render the XtreemFS note.
pub fn xtreemfs(x: &XtreemFsNote) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "§IV NOTE — XtreemFS (terminated in the paper after >2x slowdowns)"
    );
    for (app, xs, best) in &x.rows {
        let _ = writeln!(
            s,
            "  {:<10} XtreemFS {:>7.0}s vs GlusterFS {:>7.0}s  ({:.1}x)",
            app.label(),
            xs,
            best,
            xs / best
        );
    }
    s
}

/// Render the shape-check scoreboard.
pub fn shape_checks(checks: &[ShapeCheck]) -> String {
    let mut s = String::new();
    let passed = checks.iter().filter(|c| c.passed).count();
    let _ = writeln!(
        s,
        "SHAPE CHECKS — {passed}/{} paper claims reproduced",
        checks.len()
    );
    for c in checks {
        let _ = writeln!(
            s,
            "  [{}] {:<32} {}",
            if c.passed { "PASS" } else { "FAIL" },
            c.id,
            c.claim
        );
        let _ = writeln!(s, "         {}", c.detail);
    }
    s
}

/// CSV of a runtime figure: `app,storage,workers,makespan_secs` — ready
/// for external plotting.
pub fn runtime_csv(fig: &RuntimeFigure) -> String {
    let mut s = String::from("app,storage,workers,makespan_secs\n");
    for c in &fig.cells {
        let _ = writeln!(
            s,
            "{},{},{},{:.3}",
            fig.app.label(),
            c.cell.storage.label(),
            c.cell.workers,
            c.makespan_secs
        );
    }
    if let Some(m24) = &fig.nfs_m24 {
        let _ = writeln!(
            s,
            "{},NFS (m2.4xlarge server),{},{:.3}",
            fig.app.label(),
            m24.cell.workers,
            m24.makespan_secs
        );
    }
    s
}

/// CSV of a cost figure: `app,storage,workers,per_hour_usd,per_second_usd`.
pub fn cost_csv(fig: &CostFigure) -> String {
    let mut s = String::from("app,storage,workers,per_hour_usd,per_second_usd\n");
    for (st, n, ph, ps) in &fig.rows {
        let _ = writeln!(
            s,
            "{},{},{},{:.4},{:.4}",
            fig.app.label(),
            st.label(),
            n,
            ph,
            ps
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn table1_renders() {
        let t = crate::figures::table1();
        let s = table1(&t);
        assert!(s.contains("Montage"));
        assert!(s.contains("TABLE I"));
    }

    #[test]
    fn microbench_renders() {
        let s = microbench(&crate::microbench::run());
        assert!(s.contains("RAID 0"));
        assert!(s.contains("MB/s"));
    }

    #[test]
    fn csv_outputs_are_well_formed() {
        use crate::grid::{run_cell, Cell};
        use wfgen::App;
        use wfstorage::StorageKind;
        let cell = run_cell(Cell::new(App::Epigenome, StorageKind::Nfs, 2), 42).unwrap();
        let fig = RuntimeFigure {
            app: App::Epigenome,
            cells: vec![cell],
            nfs_m24: None,
        };
        let csv = runtime_csv(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "app,storage,workers,makespan_secs");
        assert!(lines[1].starts_with("Epigenome,NFS,2,"));
        let cost = cost_csv(&crate::figures::cost_figure(&fig));
        assert_eq!(cost.lines().count(), 2);
        assert!(cost.lines().nth(1).unwrap().matches(',').count() == 4);
    }
}
