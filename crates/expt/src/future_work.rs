//! Experiment F1 — the paper's future work (§VIII): "configurations in
//! which files can be transferred directly from one computational node to
//! another", evaluated against the best of the five published systems.

use crate::figures::RuntimeFigure;
use crate::grid::{run_cell_with, CellResult};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wfengine::{RunConfig, SchedulerPolicy};
use wfgen::App;
use wfstorage::StorageKind;

/// One (app, workers) comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FutureWorkRow {
    /// The application.
    pub app: App,
    /// Worker count.
    pub workers: u32,
    /// Direct transfer with the paper's locality-blind scheduler.
    pub direct: CellResult,
    /// Direct transfer with the data-aware scheduler (the natural
    /// pairing: replicas make locality information valuable).
    pub direct_aware: CellResult,
    /// The best published-system makespan at the same size.
    pub best_published_secs: f64,
    /// Which system that was.
    pub best_published: StorageKind,
}

/// The full F1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FutureWork {
    /// Comparison rows for every app × size.
    pub rows: Vec<FutureWorkRow>,
}

/// Run F1 against already-regenerated runtime figures.
pub fn run(figs: &[RuntimeFigure], seed: u64) -> FutureWork {
    let mut jobs = Vec::new();
    for fig in figs {
        for n in [2u32, 4, 8] {
            let (best_published, best_published_secs) = StorageKind::EVALUATED
                .iter()
                .filter_map(|s| fig.makespan(*s, n).map(|m| (*s, m)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("published cells exist");
            jobs.push((fig.app, n, best_published, best_published_secs));
        }
    }
    let rows = jobs
        .par_iter()
        .map(|&(app, workers, best_published, best_published_secs)| {
            let blind = RunConfig::cell(StorageKind::DirectTransfer, workers).with_seed(seed);
            let mut aware = blind.clone();
            aware.scheduler = SchedulerPolicy::DataAware;
            let (direct, direct_aware) = rayon::join(
                || run_cell_with(app, blind).expect("direct cell"),
                || run_cell_with(app, aware).expect("direct-aware cell"),
            );
            FutureWorkRow {
                app,
                workers,
                direct,
                direct_aware,
                best_published_secs,
                best_published,
            }
        })
        .collect();
    FutureWork { rows }
}

/// Render the F1 table.
pub fn render(fw: &FutureWork) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F1 — §VIII FUTURE WORK: direct node-to-node transfers vs the published systems"
    );
    let _ = writeln!(
        s,
        "  {:<10} {:>3} {:>14} {:>16} {:>22}",
        "app", "n", "direct", "direct+aware", "best published"
    );
    for r in &fw.rows {
        let _ = writeln!(
            s,
            "  {:<10} {:>3} {:>13.0}s {:>15.0}s {:>14.0}s ({})",
            r.app.label(),
            r.workers,
            r.direct.makespan_secs,
            r.direct_aware.makespan_secs,
            r.best_published_secs,
            r.best_published.label()
        );
    }
    s
}
