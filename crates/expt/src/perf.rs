//! Perf smoke for the simulation kernel: the Montage-scale flow schedule
//! driven through both the incremental [`FlowEngine`] and the preserved
//! O(F²) reference solver, timed, and written to `BENCH.json`.
//!
//! `cargo run --release -p expt --bin repro -- --bench-smoke` runs this in
//! a few seconds; `wfbench`'s `kernel` benchmark reuses the same workload
//! for fuller Criterion statistics.

use serde::Serialize;
use simcore::naive::NaiveFlowEngine;
use simcore::{FlowEngine, FlowSpec, ResourceId, Sim, SimTime};
use std::time::Instant;
use wfobs::{ObsHandle, ObsLevel};

/// A deterministic Montage-scale flow schedule over shared resources.
pub struct KernelWorkload {
    /// Resource capacities (bytes/second), index = resource id.
    pub caps: Vec<f64>,
    /// `(arrival ns, bytes, path as resource indices, optional rate cap)`.
    pub arrivals: Vec<(u64, u64, Vec<usize>, Option<f64>)>,
}

/// Build the benchmark schedule: `n_flows` staggered transfers over 64
/// resources (31 worker nodes × disk+NIC plus a shared file-server NIC and
/// disk). Most traffic is node-local; one transfer in 32 crosses the shared
/// server, periodically stitching node components together — the access
/// pattern of a Montage run on a shared file system.
pub fn montage_scale_workload(n_flows: u64) -> KernelWorkload {
    const NODES: usize = 31;
    let mut caps = Vec::new();
    for _ in 0..NODES {
        caps.push(1.0e8); // node disk
        caps.push(1.0e8); // node NIC
    }
    let srv_nic = caps.len();
    caps.push(1.0e9);
    let srv_disk = caps.len();
    caps.push(5.0e8);

    let mut arrivals = Vec::with_capacity(n_flows as usize);
    for i in 0..n_flows {
        // SplitMix-style hash: deterministic, no RNG state to thread.
        let mut z = (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        let node = (i as usize) % NODES;
        let bytes = 1_000_000 + z % 8_000_000;
        let mut path = vec![2 * node, 2 * node + 1];
        if z % 32 == 0 {
            path.push(srv_nic);
            path.push(srv_disk);
        }
        let cap = (z % 16 == 1).then_some(2.0e7);
        arrivals.push((i * 2_000_000, bytes, path, cap));
    }
    KernelWorkload { caps, arrivals }
}

macro_rules! drive {
    ($fe:expr, $w:expr) => {{
        let w = $w;
        let mut fe = $fe;
        let rids: Vec<ResourceId> = w
            .caps
            .iter()
            .enumerate()
            .map(|(i, c)| fe.add_resource(format!("r{i}"), *c))
            .collect();
        let mut next = 0;
        let mut last = SimTime::ZERO;
        loop {
            let ta = w.arrivals.get(next).map(|a| SimTime::from_nanos(a.0));
            match (ta, fe.next_completion()) {
                (None, None) => break,
                (Some(t), done) if done.is_none() || t <= done.unwrap().0 => {
                    let (_, bytes, ref path, cap) = w.arrivals[next];
                    next += 1;
                    let mut spec = FlowSpec::new(bytes, path.iter().map(|&p| rids[p]).collect());
                    if let Some(c) = cap {
                        spec = spec.with_cap(c);
                    }
                    fe.start(t, spec, ());
                }
                (_, Some((t, id))) => {
                    fe.complete(t, id);
                    last = t;
                }
                (_, None) => unreachable!(),
            }
        }
        let (started, completed) = fe.flow_counters();
        assert_eq!(started, completed, "all flows must complete");
        last
    }};
}

/// Run the workload through the incremental engine; returns the final
/// completion instant.
pub fn drive_incremental(w: &KernelWorkload) -> SimTime {
    drive!(FlowEngine::<()>::new(), w)
}

/// Run the workload through the preserved O(F²) reference engine.
pub fn drive_naive(w: &KernelWorkload) -> SimTime {
    drive!(NaiveFlowEngine::<()>::new(), w)
}

/// Run the workload through the full event-driven [`Sim`] loop at the
/// given observability level. This is the path the event bus actually
/// instruments (flow start/rate/finish emissions live in `Sim`, not in
/// the flow engine), so timing it at `Off` vs `Digest` vs `Full` measures
/// the bus overhead the disabled-by-default design promises to avoid.
pub fn drive_sim(w: &KernelWorkload, level: ObsLevel) -> SimTime {
    let mut sim: Sim<()> = Sim::new();
    sim.set_obs(ObsHandle::new(level, 42));
    let rids: Vec<ResourceId> = w
        .caps
        .iter()
        .enumerate()
        .map(|(i, c)| sim.add_resource(format!("r{i}"), *c))
        .collect();
    for (t_ns, bytes, path, cap) in &w.arrivals {
        let mut spec = FlowSpec::new(*bytes, path.iter().map(|&p| rids[p]).collect());
        if let Some(c) = *cap {
            spec = spec.with_cap(c);
        }
        sim.schedule_at(SimTime::from_nanos(*t_ns), move |sim, _| {
            sim.start_flow(spec, |_, _| {});
        });
    }
    sim.run(&mut ());
    let (started, completed) = sim.flow_counters();
    assert_eq!(started, completed, "all flows must complete");
    sim.now()
}

/// One timed engine run inside [`BenchSmoke`].
#[derive(Debug, Serialize)]
pub struct EngineTiming {
    /// Engine label (`incremental` / `naive`).
    pub engine: &'static str,
    /// Best-of-`runs` wall time, milliseconds.
    pub min_ms: f64,
    /// Mean wall time, milliseconds.
    pub mean_ms: f64,
    /// Number of timed runs.
    pub runs: u32,
}

/// The `BENCH.json` document.
#[derive(Debug, Serialize)]
pub struct BenchSmoke {
    /// Workload description.
    pub workload: String,
    /// Flows in the schedule.
    pub flows: u64,
    /// Resources in the schedule.
    pub resources: usize,
    /// Final completion instant (must agree between engines), seconds.
    pub makespan_secs: f64,
    /// Timings per engine.
    pub engines: Vec<EngineTiming>,
    /// `naive.min_ms / incremental.min_ms`.
    pub speedup: f64,
    /// `sim/obs-digest min_ms ÷ sim/obs-off min_ms` — the cost of digest
    /// hashing on the full simulation loop.
    pub obs_digest_overhead: f64,
    /// `sim/obs-full min_ms ÷ sim/obs-off min_ms` — the cost of recording
    /// every event and metric sample.
    pub obs_full_overhead: f64,
}

fn time_runs(mut f: impl FnMut() -> SimTime, runs: u32) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..runs {
        let t = Instant::now();
        std::hint::black_box(f());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
    }
    (best, total / f64::from(runs))
}

/// Time both engines on the Montage-scale schedule and return the report.
/// Panics if the engines disagree on the final completion instant.
pub fn bench_smoke(n_flows: u64) -> BenchSmoke {
    let w = montage_scale_workload(n_flows);
    let inc_makespan = drive_incremental(&w);
    let naive_makespan = drive_naive(&w);
    assert_eq!(
        inc_makespan, naive_makespan,
        "engines disagree on the schedule's final completion"
    );
    let sim_makespan = drive_sim(&w, ObsLevel::Off);
    assert_eq!(
        sim_makespan,
        drive_sim(&w, ObsLevel::Full),
        "observability changed simulated time"
    );
    // The incremental timing doubles as the regression baseline for the
    // 2% disabled-bus gate, so sample it deeper: min-of-10 sits at the
    // machine's true floor rather than a lucky draw.
    let (inc_min, inc_mean) = time_runs(|| drive_incremental(&w), 10);
    let (nv_min, nv_mean) = time_runs(|| drive_naive(&w), 3);
    let (off_min, off_mean) = time_runs(|| drive_sim(&w, ObsLevel::Off), 5);
    let (dig_min, dig_mean) = time_runs(|| drive_sim(&w, ObsLevel::Digest), 5);
    let (full_min, full_mean) = time_runs(|| drive_sim(&w, ObsLevel::Full), 5);
    BenchSmoke {
        workload: "montage_scale: staggered node-local transfers, 1/32 via shared server".into(),
        flows: n_flows,
        resources: w.caps.len(),
        makespan_secs: inc_makespan.as_secs_f64(),
        engines: vec![
            EngineTiming {
                engine: "incremental",
                min_ms: inc_min,
                mean_ms: inc_mean,
                runs: 10,
            },
            EngineTiming {
                engine: "naive",
                min_ms: nv_min,
                mean_ms: nv_mean,
                runs: 3,
            },
            EngineTiming {
                engine: "sim/obs-off",
                min_ms: off_min,
                mean_ms: off_mean,
                runs: 5,
            },
            EngineTiming {
                engine: "sim/obs-digest",
                min_ms: dig_min,
                mean_ms: dig_mean,
                runs: 5,
            },
            EngineTiming {
                engine: "sim/obs-full",
                min_ms: full_min,
                mean_ms: full_mean,
                runs: 5,
            },
        ],
        speedup: nv_min / inc_min,
        obs_digest_overhead: dig_min / off_min,
        obs_full_overhead: full_min / off_min,
    }
}

/// Render a short human-readable summary of the smoke run.
pub fn render(b: &BenchSmoke) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "KERNEL PERF SMOKE — {} flows over {} resources (makespan {:.1}s simulated)\n",
        b.flows, b.resources, b.makespan_secs
    ));
    for e in &b.engines {
        out.push_str(&format!(
            "  {:<12} min {:>9.2}ms  mean {:>9.2}ms  ({} runs)\n",
            e.engine, e.min_ms, e.mean_ms, e.runs
        ));
    }
    out.push_str(&format!(
        "  speedup (naive/incremental, min): {:.1}x\n",
        b.speedup
    ));
    out.push_str(&format!(
        "  obs overhead on sim loop (min): digest {:.3}x, full {:.3}x\n",
        b.obs_digest_overhead, b.obs_full_overhead
    ));
    out
}
