//! The experiment grid: one cell = (application, storage option, cluster
//! size), exactly the axes of Figs 2–7.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vcluster::InstanceType;
use wfcost::{BillingGranularity, CostModel, UsageReport};
use wfengine::{run_workflow, RunConfig, RunError, RunStats};
use wfgen::App;
use wfstorage::StorageKind;

/// One cell of the paper's grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// The application.
    pub app: App,
    /// The data-sharing option.
    pub storage: StorageKind,
    /// Worker-node count (the paper sweeps 1, 2, 4, 8).
    pub workers: u32,
    /// Dedicated-server override (§V.C's m2.4xlarge NFS experiment).
    pub server_type: Option<InstanceType>,
}

impl Cell {
    /// A standard grid cell.
    pub fn new(app: App, storage: StorageKind, workers: u32) -> Self {
        Cell {
            app,
            storage,
            workers,
            server_type: None,
        }
    }

    /// Is this combination deployable (§V: GlusterFS/PVFS need ≥2 nodes,
    /// Local only runs on 1)?
    pub fn is_valid(&self) -> bool {
        match self.storage {
            StorageKind::Local => self.workers == 1,
            StorageKind::GlusterNufa | StorageKind::GlusterDistribute | StorageKind::Pvfs => {
                self.workers >= 2
            }
            _ => self.workers >= 1,
        }
    }
}

/// The result of one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell.
    pub cell: Cell,
    /// Workflow makespan in seconds (§V's metric).
    pub makespan_secs: f64,
    /// Total cost in dollars under per-hour billing (§VI).
    pub cost_per_hour_usd: f64,
    /// Total cost in dollars under hypothetical per-second billing.
    pub cost_per_second_usd: f64,
    /// S3 GET/PUT request counts (zero for non-S3 cells).
    pub s3_requests: (u64, u64),
    /// Storage cache hits/misses.
    pub cache: (u64, u64),
    /// Fraction of occupied-slot time spent in I/O.
    pub io_fraction: f64,
    /// Simulation events (diagnostic).
    pub events: u64,
}

/// Run one cell with an explicit run configuration (ablations override
/// fields before calling).
pub fn run_cell_with(app: App, cfg: RunConfig) -> Result<CellResult, RunError> {
    let wf = app.paper_workflow();
    let cell = Cell {
        app,
        storage: cfg.storage,
        workers: cfg.workers,
        server_type: cfg.server_type,
    };
    let stats = run_workflow(wf, cfg.clone())?;
    Ok(summarize(cell, &cfg, &stats))
}

/// Run one standard cell.
pub fn run_cell(cell: Cell, seed: u64) -> Result<CellResult, RunError> {
    let mut cfg = RunConfig::cell(cell.storage, cell.workers).with_seed(seed);
    cfg.server_type = cell.server_type;
    run_cell_with(cell.app, cfg)
}

/// Derive the billing usage and assemble the result record.
pub fn summarize(cell: Cell, cfg: &RunConfig, stats: &RunStats) -> CellResult {
    let mut instances = vec![(InstanceType::C1Xlarge, cfg.workers)];
    if cfg.storage == StorageKind::Nfs {
        instances.push((cfg.server_type.unwrap_or(InstanceType::M1Xlarge), 1));
    }
    let usage = UsageReport {
        wall_secs: stats.makespan_secs,
        instances,
        s3_puts: stats.billing.s3_puts,
        s3_gets: stats.billing.s3_gets,
        s3_peak_bytes: stats.billing.s3_peak_bytes,
    };
    let model = CostModel::default();
    CellResult {
        cell,
        makespan_secs: stats.makespan_secs,
        cost_per_hour_usd: model
            .workflow_cost(&usage, BillingGranularity::PerHour)
            .total_dollars(),
        cost_per_second_usd: model
            .workflow_cost(&usage, BillingGranularity::PerSecond)
            .total_dollars(),
        s3_requests: (stats.billing.s3_gets, stats.billing.s3_puts),
        cache: (stats.op_stats.cache_hits, stats.op_stats.cache_misses),
        io_fraction: stats.io_fraction(),
        events: stats.events,
    }
}

/// The node counts of every figure.
pub const NODE_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// All valid cells of one application's figure.
pub fn figure_cells(app: App) -> Vec<Cell> {
    let mut cells = Vec::new();
    for storage in StorageKind::EVALUATED {
        for n in NODE_COUNTS {
            let c = Cell::new(app, storage, n);
            if c.is_valid() {
                cells.push(c);
            }
        }
    }
    cells
}

/// Run a set of cells in parallel (each cell is an independent
/// simulation); panics on infeasible cells, which `figure_cells` never
/// produces.
pub fn run_cells(cells: &[Cell], seed: u64) -> Vec<CellResult> {
    cells
        .par_iter()
        .map(|c| run_cell(*c, seed).unwrap_or_else(|e| panic!("cell {c:?} failed: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_rules_match_section_v() {
        assert!(Cell::new(App::Montage, StorageKind::Local, 1).is_valid());
        assert!(!Cell::new(App::Montage, StorageKind::Local, 2).is_valid());
        assert!(!Cell::new(App::Montage, StorageKind::GlusterNufa, 1).is_valid());
        assert!(Cell::new(App::Montage, StorageKind::Pvfs, 2).is_valid());
        assert!(Cell::new(App::Montage, StorageKind::S3, 1).is_valid());
        assert!(Cell::new(App::Montage, StorageKind::Nfs, 8).is_valid());
    }

    #[test]
    fn figure_has_19_cells() {
        // S3 and NFS: 4 node counts each; GlusterFS ×2 and PVFS: 3 each;
        // Local: 1. Total 8 + 9 + 3 + ... = 8 + 6 + 3 + 1 = 18... counted:
        // S3(4) + NFS(4) + NUFA(3) + dist(3) + PVFS(3) + Local(1) = 18.
        assert_eq!(figure_cells(App::Montage).len(), 18);
    }
}
