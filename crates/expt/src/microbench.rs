//! Experiment E0: the §III.C ephemeral-disk microbenchmarks.
//!
//! The paper reports: ~20 MB/s first writes and ~100 MB/s subsequent
//! writes on a single ephemeral disk, ~110 MB/s single-disk reads; on the
//! 4-disk software RAID 0 array, 80–100 MB/s first writes, 350–400 MB/s
//! subsequent writes, ~310 MB/s reads. This module measures the simulated
//! device end-to-end (a timed single-stream transfer through the actual
//! resources) rather than echoing configuration constants.

use serde::{Deserialize, Serialize};
use simcore::{FlowSpec, ResourceId, Sim, SimTime};
use vcluster::{DiskProfile, RaidEfficiency};

/// One measured device row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskRow {
    /// Number of disks in the array (1 = bare ephemeral disk).
    pub disks: u32,
    /// Measured first-write bandwidth, MB/s.
    pub first_write_mbps: f64,
    /// Measured rewrite bandwidth, MB/s.
    pub rewrite_mbps: f64,
    /// Measured read bandwidth, MB/s.
    pub read_mbps: f64,
}

/// The full microbenchmark table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskMicrobench {
    /// Rows for 1-disk and 4-disk configurations.
    pub rows: Vec<DiskRow>,
}

/// Time a single `bytes`-sized stream through `path` (+ optional cap).
fn measure_mbps(profile: &DiskProfile, op: Op) -> f64 {
    let mut sim: Sim<()> = Sim::new();
    let spindle = sim.add_resource("spindle", profile.spindle_bps);
    let read = sim.add_resource("read", profile.read_bps);
    let write = sim.add_resource("write", profile.rewrite_bps);
    let fresh = profile
        .first_write_cap()
        .map(|bps| sim.add_resource("fresh", bps));
    let bytes: u64 = 2_000_000_000;
    let path: Vec<ResourceId> = match op {
        Op::Read => vec![spindle, read],
        Op::Rewrite => vec![spindle, write],
        Op::FirstWrite => {
            let mut p = vec![spindle, write];
            if let Some(f) = fresh {
                p.push(f);
            }
            p
        }
    };
    sim.schedule_at(SimTime::ZERO, move |s, _| {
        s.start_flow(FlowSpec::new(bytes, path), |_, _| {});
    });
    sim.run(&mut ());
    bytes as f64 / sim.now().as_secs_f64() / 1e6
}

#[derive(Clone, Copy)]
enum Op {
    Read,
    Rewrite,
    FirstWrite,
}

/// Run the microbenchmark for the 1-disk and 4-disk RAID 0 devices.
pub fn run() -> DiskMicrobench {
    let mut rows = Vec::new();
    for disks in [1u32, 4] {
        // A single disk is the bare device; striping efficiencies only
        // apply to real arrays.
        let profile = if disks == 1 {
            DiskProfile::ec2_ephemeral()
        } else {
            DiskProfile::ec2_ephemeral().raid0(disks, RaidEfficiency::default())
        };
        rows.push(DiskRow {
            disks,
            first_write_mbps: measure_mbps(&profile, Op::FirstWrite),
            rewrite_mbps: measure_mbps(&profile, Op::Rewrite),
            read_mbps: measure_mbps(&profile, Op::Read),
        });
    }
    DiskMicrobench { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_disk_matches_paper() {
        let b = run();
        let one = b.rows.iter().find(|r| r.disks == 1).unwrap();
        assert!((19.0..=21.0).contains(&one.first_write_mbps), "{one:?}");
        assert!((95.0..=105.0).contains(&one.rewrite_mbps), "{one:?}");
        assert!((105.0..=115.0).contains(&one.read_mbps), "{one:?}");
    }

    #[test]
    fn raid_array_matches_paper_ranges() {
        let b = run();
        let raid = b.rows.iter().find(|r| r.disks == 4).unwrap();
        // §III.C: first writes 80-100, rewrites 350-400, reads ~310 MB/s.
        assert!((80.0..=100.0).contains(&raid.first_write_mbps), "{raid:?}");
        assert!((350.0..=400.0).contains(&raid.rewrite_mbps), "{raid:?}");
        assert!((295.0..=320.0).contains(&raid.read_mbps), "{raid:?}");
    }
}
