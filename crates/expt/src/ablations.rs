//! Ablations A1–A5: quantifying the design choices DESIGN.md calls out.
//!
//! * **A1** — the first-write penalty (§III.C): what zero-filling the
//!   ephemeral disks would buy (the paper argues it is uneconomical).
//! * **A2** — the S3 client cache (§IV.A): the authors' whole-file cache
//!   against a cache-less S3 client.
//! * **A3** — the data-aware scheduler the paper suggests as future work
//!   (§IV.A): placement by cached input bytes vs the locality-blind
//!   Condor matchmaker.
//! * **A4** — NFS server placement (§VI): a dedicated `m1.xlarge` vs
//!   overloading a compute node.
//! * **A5** — PVFS small-file optimizations (§IV.D): the 2.6.3 release
//!   the paper had to use vs a model of the ≥2.8 improvements.

use crate::grid::{run_cell_with, CellResult};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wfengine::{RunConfig, SchedulerPolicy};
use wfgen::App;
use wfstorage::{NfsConfig, NfsPlacement, PvfsConfig, S3Config, StorageConfigs, StorageKind};

/// A baseline/variant pair for one ablated design choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Stable identifier (`a1.montage-local` …).
    pub id: String,
    /// What is being ablated.
    pub description: String,
    /// Baseline result (the paper's configuration).
    pub baseline: CellResult,
    /// Variant result (the ablated configuration).
    pub variant: CellResult,
}

impl AblationRow {
    /// variant / baseline makespan ratio (<1 means the variant is
    /// faster).
    pub fn speed_ratio(&self) -> f64 {
        self.variant.makespan_secs / self.baseline.makespan_secs
    }
}

/// All ablation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablations {
    /// One row per ablated choice.
    pub rows: Vec<AblationRow>,
}

fn pair(id: &str, description: &str, app: App, base: RunConfig, variant: RunConfig) -> AblationRow {
    let (b, v) = rayon::join(
        || run_cell_with(app, base).expect("baseline"),
        || run_cell_with(app, variant).expect("variant"),
    );
    AblationRow {
        id: id.to_string(),
        description: description.to_string(),
        baseline: b,
        variant: v,
    }
}

/// Run every ablation (A1–A5).
pub fn run(seed: u64) -> Ablations {
    let jobs: Vec<Box<dyn Fn() -> AblationRow + Send + Sync>> = vec![
        // A1: first-write penalty, the single-node local case of Montage.
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::Local, 1).with_seed(seed);
            let mut v = base.clone();
            v.initialize_disks = true;
            pair(
                "a1.montage-local-init",
                "Montage Local@1: zero-filled (initialized) ephemeral disks vs stock",
                App::Montage,
                base,
                v,
            )
        }),
        // A1b: the same question on a GlusterFS cluster.
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::GlusterNufa, 4).with_seed(seed);
            let mut v = base.clone();
            v.initialize_disks = true;
            pair(
                "a1.montage-gluster-init",
                "Montage GlusterFS(NUFA)@4: initialized disks vs stock",
                App::Montage,
                base,
                v,
            )
        }),
        // A2: S3 client cache for the reuse-heavy application.
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::S3, 4).with_seed(seed);
            let mut v = base.clone();
            v.storage_cfgs = StorageConfigs {
                s3: Some(S3Config {
                    client_cache: false,
                    ..S3Config::default()
                }),
                ..StorageConfigs::default()
            };
            pair(
                "a2.broadband-s3-cache",
                "Broadband S3@4: whole-file client cache vs cache-less client",
                App::Broadband,
                base,
                v,
            )
        }),
        // A2b: the cache matters less when there is little reuse (§V.A).
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::S3, 2).with_seed(seed);
            let mut v = base.clone();
            v.storage_cfgs = StorageConfigs {
                s3: Some(S3Config {
                    client_cache: false,
                    ..S3Config::default()
                }),
                ..StorageConfigs::default()
            };
            pair(
                "a2.montage-s3-cache",
                "Montage S3@2: client cache vs cache-less (little reuse, small effect)",
                App::Montage,
                base,
                v,
            )
        }),
        // A3: data-aware scheduling (the paper's suggested improvement).
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::S3, 4).with_seed(seed);
            let mut v = base.clone();
            v.scheduler = SchedulerPolicy::DataAware;
            pair(
                "a3.broadband-s3-dataaware",
                "Broadband S3@4: locality-blind Condor matchmaking vs data-aware placement",
                App::Broadband,
                base,
                v,
            )
        }),
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::GlusterNufa, 4).with_seed(seed);
            let mut v = base.clone();
            v.scheduler = SchedulerPolicy::DataAware;
            pair(
                "a3.broadband-gluster-dataaware",
                "Broadband GlusterFS(NUFA)@4: locality-blind vs data-aware placement",
                App::Broadband,
                base,
                v,
            )
        }),
        // A4: dedicated NFS server vs overloading a worker.
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::Nfs, 2).with_seed(seed);
            let mut v = base.clone();
            v.storage_cfgs = StorageConfigs {
                nfs: Some(NfsConfig {
                    placement: NfsPlacement::OnWorker,
                    ..NfsConfig::default()
                }),
                ..StorageConfigs::default()
            };
            pair(
                "a4.montage-nfs-onworker",
                "Montage NFS@2: dedicated m1.xlarge server vs overloading a worker (§VI)",
                App::Montage,
                base,
                v,
            )
        }),
        // A5: the PVFS release the paper was stuck on.
        Box::new(move || {
            let base = RunConfig::cell(StorageKind::Pvfs, 4).with_seed(seed);
            let mut v = base.clone();
            v.storage_cfgs = StorageConfigs {
                pvfs: Some(PvfsConfig::optimized()),
                ..StorageConfigs::default()
            };
            pair(
                "a5.montage-pvfs-28",
                "Montage PVFS@4: 2.6.3 (no small-file optimizations) vs a ≥2.8 model",
                App::Montage,
                base,
                v,
            )
        }),
    ];
    let rows: Vec<AblationRow> = jobs.par_iter().map(|j| j()).collect();
    Ablations { rows }
}

/// Render the ablation table.
pub fn render(a: &Ablations) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "ABLATIONS — design choices quantified");
    for r in &a.rows {
        let _ = writeln!(
            s,
            "  {:<32} baseline {:>8.0}s -> variant {:>8.0}s  ({:+.1}%)",
            r.id,
            r.baseline.makespan_secs,
            r.variant.makespan_secs,
            (r.speed_ratio() - 1.0) * 100.0
        );
        let _ = writeln!(s, "      {}", r.description);
    }
    s
}
