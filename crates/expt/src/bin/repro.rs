//! Regenerate every table and figure of *Data Sharing Options for
//! Scientific Workflows on Amazon EC2* (Juve et al., SC 2010).
//!
//! ```text
//! cargo run --release -p expt --bin repro [-- --seed N] [--skip-ablations]
//! cargo run --release -p expt --bin repro -- --bench-smoke   # BENCH.json
//! ```
//!
//! Prints Table I, the §III.C disk microbenchmark, Figs 2–7, the XtreemFS
//! note, the ablation table and the shape-check scoreboard; writes the
//! whole dataset to `reports/repro-<seed>.json`.

use expt::figures::{runtime_figure, table1, xtreemfs_note};
use expt::{ablations, analysis, future_work, microbench, render, Report};
use std::time::Instant;
use wfgen::App;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let skip_ablations = args.iter().any(|a| a == "--skip-ablations");

    if args.iter().any(|a| a == "--bench-smoke") {
        // Quick kernel perf smoke: time the incremental engine against the
        // preserved reference solver and record the result in BENCH.json.
        let smoke = expt::perf::bench_smoke(20_000);
        print!("{}", expt::perf::render(&smoke));
        std::fs::write(
            "BENCH.json",
            serde_json::to_string_pretty(&smoke).expect("serialise bench smoke"),
        )
        .expect("write BENCH.json");
        println!("written to BENCH.json");
        return;
    }

    let t0 = Instant::now();
    println!("Reproducing Juve et al., SC 2010 (seed {seed})\n");

    let t1 = table1();
    print!("{}", render::table1(&t1));
    println!();

    let mb = microbench::run();
    print!("{}", render::microbench(&mb));
    println!();

    let mut figs = Vec::new();
    for (app, number) in [
        (App::Montage, 2u32),
        (App::Epigenome, 3),
        (App::Broadband, 4),
    ] {
        let t = Instant::now();
        let fig = runtime_figure(app, seed);
        print!("{}", render::runtime_figure(&fig, number));
        println!("  ({} cells in {:.1?})\n", fig.cells.len(), t.elapsed());
        figs.push(fig);
    }
    // Cost figures in the paper's numbering: 5=Montage, 6=Epigenome,
    // 7=Broadband.
    for (ix, number) in [(0usize, 5u32), (1, 6), (2, 7)] {
        let cf = expt::cost_figure(&figs[ix]);
        print!("{}", render::cost_figure(&cf, number));
        println!();
    }

    let x = xtreemfs_note(seed);
    print!("{}", render::xtreemfs(&x));
    println!();

    let abl = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let a = ablations::run(seed);
        print!("{}", ablations::render(&a));
        println!("  (ablations in {:.1?})\n", t.elapsed());
        Some(a)
    };

    let fw = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let f = future_work::run(&figs, seed);
        print!("{}", future_work::render(&f));
        println!("  (future work in {:.1?})\n", t.elapsed());
        Some(f)
    };

    let faults = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let study = expt::faults::run_f2(&App::ALL, seed);
        print!("{}", expt::faults::render(&study));
        println!("  (fault study in {:.1?})\n", t.elapsed());
        Some(study)
    };

    let clustering = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let rows = analysis::clustering_study(seed);
        print!("{}", analysis::render_clustering(&rows));
        println!("  (clustering study in {:.1?})\n", t.elapsed());
        Some(rows)
    };

    for fig in &figs {
        print!(
            "{}",
            analysis::render_speedup(fig.app, &analysis::speedup_table(fig))
        );
        println!();
    }

    {
        // E9: wrap the best measured makespans with provisioning and WAN
        // staging (the paper's excluded edges).
        let best = |ix: usize| -> f64 {
            figs[ix]
                .cells
                .iter()
                .filter(|c| c.cell.workers == 4 || c.cell.workers == 1)
                .map(|c| c.makespan_secs)
                .fold(f64::INFINITY, f64::min)
        };
        let rows = expt::staging::end_to_end(
            &[
                (wfgen::App::Montage, best(0)),
                (wfgen::App::Epigenome, best(1)),
                (wfgen::App::Broadband, best(2)),
            ],
            seed,
        );
        print!("{}", expt::staging::render(&rows));
        println!();
    }

    if !skip_ablations {
        println!("Seed robustness (Broadband @ 4 nodes, seeds 7/42/1234):");
        for r in analysis::seed_robustness(wfgen::App::Broadband, 4, &[7, 42, 1234]) {
            println!(
                "  {:<24} {:>7.0}s … {:>7.0}s (mean {:>7.0}s)",
                r.storage.label(),
                r.min_secs,
                r.max_secs,
                r.mean_secs
            );
        }
        println!();
        print!(
            "{}",
            analysis::bottleneck_report(wfgen::App::Broadband, expt::StorageKind::Nfs, 4, seed)
        );
        println!();
    }

    let report = Report::assemble(seed, t1, mb, figs, x, abl, fw, faults, clustering);
    print!("{}", render::shape_checks(&report.checks));

    let (passed, total) = report.score();
    std::fs::create_dir_all("reports").expect("create reports/");
    let path = format!("reports/repro-{seed}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialise report"),
    )
    .expect("write report");
    for fig in &report.runtime_figures {
        let label = fig.app.label().to_lowercase();
        std::fs::write(
            format!("reports/runtime-{label}-{seed}.csv"),
            render::runtime_csv(fig),
        )
        .expect("write runtime csv");
    }
    for cf in &report.cost_figures {
        let label = cf.app.label().to_lowercase();
        std::fs::write(
            format!("reports/cost-{label}-{seed}.csv"),
            render::cost_csv(cf),
        )
        .expect("write cost csv");
    }
    println!("\n{passed}/{total} shape checks passed; full dataset written to {path}");
    println!("total wall time {:.1?}", t0.elapsed());
}
