//! Regenerate every table and figure of *Data Sharing Options for
//! Scientific Workflows on Amazon EC2* (Juve et al., SC 2010).
//!
//! ```text
//! cargo run --release -p expt --bin repro [-- --seed N] [--skip-ablations]
//! cargo run --release -p expt --bin repro -- --bench-smoke   # BENCH.json
//! ```
//!
//! Prints Table I, the §III.C disk microbenchmark, Figs 2–7, the XtreemFS
//! note, the ablation table and the shape-check scoreboard; writes the
//! whole dataset to `reports/repro-<seed>.json`.

use expt::figures::{runtime_figure, table1, xtreemfs_note};
use expt::{ablations, analysis, future_work, microbench, render, Report};
use std::time::Instant;
use wfgen::App;

/// Path of the checked-in golden digest, relative to the repo root
/// (where `scripts/verify.sh` runs).
const GOLDEN_PATH: &str = "tests/golden_digest.txt";

/// Path of the checked-in golden OTLP trace.
const GOLDEN_OTLP_PATH: &str = "tests/golden_otlp.json";

/// The fixed golden workflow: a small diamond, run on GlusterFS/NUFA
/// with 2 workers, seed 42.
fn golden_workflow() -> wfdag::Workflow {
    let mut b = wfdag::WorkflowBuilder::new("golden");
    let fin = b.file("in.dat", 5_000_000);
    let f1 = b.file("f1.dat", 5_000_000);
    let f2 = b.file("f2.dat", 5_000_000);
    let f3 = b.file("f3.dat", 5_000_000);
    let fout = b.file("out.dat", 5_000_000);
    b.task("a", "gen", 2.0, 100 << 20, vec![fin], vec![f1, f2]);
    b.task("b", "lhs", 3.0, 100 << 20, vec![f1], vec![f3]);
    b.task("c", "rhs", 3.0, 100 << 20, vec![f2], vec![fout]);
    let f4 = b.file("out2.dat", 5_000_000);
    b.task("d", "join", 1.0, 100 << 20, vec![f3], vec![f4]);
    b.build().expect("golden workflow is well-formed")
}

/// Run the golden workflow and return its run digest. Any change to
/// event ordering, payloads or timing anywhere in the stack moves this
/// value; `verify.sh` compares it against [`GOLDEN_PATH`].
fn golden_digest_run() -> u64 {
    let cfg = wfengine::RunConfig::cell(expt::StorageKind::GlusterNufa, 2)
        .with_seed(42)
        .with_obs(wfobs::ObsLevel::Digest);
    wfengine::run_workflow(golden_workflow(), cfg)
        .expect("golden run succeeds")
        .digest
        .expect("digest present at ObsLevel::Digest")
}

/// Run the golden workflow at Full observability and render its OTLP
/// trace document. Pins the whole export pipeline — event stream, span
/// mapping, id derivation, JSON shape — byte for byte; `verify.sh`
/// compares it against [`GOLDEN_OTLP_PATH`].
fn golden_otlp_run() -> String {
    let wf = golden_workflow();
    let cfg = wfengine::RunConfig::cell(expt::StorageKind::GlusterNufa, 2)
        .with_seed(42)
        .with_obs(wfobs::ObsLevel::Full);
    let stats = wfengine::run_workflow(wf.clone(), cfg).expect("golden run succeeds");
    let report = stats.obs.as_ref().expect("report present at Full");
    let labels = wfengine::otlp_labels(&stats, &wf, expt::StorageKind::GlusterNufa.label(), 2);
    let doc = wfobs::otlp_trace(report, &labels);
    assert_eq!(
        doc,
        wfobs::otlp_trace(report, &labels),
        "OTLP export must be byte-deterministic"
    );
    doc
}

/// One engine's best wall time recorded in an existing `BENCH.json`, if
/// present and well-formed.
fn baseline_min_ms(doc: &serde_json::Value, engine: &str) -> Option<f64> {
    for e in doc.get("engines")?.as_array()? {
        if matches!(e.get("engine"), Some(serde_json::Value::Str(s)) if s == engine) {
            return match e.get("min_ms")? {
                serde_json::Value::F64(f) => Some(*f),
                serde_json::Value::I64(n) => Some(*n as f64),
                serde_json::Value::U64(n) => Some(*n as f64),
                _ => None,
            };
        }
    }
    None
}

/// The committed baseline for the disabled-bus regression gate:
/// `(incremental min_ms, naive min_ms)` from the existing `BENCH.json`.
fn bench_baseline() -> Option<(f64, f64)> {
    let text = std::fs::read_to_string("BENCH.json").ok()?;
    let doc: serde_json::Value = serde_json::from_str(&text).ok()?;
    Some((
        baseline_min_ms(&doc, "incremental")?,
        baseline_min_ms(&doc, "naive")?,
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let skip_ablations = args.iter().any(|a| a == "--skip-ablations");

    if args.iter().any(|a| a == "--golden-digest") {
        // Replay-verification golden check: the tiny fixed workflow must
        // reproduce the checked-in digest bit for bit.
        let hex = format!("{:016x}", golden_digest_run());
        if args.iter().any(|a| a == "--update") {
            std::fs::write(GOLDEN_PATH, format!("{hex}\n")).expect("write golden digest");
            println!("golden digest updated: {hex} -> {GOLDEN_PATH}");
            return;
        }
        let want = std::fs::read_to_string(GOLDEN_PATH)
            .unwrap_or_else(|e| panic!("read {GOLDEN_PATH} (run with --update to create): {e}"));
        if want.trim() != hex {
            eprintln!(
                "golden digest mismatch: got {hex}, expected {} — the event \
                 stream of the fixed workflow changed; if intentional, rerun \
                 with --golden-digest --update",
                want.trim()
            );
            std::process::exit(1);
        }
        println!("golden digest ok: {hex}");
        return;
    }

    if args.iter().any(|a| a == "--golden-otlp") {
        // Export-conformance golden check: the fixed workflow's OTLP
        // trace must reproduce the checked-in document byte for byte.
        let doc = golden_otlp_run();
        if args.iter().any(|a| a == "--update") {
            std::fs::write(GOLDEN_OTLP_PATH, &doc).expect("write golden OTLP");
            println!(
                "golden OTLP updated: {} bytes -> {GOLDEN_OTLP_PATH}",
                doc.len()
            );
            return;
        }
        let want = std::fs::read_to_string(GOLDEN_OTLP_PATH).unwrap_or_else(|e| {
            panic!("read {GOLDEN_OTLP_PATH} (run with --update to create): {e}")
        });
        if want != doc {
            eprintln!(
                "golden OTLP mismatch ({} bytes vs expected {}) — the exported \
                 span tree of the fixed workflow changed; if intentional, rerun \
                 with --golden-otlp --update",
                doc.len(),
                want.len()
            );
            std::process::exit(1);
        }
        println!("golden OTLP ok: {} bytes", doc.len());
        return;
    }

    if args.iter().any(|a| a == "--bench-smoke") {
        // Quick kernel perf smoke: time the incremental engine against the
        // preserved reference solver and record the result in BENCH.json.
        //
        // The kernel hot path runs with the event bus disabled; hold it to
        // within 5% of the committed baseline so instrumentation cost can
        // never creep into the default configuration unnoticed (the digest
        // bus alone costs ~15% on this path, so a real leak clears 5% by a
        // wide margin). Raw wall time shifts with machine load, so the
        // comparison is normalized by the co-measured reference solver
        // (both engines run unchanged byte-for-byte code in the same
        // process, so a sustained slowdown moves them together), and a
        // violation is re-measured up to twice before it is declared a
        // regression. The tolerance must stay above the benchmark's own
        // run-to-run jitter of min_ms on shared hosts (observed >2%),
        // because each passing run rewrites the baseline and a lucky fast
        // sample would otherwise fail every honest run after it.
        let baseline = bench_baseline();
        let mut smoke = expt::perf::bench_smoke(20_000);
        print!("{}", expt::perf::render(&smoke));
        if let Some((old_inc, old_naive)) = baseline {
            let minutes = |s: &expt::perf::BenchSmoke, name: &str| {
                s.engines
                    .iter()
                    .find(|e| e.engine == name)
                    .expect("engine timing present")
                    .min_ms
            };
            for attempt in 1..=3u32 {
                let inc = minutes(&smoke, "incremental");
                let naive = minutes(&smoke, "naive");
                let scale = naive / old_naive;
                let bound = old_inc * scale * 1.05;
                println!(
                    "  disabled-bus check: {inc:.2}ms vs baseline {old_inc:.2}ms \
                     × load {scale:.3} → bound {bound:.2}ms"
                );
                if inc <= bound {
                    break;
                }
                if attempt == 3 {
                    eprintln!(
                        "disabled-bus kernel path regressed: {inc:.2}ms vs \
                         load-normalized bound {bound:.2}ms (>2%) on 3 attempts"
                    );
                    std::process::exit(1);
                }
                println!("  over bound — re-measuring ({attempt}/3)…");
                smoke = expt::perf::bench_smoke(20_000);
                print!("{}", expt::perf::render(&smoke));
            }
        }
        std::fs::write(
            "BENCH.json",
            serde_json::to_string_pretty(&smoke).expect("serialise bench smoke"),
        )
        .expect("write BENCH.json");
        println!("written to BENCH.json");
        return;
    }

    let t0 = Instant::now();
    println!("Reproducing Juve et al., SC 2010 (seed {seed})\n");

    let t1 = table1();
    print!("{}", render::table1(&t1));
    println!();

    let mb = microbench::run();
    print!("{}", render::microbench(&mb));
    println!();

    let mut figs = Vec::new();
    for (app, number) in [
        (App::Montage, 2u32),
        (App::Epigenome, 3),
        (App::Broadband, 4),
    ] {
        let t = Instant::now();
        let fig = runtime_figure(app, seed);
        print!("{}", render::runtime_figure(&fig, number));
        println!("  ({} cells in {:.1?})\n", fig.cells.len(), t.elapsed());
        figs.push(fig);
    }
    // Cost figures in the paper's numbering: 5=Montage, 6=Epigenome,
    // 7=Broadband.
    for (ix, number) in [(0usize, 5u32), (1, 6), (2, 7)] {
        let cf = expt::cost_figure(&figs[ix]);
        print!("{}", render::cost_figure(&cf, number));
        println!();
    }

    let x = xtreemfs_note(seed);
    print!("{}", render::xtreemfs(&x));
    println!();

    let abl = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let a = ablations::run(seed);
        print!("{}", ablations::render(&a));
        println!("  (ablations in {:.1?})\n", t.elapsed());
        Some(a)
    };

    let fw = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let f = future_work::run(&figs, seed);
        print!("{}", future_work::render(&f));
        println!("  (future work in {:.1?})\n", t.elapsed());
        Some(f)
    };

    let faults = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let study = expt::faults::run_f2(&App::ALL, seed);
        print!("{}", expt::faults::render(&study));
        println!("  (fault study in {:.1?})\n", t.elapsed());
        Some(study)
    };

    let clustering = if skip_ablations {
        None
    } else {
        let t = Instant::now();
        let rows = analysis::clustering_study(seed);
        print!("{}", analysis::render_clustering(&rows));
        println!("  (clustering study in {:.1?})\n", t.elapsed());
        Some(rows)
    };

    for fig in &figs {
        print!(
            "{}",
            analysis::render_speedup(fig.app, &analysis::speedup_table(fig))
        );
        println!();
    }

    {
        // E9: wrap the best measured makespans with provisioning and WAN
        // staging (the paper's excluded edges).
        let best = |ix: usize| -> f64 {
            figs[ix]
                .cells
                .iter()
                .filter(|c| c.cell.workers == 4 || c.cell.workers == 1)
                .map(|c| c.makespan_secs)
                .fold(f64::INFINITY, f64::min)
        };
        let rows = expt::staging::end_to_end(
            &[
                (wfgen::App::Montage, best(0)),
                (wfgen::App::Epigenome, best(1)),
                (wfgen::App::Broadband, best(2)),
            ],
            seed,
        );
        print!("{}", expt::staging::render(&rows));
        println!();
    }

    if !skip_ablations {
        println!("Seed robustness (Broadband @ 4 nodes, seeds 7/42/1234):");
        for r in analysis::seed_robustness(wfgen::App::Broadband, 4, &[7, 42, 1234]) {
            println!(
                "  {:<24} {:>7.0}s … {:>7.0}s (mean {:>7.0}s)",
                r.storage.label(),
                r.min_secs,
                r.max_secs,
                r.mean_secs
            );
        }
        println!();
        print!(
            "{}",
            analysis::bottleneck_report(wfgen::App::Broadband, expt::StorageKind::Nfs, 4, seed)
        );
        println!();
    }

    let report = Report::assemble(seed, t1, mb, figs, x, abl, fw, faults, clustering);
    print!("{}", render::shape_checks(&report.checks));

    let (passed, total) = report.score();
    std::fs::create_dir_all("reports").expect("create reports/");
    let path = format!("reports/repro-{seed}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialise report"),
    )
    .expect("write report");
    for fig in &report.runtime_figures {
        let label = fig.app.label().to_lowercase();
        std::fs::write(
            format!("reports/runtime-{label}-{seed}.csv"),
            render::runtime_csv(fig),
        )
        .expect("write runtime csv");
    }
    for cf in &report.cost_figures {
        let label = cf.app.label().to_lowercase();
        std::fs::write(
            format!("reports/cost-{label}-{seed}.csv"),
            render::cost_csv(cf),
        )
        .expect("write cost csv");
    }
    println!("\n{passed}/{total} shape checks passed; full dataset written to {path}");
    println!("total wall time {:.1?}", t0.elapsed());
}
