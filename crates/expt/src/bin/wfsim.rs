//! `wfsim` — a command-line driver for the simulator, for users who want
//! to poke at configurations without writing Rust.
//!
//! ```text
//! wfsim run    --app montage --storage glusterfs-nufa --workers 4
//!              [--tiny] [--seed N] [--data-aware] [--cluster K]
//!              [--failures P --retries K] [--gantt] [--live]
//!              [--trace FILE] [--trace-out FILE] [--metrics-out FILE]
//!              [--digest] [--otlp-out DIR] [--folded-out FILE]
//! wfsim sweep  --app broadband [--tiny] [--seed N]
//! wfsim profile --app epigenome
//! wfsim export --app montage --tiny --out montage.json
//! wfsim run    --dax montage.json --storage s3 --workers 2
//! wfsim bottleneck --app broadband --storage nfs --workers 4 [--tiny]
//! ```
//!
//! Unknown options are rejected with a "did you mean" hint — a typo like
//! `--otpl-out` fails fast instead of silently running without export.

use std::collections::HashMap;
use wfcost::{BillingGranularity, CostModel};
use wfdag::{cluster_horizontal, Workflow};
use wfengine::{
    jobstate_log, phase_breakdown, run_workflow, run_workflow_with_obs, trace, FailureModel,
    RunConfig, SchedulerPolicy,
};
use wfgen::{classify, profile, App};
use wfstorage::{cluster_spec_for, StorageKind};

fn parse_storage(s: &str) -> StorageKind {
    match s {
        "local" => StorageKind::Local,
        "nfs" => StorageKind::Nfs,
        "glusterfs-nufa" | "nufa" => StorageKind::GlusterNufa,
        "glusterfs-distribute" | "distribute" => StorageKind::GlusterDistribute,
        "pvfs" => StorageKind::Pvfs,
        "s3" => StorageKind::S3,
        "xtreemfs" => StorageKind::XtreemFs,
        "direct" | "direct-transfer" => StorageKind::DirectTransfer,
        other => die(&format!("unknown storage {other:?}")),
    }
}

fn parse_app(s: &str) -> App {
    match s {
        "montage" => App::Montage,
        "broadband" => App::Broadband,
        "epigenome" => App::Epigenome,
        other => die(&format!(
            "unknown app {other:?} (montage|broadband|epigenome)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("wfsim: {msg}");
    eprintln!("try: wfsim run --app montage --storage glusterfs-nufa --workers 4 --tiny");
    std::process::exit(2);
}

struct Args {
    flags: Vec<String>,
    opts: HashMap<String, String>,
}

// Per-subcommand vocabularies: options take a value, flags don't.
const RUN_OPTS: &[&str] = &[
    "dax",
    "app",
    "cluster",
    "storage",
    "workers",
    "seed",
    "failures",
    "retries",
    "trace",
    "trace-out",
    "metrics-out",
    "otlp-out",
    "folded-out",
];
const RUN_FLAGS: &[&str] = &[
    "tiny",
    "data-aware",
    "init-disks",
    "gantt",
    "digest",
    "live",
];
const SWEEP_OPTS: &[&str] = &["app", "seed"];
const SWEEP_FLAGS: &[&str] = &["tiny"];
const PROFILE_OPTS: &[&str] = &["app"];
const EXPORT_OPTS: &[&str] = &["dax", "app", "out", "cluster"];
const EXPORT_FLAGS: &[&str] = &["tiny"];
const BOTTLENECK_OPTS: &[&str] = &["app", "storage", "workers"];
const BOTTLENECK_FLAGS: &[&str] = &["tiny"];

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn closest<'a>(key: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .map(|c| (levenshtein(key, c), c))
        .filter(|&(d, _)| d <= 3)
        .min()
        .map(|(_, c)| c)
}

/// Parse `--key value` options and `--flag` switches against the
/// subcommand's vocabulary. Anything unrecognised is a hard error with a
/// nearest-match hint — silent typos have cost real runs their exports.
fn parse_args(cmd: &str, argv: &[String], opt_keys: &[&str], flag_keys: &[&str]) -> Args {
    let mut flags = Vec::new();
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        let Some(key) = a.strip_prefix("--") else {
            die(&format!("unexpected argument {a:?} for `wfsim {cmd}`"));
        };
        if opt_keys.contains(&key) {
            match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(v) => {
                    opts.insert(key.to_string(), v.clone());
                    i += 2;
                }
                None => die(&format!("--{key} requires a value")),
            }
        } else if flag_keys.contains(&key) {
            flags.push(key.to_string());
            i += 1;
        } else {
            let mut msg = format!("unknown option --{key} for `wfsim {cmd}`");
            if let Some(s) = closest(key, opt_keys.iter().chain(flag_keys.iter()).copied()) {
                msg.push_str(&format!(" (did you mean --{s}?)"));
            }
            die(&msg);
        }
    }
    Args { flags, opts }
}

fn load_workflow(args: &Args) -> Workflow {
    if let Some(path) = args.opts.get("dax") {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        return wfdag::from_json(&json).unwrap_or_else(|e| die(&format!("bad workflow: {e}")));
    }
    let app = parse_app(
        args.opts
            .get("app")
            .unwrap_or_else(|| die("--app or --dax required")),
    );
    let mut wf = if args.flags.iter().any(|f| f == "tiny") {
        app.tiny_workflow()
    } else {
        app.paper_workflow()
    };
    if let Some(k) = args.opts.get("cluster") {
        let k: u32 = k
            .parse()
            .unwrap_or_else(|_| die("--cluster must be a number"));
        wf = cluster_horizontal(&wf, k);
    }
    wf
}

fn build_config(args: &Args) -> RunConfig {
    let storage = parse_storage(args.opts.get("storage").map_or("glusterfs-nufa", |s| s));
    let workers: u32 = args
        .opts
        .get("workers")
        .map_or(Ok(2), |w| w.parse())
        .unwrap_or_else(|_| die("--workers must be a number"));
    let mut cfg = RunConfig::cell(storage, workers);
    if let Some(seed) = args.opts.get("seed") {
        cfg.seed = seed
            .parse()
            .unwrap_or_else(|_| die("--seed must be a number"));
    }
    if args.flags.iter().any(|f| f == "data-aware") {
        cfg.scheduler = SchedulerPolicy::DataAware;
    }
    if args.flags.iter().any(|f| f == "init-disks") {
        cfg.initialize_disks = true;
    }
    if let Some(p) = args.opts.get("failures") {
        let prob: f64 = p
            .parse()
            .unwrap_or_else(|_| die("--failures must be a probability"));
        let max_retries: u32 = args
            .opts
            .get("retries")
            .map_or(Ok(3), |r| r.parse())
            .unwrap_or_else(|_| die("--retries must be a number"));
        cfg.failures = Some(FailureModel { prob, max_retries });
    }
    cfg
}

/// Node labels and billing rates for the live viewer, mirroring the
/// cluster the engine will provision: workers `w0..wn-1` first, then the
/// storage server (`srv`) when the backend uses one.
fn tui_config(wf: &Workflow, cfg: &RunConfig, backend: &str) -> wfobs::TuiConfig {
    let spec = cluster_spec_for(cfg.storage, cfg.workers, cfg.server_type);
    let rate = |t: vcluster::InstanceType| wfobs::NodeRate {
        cents_per_hour: t.price_cents_per_hour(),
        spot_cents_per_hour: t.spot_price_cents_per_hour(),
    };
    let mut node_names: Vec<String> = (0..spec.workers).map(|i| format!("w{i}")).collect();
    let mut node_rates: Vec<wfobs::NodeRate> =
        (0..spec.workers).map(|_| rate(spec.worker_type)).collect();
    if let Some(srv) = spec.storage_server {
        node_names.push("srv".to_owned());
        node_rates.push(rate(srv));
    }
    wfobs::TuiConfig {
        title: wf.name.clone(),
        backend: backend.to_owned(),
        total_tasks: wf.task_count() as u32,
        task_names: wf.tasks().iter().map(|t| t.name.clone()).collect(),
        node_names,
        node_rates,
        ..wfobs::TuiConfig::default()
    }
}

fn cmd_run(args: &Args) {
    let wf = load_workflow(args);
    let mut cfg = build_config(args);
    // Exporters need the recorded event stream; everything else runs at
    // Digest level (streaming hash + sink fan-out, bounded memory) so the
    // end-of-run summary always has a digest to report.
    cfg.obs = if args.opts.contains_key("trace-out")
        || args.opts.contains_key("metrics-out")
        || args.opts.contains_key("otlp-out")
        || args.opts.contains_key("folded-out")
    {
        wfobs::ObsLevel::Full
    } else {
        wfobs::ObsLevel::Digest
    };
    let workers = cfg.workers;
    let storage_label = cfg.storage.label();
    println!(
        "running {} ({} tasks) on {} with {} worker(s)…",
        wf.name,
        wf.task_count(),
        storage_label,
        workers
    );
    let wf_for_log = wf.clone();
    let obs = wfobs::ObsHandle::new(cfg.obs, cfg.seed);
    if args.flags.iter().any(|f| f == "live") {
        let (cols, rows) = wfobs::term_size_from_env();
        obs.set_tick_interval(wfobs::DEFAULT_TICK_NANOS);
        obs.add_sink(Box::new(wfobs::LiveSink::new(
            tui_config(&wf_for_log, &cfg, storage_label),
            wfobs::detect_live_mode(),
            cols,
            rows,
        )));
    }
    match run_workflow_with_obs(wf, cfg, obs) {
        Ok(stats) => {
            println!(
                "makespan {:.1}s  events {}  retries {}  io-fraction {:.1}%",
                stats.makespan_secs,
                stats.events,
                stats.retries,
                stats.io_fraction() * 100.0
            );
            print!("{}", trace::render_phases(&phase_breakdown(&stats)));
            print!("{}", trace::hottest_resources(&stats, 6));
            if args.flags.iter().any(|f| f == "gantt") {
                print!("{}", trace::render_gantt(&stats, workers, 72));
            }
            if let Some(path) = args.opts.get("trace") {
                std::fs::write(path, jobstate_log(&stats, &wf_for_log))
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("jobstate trace written to {path}");
            }
            if let Some(path) = args.opts.get("trace-out") {
                let report = stats.obs.as_ref().expect("Full level records a report");
                let labels = wfobs::ChromeLabels {
                    task_names: wf_for_log.tasks().iter().map(|t| t.name.clone()).collect(),
                    node_names: Vec::new(),
                };
                std::fs::write(path, wfobs::chrome_trace(report, &labels))
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("chrome trace written to {path} (open in chrome://tracing)");
            }
            if let Some(path) = args.opts.get("metrics-out") {
                let report = stats.obs.as_ref().expect("Full level records a report");
                std::fs::write(path, report.metrics.to_csv())
                    .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("metrics written to {path}");
            }
            if let Some(dir) = args.opts.get("otlp-out") {
                let report = stats.obs.as_ref().expect("Full level records a report");
                let labels = trace::otlp_labels(&stats, &wf_for_log, storage_label, workers);
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| die(&format!("cannot create {dir}: {e}")));
                let traces = format!("{dir}/traces.json");
                let metrics = format!("{dir}/metrics.json");
                std::fs::write(&traces, wfobs::otlp_trace(report, &labels))
                    .unwrap_or_else(|e| die(&format!("cannot write {traces}: {e}")));
                std::fs::write(&metrics, wfobs::otlp_metrics(report, &labels))
                    .unwrap_or_else(|e| die(&format!("cannot write {metrics}: {e}")));
                println!(
                    "OTLP trace + metrics written to {dir}/ (POST to an OTLP/HTTP \
                     collector's /v1/traces and /v1/metrics)"
                );
            }
            if let Some(path) = args.opts.get("folded-out") {
                let report = stats.obs.as_ref().expect("Full level records a report");
                let task_names: Vec<String> =
                    wf_for_log.tasks().iter().map(|t| t.name.clone()).collect();
                std::fs::write(
                    path,
                    wfobs::folded_storage_stacks(report, &task_names, storage_label),
                )
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
                println!("folded stacks written to {path} (feed to flamegraph.pl)");
            }
            if let Some(d) = stats.digest {
                println!("run digest {d:016x}");
            }
            // One-line machine-greppable summary on stderr, so runs
            // without exporters aren't silent.
            let cost = CostModel::default()
                .segments_cents(&stats.faults.segments, BillingGranularity::PerHour)
                / 100.0;
            let f = &stats.faults;
            let fault_count = f.node_crashes + f.spot_terminations + f.storage_failures;
            let digest = stats
                .digest
                .map_or_else(|| "-".to_owned(), |d| format!("{d:016x}"));
            eprintln!(
                "wfsim: makespan {:.1}s cost ${cost:.2} digest {digest} faults {fault_count}",
                stats.makespan_secs
            );
        }
        Err(e) => die(&format!("run failed: {e}")),
    }
}

fn cmd_sweep(args: &Args) {
    let app = parse_app(
        args.opts
            .get("app")
            .unwrap_or_else(|| die("--app required")),
    );
    let seed = args
        .opts
        .get("seed")
        .map_or(Ok(42), |s| s.parse())
        .unwrap_or_else(|_| die("--seed must be a number"));
    if args.flags.iter().any(|f| f == "tiny") {
        println!("{:<24} {:>6} {:>10}", "storage", "nodes", "makespan");
        for storage in StorageKind::EVALUATED {
            for n in [1u32, 2, 4, 8] {
                if !expt::Cell::new(app, storage, n).is_valid() {
                    continue;
                }
                let stats = run_workflow(
                    app.tiny_workflow(),
                    RunConfig::cell(storage, n).with_seed(seed),
                )
                .unwrap_or_else(|e| die(&format!("{storage:?}@{n}: {e}")));
                println!(
                    "{:<24} {:>6} {:>9.1}s",
                    storage.label(),
                    n,
                    stats.makespan_secs
                );
            }
        }
        return;
    }
    let fig = expt::runtime_figure(app, seed);
    let number = match app {
        App::Montage => 2,
        App::Epigenome => 3,
        App::Broadband => 4,
    };
    print!("{}", expt::render::runtime_figure(&fig, number));
    print!(
        "{}",
        expt::analysis::render_speedup(app, &expt::analysis::speedup_table(&fig))
    );
}

fn cmd_profile(args: &Args) {
    let app = parse_app(
        args.opts
            .get("app")
            .unwrap_or_else(|| die("--app required")),
    );
    let p = profile(&app.paper_workflow());
    let u = classify(&p);
    println!("{app}:");
    println!("  io bytes            {:>14}", p.io_bytes);
    println!("  cpu seconds         {:>14.0}", p.cpu_secs);
    println!("  bytes / cpu-second  {:>14.0}", p.io_bytes_per_cpu_sec);
    println!("  cpu-time fraction   {:>14.2}", p.cpu_time_fraction);
    println!("  cpu share >1 GiB    {:>14.2}", p.cpu_frac_over_1gib);
    println!(
        "  grades              io={} memory={} cpu={}",
        u.io, u.memory, u.cpu
    );
}

fn cmd_export(args: &Args) {
    let wf = load_workflow(args);
    let out = args
        .opts
        .get("out")
        .unwrap_or_else(|| die("--out required"));
    std::fs::write(out, wfdag::to_json(&wf))
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "{} tasks / {} files written to {out}",
        wf.task_count(),
        wf.file_count()
    );
}

fn cmd_bottleneck(args: &Args) {
    let app = parse_app(
        args.opts
            .get("app")
            .unwrap_or_else(|| die("--app required")),
    );
    let storage = parse_storage(args.opts.get("storage").map_or("nfs", |s| s));
    let workers: u32 = args
        .opts
        .get("workers")
        .map_or(Ok(4), |w| w.parse())
        .unwrap_or_else(|_| die("--workers must be a number"));
    let tiny = args.flags.iter().any(|f| f == "tiny");
    print!(
        "{}",
        expt::analysis::bottleneck_report_sized(app, storage, workers, 42, tiny)
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        die("missing subcommand (run|sweep|profile|export|bottleneck)");
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "run" => cmd_run(&parse_args("run", rest, RUN_OPTS, RUN_FLAGS)),
        "sweep" => cmd_sweep(&parse_args("sweep", rest, SWEEP_OPTS, SWEEP_FLAGS)),
        "profile" => cmd_profile(&parse_args("profile", rest, PROFILE_OPTS, &[])),
        "export" => cmd_export(&parse_args("export", rest, EXPORT_OPTS, EXPORT_FLAGS)),
        "bottleneck" => cmd_bottleneck(&parse_args(
            "bottleneck",
            rest,
            BOTTLENECK_OPTS,
            BOTTLENECK_FLAGS,
        )),
        other => die(&format!("unknown subcommand {other:?}")),
    }
}
