//! The serialisable reproduction report: everything `repro` regenerates.

use crate::ablations::Ablations;
use crate::analysis::{ClusteringRow, SpeedupRow};
use crate::faults::FaultStudy;
use crate::figures::{cost_figure, CostFigure, RuntimeFigure, Table1, XtreemFsNote};
use crate::future_work::FutureWork;
use crate::microbench::DiskMicrobench;
use crate::shape::ShapeCheck;
use serde::{Deserialize, Serialize};

/// A complete regeneration of the paper's evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Experiment seed.
    pub seed: u64,
    /// Table I.
    pub table1: Table1,
    /// §III.C disk microbenchmark.
    pub microbench: DiskMicrobench,
    /// Figs 2–4 (runtime) data.
    pub runtime_figures: Vec<RuntimeFigure>,
    /// Figs 5–7 (cost) data, derived from the same cells.
    pub cost_figures: Vec<CostFigure>,
    /// The XtreemFS anecdote.
    pub xtreemfs: XtreemFsNote,
    /// Ablations A1–A5.
    pub ablations: Option<Ablations>,
    /// F1: the §VIII future-work comparison.
    pub future_work: Option<FutureWork>,
    /// F2: the fault-injection study.
    pub faults: Option<FaultStudy>,
    /// A6: the horizontal-clustering study.
    pub clustering: Option<Vec<ClusteringRow>>,
    /// Speedup/efficiency tables derived from the runtime figures.
    pub speedups: Vec<SpeedupRow>,
    /// Shape-check scoreboard.
    pub checks: Vec<ShapeCheck>,
}

impl Report {
    /// Assemble a report from regenerated pieces.
    #[allow(clippy::too_many_arguments)] // one parameter per regenerated artifact
    pub fn assemble(
        seed: u64,
        table1: Table1,
        microbench: DiskMicrobench,
        runtime_figures: Vec<RuntimeFigure>,
        xtreemfs: XtreemFsNote,
        ablations: Option<Ablations>,
        future_work: Option<FutureWork>,
        faults: Option<FaultStudy>,
        clustering: Option<Vec<ClusteringRow>>,
    ) -> Report {
        let mut checks = crate::shape::check_all(&runtime_figures, &table1, &xtreemfs);
        if let Some(study) = &faults {
            checks.extend(crate::faults::check_f2(study));
        }
        let cost_figures = runtime_figures.iter().map(cost_figure).collect();
        let speedups = runtime_figures
            .iter()
            .flat_map(crate::analysis::speedup_table)
            .collect();
        Report {
            seed,
            table1,
            microbench,
            runtime_figures,
            cost_figures,
            xtreemfs,
            ablations,
            future_work,
            faults,
            clustering,
            speedups,
            checks,
        }
    }

    /// Count of (passed, total) shape checks.
    pub fn score(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|c| c.passed).count(),
            self.checks.len(),
        )
    }
}
