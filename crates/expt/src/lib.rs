//! # expt — the reproduction harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md's
//! per-experiment index):
//!
//! * Table I — [`figures::table1`] (E1)
//! * §III.C disk microbenchmarks — [`microbench`] (E0)
//! * Figs 2–4 (runtimes) — [`figures::runtime_figure`] (E2–E4)
//! * Figs 5–7 (costs) — [`figures::cost_figure`] (E5–E7)
//! * XtreemFS note — [`figures::xtreemfs_note`] (E8)
//! * Ablations A1–A5 — [`ablations`]
//! * F1 future work (direct node-to-node transfers) — [`future_work`]
//! * F2 fault injection and recovery (beyond paper) — [`faults`]
//! * E9 end-to-end provisioning + WAN staging (beyond paper) — [`staging`]
//! * Qualitative shape checks against §V–§VI claims — [`shape`]
//!
//! Binary: `cargo run --release -p expt --bin repro` prints every
//! table/figure, runs the shape checks, and writes JSON reports under
//! `reports/`.

#![warn(missing_docs)]

pub mod ablations;
pub mod analysis;
pub mod faults;
pub mod figures;
pub mod future_work;
pub mod grid;
pub mod microbench;
pub mod perf;
pub mod render;
pub mod report;
pub mod shape;
pub mod staging;

pub use faults::{FaultRow, FaultScenario, FaultStudy};
pub use figures::{cost_figure, runtime_figure, table1, xtreemfs_note, RuntimeFigure, Table1};
pub use grid::{figure_cells, run_cell, run_cell_with, run_cells, Cell, CellResult, NODE_COUNTS};
pub use report::Report;
pub use shape::ShapeCheck;

// Re-exported so downstream code can name the axes without extra deps.
pub use wfgen::App;
pub use wfstorage::StorageKind;
