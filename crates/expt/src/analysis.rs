//! Secondary analyses over the regenerated data: speedup/efficiency,
//! seed robustness, bottleneck identification, and the clustering study.

use crate::figures::RuntimeFigure;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wfdag::cluster_horizontal;
use wfengine::{phase_breakdown, run_workflow, RunConfig, RunStats};
use wfgen::App;
use wfstorage::StorageKind;

/// Speedup and parallel efficiency of one (storage, n) point, relative to
/// that storage option's smallest valid cluster.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Storage option.
    pub storage: StorageKind,
    /// Worker count.
    pub workers: u32,
    /// Makespan, seconds.
    pub makespan_secs: f64,
    /// T(base)/T(n).
    pub speedup: f64,
    /// speedup × base_workers / workers.
    pub efficiency: f64,
}

/// Compute the speedup table of a runtime figure (§VI's "adding resources
/// improves runtime but rarely cost" argument quantified).
pub fn speedup_table(fig: &RuntimeFigure) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for storage in StorageKind::EVALUATED {
        let points: Vec<_> = fig
            .cells
            .iter()
            .filter(|c| c.cell.storage == storage)
            .map(|c| (c.cell.workers, c.makespan_secs))
            .collect();
        let Some(&(base_n, base_t)) = points.first() else {
            continue;
        };
        for (n, t) in points {
            let speedup = base_t / t;
            rows.push(SpeedupRow {
                storage,
                workers: n,
                makespan_secs: t,
                speedup,
                efficiency: speedup * f64::from(base_n) / f64::from(n),
            });
        }
    }
    rows
}

/// Render the speedup table.
pub fn render_speedup(app: App, rows: &[SpeedupRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "SPEEDUP — {app}: scaling relative to each option's smallest cluster"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<24} n={:<2} {:>8.0}s  speedup {:>4.2}x  efficiency {:>5.1}%",
            r.storage.label(),
            r.workers,
            r.makespan_secs,
            r.speedup,
            r.efficiency * 100.0
        );
    }
    s
}

/// Seed-robustness: min/mean/max makespan over several engine seeds for
/// one (app, storage, workers) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Storage option.
    pub storage: StorageKind,
    /// Minimum makespan over the seeds.
    pub min_secs: f64,
    /// Mean makespan.
    pub mean_secs: f64,
    /// Maximum makespan.
    pub max_secs: f64,
}

/// Run `app` at `workers` nodes across `seeds` for every deployable
/// storage option and report the spread. The qualitative conclusions of
/// §V must not hinge on one lucky seed.
pub fn seed_robustness(app: App, workers: u32, seeds: &[u64]) -> Vec<RobustnessRow> {
    StorageKind::EVALUATED
        .into_iter()
        .filter(|s| crate::grid::Cell::new(app, *s, workers).is_valid())
        .map(|storage| {
            let times: Vec<f64> = seeds
                .par_iter()
                .map(|&seed| {
                    let cfg = RunConfig::cell(storage, workers).with_seed(seed);
                    run_workflow(app.paper_workflow(), cfg)
                        .expect("cell runs")
                        .makespan_secs
                })
                .collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            RobustnessRow {
                storage,
                min_secs: times.iter().copied().fold(f64::INFINITY, f64::min),
                mean_secs: mean,
                max_secs: times.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect()
}

/// Where one configuration's time went: run the cell and report the
/// phase breakdown plus the hottest resources.
pub fn bottleneck_report(app: App, storage: StorageKind, workers: u32, seed: u64) -> String {
    bottleneck_report_sized(app, storage, workers, seed, false)
}

/// [`bottleneck_report`] with a choice of workflow size; `tiny` swaps in
/// the shrunken workflow so a probe finishes in seconds.
pub fn bottleneck_report_sized(
    app: App,
    storage: StorageKind,
    workers: u32,
    seed: u64,
    tiny: bool,
) -> String {
    let cfg = RunConfig::cell(storage, workers).with_seed(seed);
    let wf = if tiny {
        app.tiny_workflow()
    } else {
        app.paper_workflow()
    };
    let stats = run_workflow(wf, cfg).expect("cell runs");
    let mut s = format!(
        "BOTTLENECKS — {app} on {} @ {workers} nodes ({:.0}s makespan)\n",
        storage.label(),
        stats.makespan_secs
    );
    s.push_str(&wfengine::trace::render_phases(&phase_breakdown(&stats)));
    s.push_str(&wfengine::trace::hottest_resources(&stats, 6));
    s
}

/// The clustering study (A6): Montage with horizontal clustering, the
/// standard Pegasus mitigation for its thousands of short tasks.
///
/// Clustering trades per-job dispatch overhead against lost pipelining
/// (a clustered job's I/O and compute no longer overlap with its
/// members'), so the study sweeps both the cluster size and the per-job
/// overhead: at our calibrated 0.25 s overhead clustering *loses*, while
/// at the ~2 s overheads a loaded 2010 Condor schedd exhibited it wins —
/// which is exactly when Pegasus deployments reached for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusteringRow {
    /// Storage option.
    pub storage: StorageKind,
    /// Per-job dispatch overhead, seconds.
    pub job_overhead_secs: f64,
    /// Cluster size (1 = the paper's unclustered runs).
    pub cluster_size: u32,
    /// Jobs after clustering.
    pub jobs: usize,
    /// Makespan, seconds.
    pub makespan_secs: f64,
    /// S3 GET+PUT requests (request fees scale with these).
    pub s3_requests: u64,
}

/// Run Montage at 4 workers with several cluster sizes and two per-job
/// overhead regimes, on the systems §V showed suffering most from
/// per-job costs.
pub fn clustering_study(seed: u64) -> Vec<ClusteringRow> {
    let mut combos = Vec::new();
    for storage in [StorageKind::S3, StorageKind::GlusterNufa] {
        for overhead in [0.25f64, 2.0] {
            for k in [1u32, 4, 16] {
                combos.push((storage, overhead, k));
            }
        }
    }
    combos
        .par_iter()
        .map(|&(storage, overhead, k)| {
            let wf = wfgen::montage(wfgen::MontageConfig::paper());
            let wf = cluster_horizontal(&wf, k);
            let jobs = wf.task_count();
            let mut cfg = RunConfig::cell(storage, 4).with_seed(seed);
            cfg.job_overhead = simcore::SimDuration::from_secs_f64(overhead);
            let stats: RunStats = run_workflow(wf, cfg).expect("clustered run");
            ClusteringRow {
                storage,
                job_overhead_secs: overhead,
                cluster_size: k,
                jobs,
                makespan_secs: stats.makespan_secs,
                s3_requests: stats.billing.s3_gets + stats.billing.s3_puts,
            }
        })
        .collect()
}

/// Render the clustering study.
pub fn render_clustering(rows: &[ClusteringRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "A6 — HORIZONTAL CLUSTERING (Montage @ 4 nodes): dispatch overhead vs lost pipelining"
    );
    let _ = writeln!(
        s,
        "  {:<24} {:>9} {:>5} {:>8} {:>10} {:>12}",
        "storage", "overhead", "k", "jobs", "makespan", "S3 requests"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<24} {:>8.2}s {:>5} {:>8} {:>9.0}s {:>12}",
            r.storage.label(),
            r.job_overhead_secs,
            r.cluster_size,
            r.jobs,
            r.makespan_secs,
            r.s3_requests
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::runtime_figure;

    #[test]
    fn speedup_table_is_monotone_for_scalable_systems() {
        let fig = runtime_figure(App::Epigenome, 42);
        let rows = speedup_table(&fig);
        let gluster: Vec<_> = rows
            .iter()
            .filter(|r| r.storage == StorageKind::GlusterNufa)
            .collect();
        assert_eq!(gluster.len(), 3);
        assert!(gluster.windows(2).all(|w| w[1].speedup >= w[0].speedup));
        assert!((gluster[0].speedup - 1.0).abs() < 1e-9);
        assert!(gluster.iter().all(|r| r.efficiency <= 1.05));
    }
}
