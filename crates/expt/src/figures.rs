//! Experiments E1–E8: regenerating every table and figure of the paper.

use crate::grid::{figure_cells, run_cell, run_cell_with, Cell, CellResult};
use crate::microbench::{self, DiskMicrobench};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vcluster::InstanceType;
use wfengine::RunConfig;
use wfgen::profiler::{classify, profile, ResourceUsage};
use wfgen::App;
use wfstorage::StorageKind;

/// Table I: per-application resource-usage grades.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// (application, grades) rows in the paper's order.
    pub rows: Vec<(App, ResourceUsage)>,
}

/// Regenerate Table I via the wfprof-style profiler.
pub fn table1() -> Table1 {
    Table1 {
        rows: App::ALL
            .iter()
            .map(|app| (*app, classify(&profile(&app.paper_workflow()))))
            .collect(),
    }
}

/// One runtime figure (Figs 2–4): every storage × node-count cell of one
/// application, plus — for Broadband — the §V.C m2.4xlarge NFS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeFigure {
    /// The application.
    pub app: App,
    /// All standard cells.
    pub cells: Vec<CellResult>,
    /// The NFS-on-m2.4xlarge variant (Broadband @ 4 nodes only).
    pub nfs_m24: Option<CellResult>,
}

impl RuntimeFigure {
    /// Makespan of a specific (storage, workers) cell, if present.
    pub fn makespan(&self, storage: StorageKind, workers: u32) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.cell.storage == storage && c.cell.workers == workers)
            .map(|c| c.makespan_secs)
    }

    /// The cell record for (storage, workers).
    pub fn cell(&self, storage: StorageKind, workers: u32) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.cell.storage == storage && c.cell.workers == workers)
    }
}

/// Run Figure 2 (Montage), 3 (Epigenome) or 4 (Broadband).
pub fn runtime_figure(app: App, seed: u64) -> RuntimeFigure {
    let cells = figure_cells(app);
    let mut results: Vec<CellResult> = cells
        .par_iter()
        .map(|c| run_cell(*c, seed).unwrap_or_else(|e| panic!("cell {c:?} failed: {e}")))
        .collect();
    results.sort_by_key(|r| (format!("{:?}", r.cell.storage), r.cell.workers));
    let nfs_m24 = (app == App::Broadband).then(|| {
        let mut cfg = RunConfig::cell(StorageKind::Nfs, 4).with_seed(seed);
        cfg.server_type = Some(InstanceType::M24Xlarge);
        run_cell_with(app, cfg).expect("m2.4xlarge NFS cell")
    });
    RuntimeFigure {
        app,
        cells: results,
        nfs_m24,
    }
}

/// Figs 5–7 are pure views over the same cell results (per-hour and
/// per-second total cost); this type exists so reports can serialise them
/// separately.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostFigure {
    /// The application.
    pub app: App,
    /// (storage, workers, $/run per-hour, $/run per-second).
    pub rows: Vec<(StorageKind, u32, f64, f64)>,
}

/// Derive the cost figure from a runtime figure.
pub fn cost_figure(fig: &RuntimeFigure) -> CostFigure {
    CostFigure {
        app: fig.app,
        rows: fig
            .cells
            .iter()
            .map(|c| {
                (
                    c.cell.storage,
                    c.cell.workers,
                    c.cost_per_hour_usd,
                    c.cost_per_second_usd,
                )
            })
            .collect(),
    }
}

/// Experiment E8: the XtreemFS anecdote (§IV) — both I/O-heavy apps take
/// more than twice as long as on the systems reported in the figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XtreemFsNote {
    /// (app, xtreemfs makespan, best reported makespan at same size).
    pub rows: Vec<(App, f64, f64)>,
}

/// Run the XtreemFS comparison at 2 workers.
pub fn xtreemfs_note(seed: u64) -> XtreemFsNote {
    let rows = [App::Montage, App::Broadband]
        .par_iter()
        .map(|&app| {
            let x = run_cell(Cell::new(app, StorageKind::XtreemFs, 2), seed).expect("xtreemfs");
            let g = run_cell(Cell::new(app, StorageKind::GlusterNufa, 2), seed).expect("gluster");
            (app, x.makespan_secs, g.makespan_secs)
        })
        .collect();
    XtreemFsNote { rows }
}

/// The §III.C disk microbenchmark (E0).
pub fn disk_microbench() -> DiskMicrobench {
    microbench::run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfgen::Grade;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        let by_app = |a: App| t.rows.iter().find(|(x, _)| *x == a).unwrap().1;
        let m = by_app(App::Montage);
        assert_eq!(
            (m.io, m.memory, m.cpu),
            (Grade::High, Grade::Low, Grade::Low)
        );
        let b = by_app(App::Broadband);
        assert_eq!(
            (b.io, b.memory, b.cpu),
            (Grade::Medium, Grade::High, Grade::Medium)
        );
        let e = by_app(App::Epigenome);
        assert_eq!(
            (e.io, e.memory, e.cpu),
            (Grade::Low, Grade::Medium, Grade::High)
        );
    }
}
