//! F2: fault injection and recovery — how makespan and cost inflate when
//! nodes crash, storage services fail, and spot instances are revoked.
//!
//! The paper measures a fault-free testbed; this experiment goes beyond
//! it (like F1) and asks how each data-sharing option *degrades*. Every
//! scenario is driven by the deterministic [`wfengine::FaultPlan`]
//! machinery, so the whole study is reproducible from the seed, and the
//! zero-rate scenario doubles as a live metamorphic check: a plan whose
//! rates are all zero must be bit-identical to no plan at all.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wfcost::{BillingGranularity, CostModel};
use wfengine::{
    run_workflow, FaultPlan, NodeCrashSpec, RunConfig, RunStats, SpotSpec, StorageFailureSpec,
};
use wfgen::App;
use wfstorage::StorageKind;

/// The storage options the fault study sweeps: the dedicated-server
/// option (NFS), the object store (S3) and the two distributed options
/// whose data lives *on* the workers (GlusterFS distribute, PVFS).
pub const F2_STORAGES: [StorageKind; 4] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

/// Worker count of every fault cell (mid-grid; all four options valid).
pub const F2_WORKERS: u32 = 4;

/// One injected-fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// A present-but-all-zero plan — must change nothing (metamorphic).
    ZeroRate,
    /// Two workers crash mid-run (at 0.25× and 0.5× the clean makespan)
    /// and are re-provisioned after a boot delay.
    NodeChurn,
    /// The storage service fails once at 0.3× the clean makespan and
    /// takes 0.3× the clean makespan to recover: the NFS server stalls
    /// the run for the whole outage, a GlusterFS/PVFS peer loses its
    /// files, S3 only cools its client caches.
    ServerFailure,
    /// Workers run on the spot market (~2 revocations per node-hour) and
    /// are replaced by on-demand instances.
    SpotMarket,
}

impl FaultScenario {
    /// Every scenario, in report order.
    pub const ALL: [FaultScenario; 4] = [
        FaultScenario::ZeroRate,
        FaultScenario::NodeChurn,
        FaultScenario::ServerFailure,
        FaultScenario::SpotMarket,
    ];

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            FaultScenario::ZeroRate => "zero-rate",
            FaultScenario::NodeChurn => "node-churn",
            FaultScenario::ServerFailure => "server-fail",
            FaultScenario::SpotMarket => "spot-market",
        }
    }

    /// Build the fault plan for this scenario given the clean makespan.
    fn plan(self, clean_makespan_secs: f64) -> FaultPlan {
        let t = clean_makespan_secs;
        match self {
            FaultScenario::ZeroRate => FaultPlan::zero(),
            FaultScenario::NodeChurn => FaultPlan {
                node_crash: Some(NodeCrashSpec {
                    rate_per_hour: 0.0,
                    scheduled: vec![(0, 0.25 * t), (1, 0.5 * t)],
                    reprovision: true,
                }),
                max_fault_retries: 8,
                ..FaultPlan::default()
            },
            FaultScenario::ServerFailure => FaultPlan {
                storage_failure: Some(StorageFailureSpec {
                    rate_per_hour: 0.0,
                    scheduled: vec![0.3 * t],
                    recovery_secs: (0.3 * t).max(120.0),
                }),
                max_fault_retries: 8,
                ..FaultPlan::default()
            },
            FaultScenario::SpotMarket => FaultPlan {
                spot: Some(SpotSpec {
                    rate_per_hour: 2.0,
                    replace: true,
                }),
                max_fault_retries: 16,
                ..FaultPlan::default()
            },
        }
    }
}

/// One (app, storage, scenario) measurement, with its clean baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRow {
    /// The application.
    pub app: App,
    /// The data-sharing option.
    pub storage: StorageKind,
    /// The scenario injected.
    pub scenario: FaultScenario,
    /// Makespan under faults.
    pub makespan_secs: f64,
    /// Fault-free makespan of the same cell.
    pub clean_makespan_secs: f64,
    /// `makespan / clean_makespan` — the degradation factor.
    pub inflation: f64,
    /// Instance cost in dollars under per-hour, per-incarnation billing
    /// (crashes forfeit started hours).
    pub cost_usd: f64,
    /// Fault-free instance cost of the same cell.
    pub clean_cost_usd: f64,
    /// `cost / clean_cost` — the wasted-money factor.
    pub cost_inflation: f64,
    /// Node crashes injected.
    pub node_crashes: u64,
    /// Spot revocations injected.
    pub spot_terminations: u64,
    /// Storage-service failures injected.
    pub storage_failures: u64,
    /// Executions killed mid-flight.
    pub tasks_killed: u64,
    /// Completed tasks re-run by the rescue-DAG pass.
    pub rescue_resubmits: u64,
    /// Files lost to storage failover.
    pub files_lost: u64,
    /// Slot-seconds of discarded partial work.
    pub wasted_task_secs: f64,
    /// For [`FaultScenario::ZeroRate`]: did the run match the no-plan
    /// baseline bit-for-bit (makespan bits, event count, segments)?
    pub bit_identical_to_clean: bool,
}

/// The full F2 study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultStudy {
    /// Experiment seed.
    pub seed: u64,
    /// Worker count of every cell.
    pub workers: u32,
    /// One row per (app, storage, scenario).
    pub rows: Vec<FaultRow>,
}

impl FaultStudy {
    /// The row for one (app, storage, scenario), if present.
    pub fn row(&self, app: App, storage: StorageKind, sc: FaultScenario) -> Option<&FaultRow> {
        self.rows
            .iter()
            .find(|r| r.app == app && r.storage == storage && r.scenario == sc)
    }

    /// Apps present in the study, in first-appearance order.
    pub fn apps(&self) -> Vec<App> {
        let mut out: Vec<App> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.app) {
                out.push(r.app);
            }
        }
        out
    }
}

/// Per-hour instance cost of a run, in dollars, from its billing
/// segments (per-incarnation rounding — the fault-adjusted bill).
fn segment_cost_usd(stats: &RunStats) -> f64 {
    CostModel::default().segments_cents(&stats.faults.segments, BillingGranularity::PerHour) / 100.0
}

/// Run all scenarios for one (app, storage) cell.
fn study_cell(app: App, storage: StorageKind, seed: u64) -> Vec<FaultRow> {
    let wf = app.paper_workflow();
    let base = RunConfig::cell(storage, F2_WORKERS).with_seed(seed);
    let clean = run_workflow(wf.clone(), base.clone())
        .unwrap_or_else(|e| panic!("clean {app}/{storage:?} failed: {e}"));
    let clean_cost = segment_cost_usd(&clean);

    FaultScenario::ALL
        .iter()
        .map(|&sc| {
            let mut cfg = base.clone();
            cfg.faults = Some(sc.plan(clean.makespan_secs));
            let stats = run_workflow(wf.clone(), cfg)
                .unwrap_or_else(|e| panic!("{} {app}/{storage:?} failed: {e}", sc.label()));
            let cost = segment_cost_usd(&stats);
            let f = &stats.faults;
            FaultRow {
                app,
                storage,
                scenario: sc,
                makespan_secs: stats.makespan_secs,
                clean_makespan_secs: clean.makespan_secs,
                inflation: stats.makespan_secs / clean.makespan_secs,
                cost_usd: cost,
                clean_cost_usd: clean_cost,
                cost_inflation: cost / clean_cost,
                node_crashes: f.node_crashes,
                spot_terminations: f.spot_terminations,
                storage_failures: f.storage_failures,
                tasks_killed: f.tasks_killed,
                rescue_resubmits: f.rescue_resubmits,
                files_lost: f.files_lost,
                wasted_task_secs: f.wasted_task_secs,
                bit_identical_to_clean: stats.makespan_secs.to_bits()
                    == clean.makespan_secs.to_bits()
                    && stats.events == clean.events
                    && stats.faults.segments == clean.faults.segments,
            }
        })
        .collect()
}

/// Run the F2 study over `apps` × [`F2_STORAGES`].
pub fn run_f2(apps: &[App], seed: u64) -> FaultStudy {
    let cells: Vec<(App, StorageKind)> = apps
        .iter()
        .flat_map(|&a| F2_STORAGES.iter().map(move |&s| (a, s)))
        .collect();
    let per_cell: Vec<Vec<FaultRow>> = cells
        .par_iter()
        .map(|&(a, s)| study_cell(a, s, seed))
        .collect();
    let rows = per_cell.into_iter().flatten().collect();
    FaultStudy {
        seed,
        workers: F2_WORKERS,
        rows,
    }
}

/// Shape checks over the study (the F2 scoreboard entries).
pub fn check_f2(study: &FaultStudy) -> Vec<crate::ShapeCheck> {
    use crate::shape::ShapeCheck;
    let check = |id: &str, claim: &str, passed: bool, detail: String| ShapeCheck {
        id: id.to_string(),
        claim: claim.to_string(),
        passed,
        detail,
    };
    let mut out = Vec::new();
    let infl = |app, storage, sc| {
        study
            .row(app, storage, sc)
            .map(|r| r.inflation)
            .unwrap_or(f64::NAN)
    };

    // Metamorphic: a zero-rate plan consumes no randomness and schedules
    // no events, so it must be bit-identical to no plan at all.
    let zero_ok = study
        .rows
        .iter()
        .filter(|r| r.scenario == FaultScenario::ZeroRate)
        .all(|r| r.bit_identical_to_clean);
    out.push(check(
        "f2.zero-rate-identical",
        "A FaultPlan with all rates zero is bit-identical to no plan",
        zero_ok,
        study
            .rows
            .iter()
            .filter(|r| r.scenario == FaultScenario::ZeroRate && !r.bit_identical_to_clean)
            .map(|r| format!("{}/{:?} diverged; ", r.app, r.storage))
            .collect(),
    ));

    // On the worker-resident options every fault destroys data that
    // must be re-created, so no scenario may *shorten* the run. (NFS is
    // excluded on purpose: killing tasks relieves server contention, and
    // a contention-bound Broadband run can genuinely speed up — the same
    // physics as fig4's 2→4 node regression.)
    let mut lengthen_ok = true;
    let mut worst = f64::INFINITY;
    for r in &study.rows {
        let resident = matches!(
            r.storage,
            StorageKind::GlusterDistribute | StorageKind::Pvfs
        );
        if resident && r.scenario != FaultScenario::ZeroRate {
            lengthen_ok &= r.inflation >= 1.0 - 1e-9;
            worst = worst.min(r.inflation);
        }
    }
    out.push(check(
        "f2.faults-lengthen",
        "Faults never shorten runs on worker-resident storage (lost data must be re-created)",
        lengthen_ok,
        format!("minimum inflation {worst:.3}x"),
    ));

    // The single-server option concentrates failure: when the storage
    // service dies, NFS stalls the whole run, while S3 shrugs and
    // GlusterFS only re-creates one peer's files.
    let mut nfs_ok = true;
    let mut detail = String::new();
    for app in study.apps() {
        let nfs = infl(app, StorageKind::Nfs, FaultScenario::ServerFailure);
        let s3 = infl(app, StorageKind::S3, FaultScenario::ServerFailure);
        let gl = infl(
            app,
            StorageKind::GlusterDistribute,
            FaultScenario::ServerFailure,
        );
        nfs_ok &= nfs > s3 && nfs > gl;
        detail.push_str(&format!(
            "{app}: NFS {nfs:.2}x vs S3 {s3:.2}x, GlusterFS {gl:.2}x; "
        ));
    }
    out.push(check(
        "f2.nfs-worst-server-failure",
        "NFS degrades worst under a storage-service failure (whole-run stall)",
        nfs_ok,
        detail,
    ));

    // S3 keeps data off the workers, so node churn costs it only the
    // killed executions — the worker-resident options must also re-create
    // the files that died with the node.
    let mut s3_ok = true;
    let mut detail = String::new();
    for app in study.apps() {
        let s3 = infl(app, StorageKind::S3, FaultScenario::NodeChurn);
        let gl = infl(
            app,
            StorageKind::GlusterDistribute,
            FaultScenario::NodeChurn,
        );
        let pv = infl(app, StorageKind::Pvfs, FaultScenario::NodeChurn);
        s3_ok &= s3 <= gl * 1.02 && s3 <= pv * 1.02;
        detail.push_str(&format!(
            "{app}: S3 {s3:.2}x vs GlusterFS {gl:.2}x, PVFS {pv:.2}x; "
        ));
    }
    out.push(check(
        "f2.s3-flattest-churn",
        "S3 inflates least under node churn (its data survives the crash)",
        s3_ok,
        detail,
    ));

    // §VI's billing model under churn: a crash forfeits the started hour
    // and the replacement opens a fresh one, so per-hour cost never drops
    // and genuinely rises somewhere. (NFS excluded again: the contention
    // relief can shave a whole billed hour off a multi-hour run.)
    let churn: Vec<_> = study
        .rows
        .iter()
        .filter(|r| r.scenario == FaultScenario::NodeChurn && r.storage != StorageKind::Nfs)
        .collect();
    let cost_ok = churn.iter().all(|r| r.cost_inflation >= 1.0 - 1e-9)
        && churn.iter().any(|r| r.cost_inflation > 1.0 + 1e-9);
    out.push(check(
        "f2.churn-wastes-hours",
        "Node churn never lowers the per-hour bill and forfeits started hours somewhere",
        cost_ok,
        churn
            .iter()
            .map(|r| format!("{}/{:?} {:.2}x; ", r.app, r.storage, r.cost_inflation))
            .collect(),
    ));
    out
}

/// Render the study as an ASCII table.
pub fn render(study: &FaultStudy) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "F2 — FAULT INJECTION AND RECOVERY (seed {}, {} workers; makespan/cost vs clean run)",
        study.seed, study.workers
    );
    let _ = writeln!(
        s,
        "{:<11} {:<14} {:<12} {:>9} {:>7} {:>7} {:>6} {:>6} {:>7} {:>7}",
        "App",
        "Storage",
        "Scenario",
        "makespan",
        "infl",
        "cost",
        "kills",
        "rescue",
        "lost",
        "waste"
    );
    for r in &study.rows {
        let _ = writeln!(
            s,
            "{:<11} {:<14} {:<12} {:>8.0}s {:>6.2}x {:>6.2}x {:>6} {:>6} {:>7} {:>6.0}s",
            r.app.label(),
            r.storage.label(),
            r.scenario.label(),
            r.makespan_secs,
            r.inflation,
            r.cost_inflation,
            r.tasks_killed,
            r.rescue_resubmits,
            r.files_lost,
            r.wasted_task_secs,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_plans_are_wired_to_the_right_class() {
        let t = 1000.0;
        assert_eq!(FaultScenario::ZeroRate.plan(t), FaultPlan::zero());
        let churn = FaultScenario::NodeChurn.plan(t);
        assert_eq!(
            churn.node_crash.as_ref().unwrap().scheduled,
            vec![(0, 250.0), (1, 500.0)]
        );
        assert!(churn.storage_failure.is_none() && churn.spot.is_none());
        let sf = FaultScenario::ServerFailure.plan(t);
        assert_eq!(sf.storage_failure.as_ref().unwrap().scheduled, vec![300.0]);
        let spot = FaultScenario::SpotMarket.plan(t);
        assert!(spot.spot.as_ref().unwrap().replace);
    }

    #[test]
    fn study_lookup_and_render_cover_all_rows() {
        // A tiny in-memory study (no simulation) to exercise the
        // accessors and renderer.
        let row = |storage, scenario, inflation| FaultRow {
            app: App::Broadband,
            storage,
            scenario,
            makespan_secs: 100.0 * inflation,
            clean_makespan_secs: 100.0,
            inflation,
            cost_usd: 1.0,
            clean_cost_usd: 1.0,
            cost_inflation: 1.0,
            node_crashes: 0,
            spot_terminations: 0,
            storage_failures: 0,
            tasks_killed: 0,
            rescue_resubmits: 0,
            files_lost: 0,
            wasted_task_secs: 0.0,
            bit_identical_to_clean: scenario == FaultScenario::ZeroRate,
        };
        let study = FaultStudy {
            seed: 42,
            workers: 4,
            rows: vec![
                row(StorageKind::Nfs, FaultScenario::ZeroRate, 1.0),
                row(StorageKind::Nfs, FaultScenario::NodeChurn, 1.2),
            ],
        };
        assert!(study
            .row(App::Broadband, StorageKind::Nfs, FaultScenario::NodeChurn)
            .is_some());
        assert_eq!(study.apps(), vec![App::Broadband]);
        let text = render(&study);
        assert!(text.contains("node-churn"), "{text}");
    }
}
