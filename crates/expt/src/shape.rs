//! Qualitative shape checks: the textual claims of §V–§VI, verified
//! against the regenerated figures.
//!
//! The reproduction target is the *shape* of every figure — who wins, by
//! roughly what factor, where the crossovers fall — not the absolute
//! numbers of the authors' 2010 testbed. Each check cites the claim it
//! encodes. Two checks are deliberately lenient where our physically
//! symmetric model disagrees with the paper's hedged single-node
//! observations (see EXPERIMENTS.md, "Known deviations").

use crate::figures::{RuntimeFigure, Table1, XtreemFsNote};
use serde::{Deserialize, Serialize};
use wfgen::{App, Grade};
use wfstorage::StorageKind;

/// One verified claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// Stable identifier, e.g. `fig2.gluster-best`.
    pub id: String,
    /// The paper claim being encoded.
    pub claim: String,
    /// Did the regenerated data satisfy it?
    pub passed: bool,
    /// Measured values backing the verdict.
    pub detail: String,
}

fn check(id: &str, claim: &str, passed: bool, detail: String) -> ShapeCheck {
    ShapeCheck {
        id: id.to_string(),
        claim: claim.to_string(),
        passed,
        detail,
    }
}

const GLUSTERS: [StorageKind; 2] = [StorageKind::GlusterNufa, StorageKind::GlusterDistribute];

/// Checks over Fig 2 (Montage runtimes).
pub fn check_fig2(fig: &RuntimeFigure) -> Vec<ShapeCheck> {
    assert_eq!(fig.app, App::Montage);
    let mut out = Vec::new();

    // §V.A: "GlusterFS ... both the NUFA and distribute modes producing
    // significantly better performance than the other storage systems."
    let mut best_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4, 8] {
        let g = GLUSTERS
            .iter()
            .filter_map(|s| fig.makespan(*s, n))
            .fold(f64::INFINITY, f64::min);
        let rest = [StorageKind::S3, StorageKind::Nfs, StorageKind::Pvfs]
            .iter()
            .filter_map(|s| fig.makespan(*s, n))
            .fold(f64::INFINITY, f64::min);
        best_ok &= g < rest;
        detail.push_str(&format!(
            "n={n}: gluster {g:.0}s vs others' best {rest:.0}s; "
        ));
    }
    out.push(check(
        "fig2.gluster-best",
        "GlusterFS (both modes) beats every other system for Montage",
        best_ok,
        detail,
    ));

    // §V.A: "NFS does relatively well for Montage, beating even the local
    // disk in the single node case." Our symmetric page-cache model puts
    // them within a few percent with local slightly ahead — checked as a
    // near-tie (documented deviation D1).
    let nfs1 = fig.makespan(StorageKind::Nfs, 1).unwrap_or(f64::NAN);
    let local1 = fig.makespan(StorageKind::Local, 1).unwrap_or(f64::NAN);
    out.push(check(
        "fig2.nfs-vs-local-1node",
        "NFS is competitive with the local disk on one node (paper: slightly faster; ours: near-tie, deviation D1)",
        nfs1 <= local1 * 1.10,
        format!("NFS@1 {nfs1:.0}s vs Local@1 {local1:.0}s"),
    ));

    // §V.A: "The relatively poor performance of S3 and PVFS may be a
    // result of Montage accessing a large number of small files."
    let mut sp_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4, 8] {
        let g = GLUSTERS
            .iter()
            .filter_map(|s| fig.makespan(*s, n))
            .fold(f64::INFINITY, f64::min);
        for s in [StorageKind::S3, StorageKind::Pvfs] {
            let v = fig.makespan(s, n).unwrap_or(f64::NAN);
            sp_ok &= v > g * 1.3;
            detail.push_str(&format!("{s:?}@{n} {v:.0}s vs gluster {g:.0}s; "));
        }
    }
    out.push(check(
        "fig2.s3-pvfs-poor",
        "S3 and PVFS are clearly worse than GlusterFS for Montage (many small files)",
        sp_ok,
        detail,
    ));
    out
}

/// Checks over Fig 3 (Epigenome runtimes).
pub fn check_fig3(fig: &RuntimeFigure) -> Vec<ShapeCheck> {
    assert_eq!(fig.app, App::Epigenome);
    let mut out = Vec::new();

    // §V.B: "the performance was almost the same for all storage systems."
    let mut spread_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4, 8] {
        let vals: Vec<f64> = StorageKind::EVALUATED
            .iter()
            .filter_map(|s| fig.makespan(*s, n))
            .collect();
        let (lo, hi) = (
            vals.iter().copied().fold(f64::INFINITY, f64::min),
            vals.iter().copied().fold(0.0f64, f64::max),
        );
        spread_ok &= hi <= lo * 1.25;
        detail.push_str(&format!("n={n}: {lo:.0}-{hi:.0}s; "));
    }
    out.push(check(
        "fig3.insensitive",
        "Epigenome is nearly insensitive to the storage choice",
        spread_ok,
        detail,
    ));

    // §V.B: "for Epigenome the local disk was significantly faster" (at
    // one node). Our model lands local within 2 % of the best single-node
    // system (deviation D2).
    let local1 = fig.makespan(StorageKind::Local, 1).unwrap_or(f64::NAN);
    let best1 = [StorageKind::S3, StorageKind::Nfs]
        .iter()
        .filter_map(|s| fig.makespan(*s, 1))
        .fold(f64::INFINITY, f64::min);
    out.push(check(
        "fig3.local-fastest-1node",
        "Local disk is at worst within 2% of the best system on one node (paper: clearly fastest; deviation D2)",
        local1 <= best1 * 1.02,
        format!("Local@1 {local1:.0}s vs best remote {best1:.0}s"),
    ));

    // §V.B: "S3 and PVFS performing slightly worse than NFS and GlusterFS".
    let mut s3_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4] {
        let s3 = fig.makespan(StorageKind::S3, n).unwrap_or(f64::NAN);
        let g = GLUSTERS
            .iter()
            .filter_map(|s| fig.makespan(*s, n))
            .fold(f64::INFINITY, f64::min);
        s3_ok &= s3 >= g * 0.98;
        detail.push_str(&format!("n={n}: S3 {s3:.0}s vs gluster {g:.0}s; "));
    }
    out.push(check(
        "fig3.s3-slightly-worse",
        "S3 is no faster than GlusterFS for Epigenome",
        s3_ok,
        detail,
    ));
    out
}

/// Checks over Fig 4 (Broadband runtimes).
pub fn check_fig4(fig: &RuntimeFigure) -> Vec<ShapeCheck> {
    assert_eq!(fig.app, App::Broadband);
    let mut out = Vec::new();

    // §V.C: "the best overall performance for Broadband was achieved
    // using Amazon S3".
    let mut s3_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4, 8] {
        let s3 = fig.makespan(StorageKind::S3, n).unwrap_or(f64::NAN);
        let rest = [
            StorageKind::Nfs,
            StorageKind::GlusterNufa,
            StorageKind::GlusterDistribute,
            StorageKind::Pvfs,
        ]
        .iter()
        .filter_map(|s| fig.makespan(*s, n))
        .fold(f64::INFINITY, f64::min);
        s3_ok &= s3 <= rest;
        detail.push_str(&format!("n={n}: S3 {s3:.0}s vs others' best {rest:.0}s; "));
    }
    out.push(check(
        "fig4.s3-best",
        "S3 gives the best Broadband performance (input reuse + client cache)",
        s3_ok,
        detail,
    ));

    // §V.C: "GlusterFS (NUFA) results in better performance than
    // GlusterFS (distribute)" for the mini-pipeline transformations.
    let mut nufa_ok = true;
    let mut detail = String::new();
    for n in [2u32, 4, 8] {
        let nufa = fig
            .makespan(StorageKind::GlusterNufa, n)
            .unwrap_or(f64::NAN);
        let dist = fig
            .makespan(StorageKind::GlusterDistribute, n)
            .unwrap_or(f64::NAN);
        nufa_ok &= nufa <= dist * 1.01;
        detail.push_str(&format!(
            "n={n}: NUFA {nufa:.0}s vs distribute {dist:.0}s; "
        ));
    }
    out.push(check(
        "fig4.nufa-beats-distribute",
        "NUFA beats distribute for Broadband (pipeline locality)",
        nufa_ok,
        detail,
    ));

    // §V.C: NFS at 4 nodes (5363 s) is far worse than GlusterFS and S3
    // (<3000 s), and the 2→4 node step makes NFS *worse* in absolute
    // terms.
    let nfs2 = fig.makespan(StorageKind::Nfs, 2).unwrap_or(f64::NAN);
    let nfs4 = fig.makespan(StorageKind::Nfs, 4).unwrap_or(f64::NAN);
    let best4 = [StorageKind::S3, StorageKind::GlusterNufa]
        .iter()
        .filter_map(|s| fig.makespan(*s, 4))
        .fold(f64::INFINITY, f64::min);
    out.push(check(
        "fig4.nfs-cliff",
        "NFS collapses for Broadband at 4 nodes (paper: 5363s vs <3000s for GlusterFS/S3)",
        nfs4 > best4 * 1.4,
        format!("NFS@4 {nfs4:.0}s vs best {best4:.0}s"),
    ));
    out.push(check(
        "fig4.nfs-2to4-regression",
        "Adding nodes 2→4 makes NFS Broadband *slower* in absolute terms (§V.C)",
        nfs4 >= nfs2,
        format!("NFS@2 {nfs2:.0}s → NFS@4 {nfs4:.0}s"),
    ));

    // §V.C: the m2.4xlarge server helps (paper 5363 → 4368 s) but stays
    // significantly worse than GlusterFS and S3.
    if let Some(m24) = &fig.nfs_m24 {
        let v = m24.makespan_secs;
        out.push(check(
            "fig4.m24-partial-fix",
            "A 64 GB m2.4xlarge NFS server improves the 4-node run but does not fix it",
            v < nfs4 && v > best4 * 1.2,
            format!("m1.xlarge {nfs4:.0}s → m2.4xlarge {v:.0}s vs best {best4:.0}s (paper: 5363 → 4368 vs <3000)"),
        ));
    }
    out
}

/// Checks over Figs 5–7 (costs) given the three runtime figures.
pub fn check_costs(figs: &[RuntimeFigure]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let by_app = |a: App| figs.iter().find(|f| f.app == a).expect("figure present");

    // §VI: per-second charges are below per-hour charges everywhere.
    let mut ps_ok = true;
    let mut worst = 0.0f64;
    for f in figs {
        for c in &f.cells {
            ps_ok &= c.cost_per_second_usd <= c.cost_per_hour_usd + 1e-9;
            worst = worst.max(c.cost_per_second_usd / c.cost_per_hour_usd);
        }
    }
    out.push(check(
        "fig567.per-second-cheaper",
        "Per-second billing never exceeds per-hour billing (§VI)",
        ps_ok,
        format!("max per-second/per-hour ratio {worst:.2}"),
    ));

    // §VI: "For Montage the lowest cost solution was GlusterFS on two
    // nodes."
    let m = by_app(App::Montage);
    let cheapest = m
        .cells
        .iter()
        .min_by(|a, b| a.cost_per_hour_usd.total_cmp(&b.cost_per_hour_usd))
        .expect("cells");
    let montage_ok = (GLUSTERS.contains(&cheapest.cell.storage) && cheapest.cell.workers == 2)
        || cheapest.cell.storage == StorageKind::Local; // 1-node local ties at one billed hour
    out.push(check(
        "fig5.montage-cheapest",
        "Montage's cheapest configuration is GlusterFS@2 (or the one-hour Local tie)",
        montage_ok,
        format!(
            "cheapest: {:?}@{} ${:.2}",
            cheapest.cell.storage, cheapest.cell.workers, cheapest.cost_per_hour_usd
        ),
    ));

    // §VI: "For Epigenome the lowest cost solution was a single node
    // using the local disk."
    let e = by_app(App::Epigenome);
    let cheapest = e
        .cells
        .iter()
        .min_by(|a, b| a.cost_per_hour_usd.total_cmp(&b.cost_per_hour_usd))
        .expect("cells");
    out.push(check(
        "fig6.epigenome-cheapest",
        "Epigenome's cheapest configuration is the single-node local disk",
        cheapest.cell.storage == StorageKind::Local,
        format!(
            "cheapest: {:?}@{} ${:.2}",
            cheapest.cell.storage, cheapest.cell.workers, cheapest.cost_per_hour_usd
        ),
    ));

    // §VI: "For Broadband the local disk, GlusterFS and S3 all tied for
    // the lowest cost" — NFS is never cheapest.
    let b = by_app(App::Broadband);
    let cheapest = b
        .cells
        .iter()
        .min_by(|a, b| a.cost_per_hour_usd.total_cmp(&b.cost_per_hour_usd))
        .expect("cells");
    out.push(check(
        "fig7.broadband-cheapest",
        "Broadband's cheapest configuration is local/GlusterFS/S3, never NFS",
        cheapest.cell.storage != StorageKind::Nfs,
        format!(
            "cheapest: {:?}@{} ${:.2}",
            cheapest.cell.storage, cheapest.cell.workers, cheapest.cost_per_hour_usd
        ),
    ));

    // §VI: "In all other cases the cost of the workflows only increased
    // when resources were added" (the paper found exactly two exceptions,
    // both NFS 1→2). Count our exceptions under per-hour billing.
    let mut exceptions = Vec::new();
    for f in figs {
        for s in StorageKind::EVALUATED {
            let mut prev: Option<(u32, f64)> = None;
            for n in [1u32, 2, 4, 8] {
                if let Some(c) = f.cell(s, n) {
                    if let Some((pn, pc)) = prev {
                        // Ignore sub-2-cent hour-rounding noise; the
                        // paper's two exceptions were whole extra hours.
                        if c.cost_per_hour_usd < pc - 0.02 {
                            exceptions.push(format!("{:?}/{s:?} {pn}→{n}", f.app));
                        }
                    }
                    prev = Some((n, c.cost_per_hour_usd));
                }
            }
        }
    }
    out.push(check(
        "fig567.cost-grows-with-nodes",
        "Adding nodes (almost) never reduces cost; the paper saw only two NFS exceptions",
        exceptions.len() <= 2,
        format!("exceptions: {exceptions:?}"),
    ));

    // §VI: S3 request surcharges ≈ $0.28 (Montage), $0.01 (Epigenome),
    // $0.02 (Broadband). Shape target: Montage ≫ Broadband ≥ Epigenome,
    // all under a dollar.
    let surcharge = |f: &RuntimeFigure| {
        f.cells
            .iter()
            .filter(|c| c.cell.storage == StorageKind::S3)
            .map(|c| {
                let (gets, puts) = c.s3_requests;
                puts as f64 / 1000.0 * 0.01 + gets as f64 / 10_000.0 * 0.01
            })
            .fold(0.0f64, f64::max)
    };
    let (sm, se, sb) = (surcharge(m), surcharge(e), surcharge(b));
    out.push(check(
        "fig567.s3-surcharge",
        "S3 request fees: Montage ≈ $0.28 ≫ Broadband, Epigenome ≈ cents (§VI)",
        (0.08..=0.60).contains(&sm) && se < 0.03 && sb < 0.08 && sm > sb && sm > se,
        format!("Montage ${sm:.3}, Epigenome ${se:.3}, Broadband ${sb:.3}"),
    ));
    out
}

/// Checks over Table I.
pub fn check_table1(t: &Table1) -> Vec<ShapeCheck> {
    let want = [
        (App::Montage, Grade::High, Grade::Low, Grade::Low),
        (App::Broadband, Grade::Medium, Grade::High, Grade::Medium),
        (App::Epigenome, Grade::Low, Grade::Medium, Grade::High),
    ];
    let mut ok = true;
    let mut detail = String::new();
    for (app, io, mem, cpu) in want {
        let got = t.rows.iter().find(|(a, _)| *a == app).map(|(_, u)| *u);
        let matches = got.is_some_and(|u| u.io == io && u.memory == mem && u.cpu == cpu);
        ok &= matches;
        detail.push_str(&format!("{app}: {got:?}; "));
    }
    vec![check(
        "table1.grades",
        "Table I resource-usage grades match the paper exactly",
        ok,
        detail,
    )]
}

/// Checks over the XtreemFS note.
pub fn check_xtreemfs(x: &XtreemFsNote) -> Vec<ShapeCheck> {
    let mut ok = true;
    let mut detail = String::new();
    for (app, xs, best) in &x.rows {
        ok &= *xs > 2.0 * best;
        detail.push_str(&format!(
            "{app}: {xs:.0}s vs {best:.0}s ({:.1}x); ",
            xs / best
        ));
    }
    vec![check(
        "xtreemfs.2x",
        "XtreemFS takes more than twice as long as the reported systems (§IV)",
        ok,
        detail,
    )]
}

/// All checks over a full set of regenerated experiments.
pub fn check_all(
    figs: &[RuntimeFigure],
    table: &Table1,
    xtreemfs: &XtreemFsNote,
) -> Vec<ShapeCheck> {
    let by_app = |a: App| figs.iter().find(|f| f.app == a).expect("figure present");
    let mut out = Vec::new();
    out.extend(check_fig2(by_app(App::Montage)));
    out.extend(check_fig3(by_app(App::Epigenome)));
    out.extend(check_fig4(by_app(App::Broadband)));
    out.extend(check_costs(figs));
    out.extend(check_table1(table));
    out.extend(check_xtreemfs(xtreemfs));
    out
}
