//! The simulation world: cluster + storage + workflow-management state.

use crate::config::{RunConfig, SchedulerPolicy};
use simcore::{DetRng, SimTime};
use std::collections::VecDeque;
use vcluster::{Cluster, NodeId};
use wfdag::{FileClass, TaskId, Workflow};
use wfstorage::op::{Note, Stage};
use wfstorage::{FileRef, StorageSystem};

/// Scheduling state of one worker node.
#[derive(Debug, Clone)]
pub struct NodeSched {
    /// Free Condor slots (one per core).
    pub free_slots: u32,
    /// Free memory in bytes.
    pub free_mem: u64,
}

/// Timing record of one executed task (of its final, successful attempt;
/// earlier failed attempts only contribute to `attempts`).
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// Node the task ran on.
    pub node: NodeId,
    /// When all dependencies were satisfied.
    pub ready_at: SimTime,
    /// When the slot was acquired.
    pub start_at: SimTime,
    /// When the WMS overhead finished and the operation storm began.
    pub ops_start: SimTime,
    /// When stage-in began (= end of the operation storm).
    pub stage_in_start: SimTime,
    /// When input reads began (= end of stage-in).
    pub reads_start: SimTime,
    /// When the compute phase began (= end of reads).
    pub compute_start: SimTime,
    /// When the compute phase ended (writes follow).
    pub compute_end: SimTime,
    /// When output writes finished and stage-out began.
    pub stage_out_start: SimTime,
    /// When the task released its slot.
    pub end_at: SimTime,
    /// Number of executions (1 = no retries).
    pub attempts: u32,
}

impl TaskRecord {
    /// Wall time spent in I/O phases (stage-in, reads, writes, stage-out,
    /// plus workflow-management overhead before the compute phase).
    pub fn io_secs(&self) -> f64 {
        (self.compute_start.since(self.start_at) + self.end_at.since(self.compute_end))
            .as_secs_f64()
    }

    /// Wall time of the compute phase.
    pub fn cpu_secs(&self) -> f64 {
        self.compute_end.since(self.compute_start).as_secs_f64()
    }

    /// WMS dispatch overhead (DAGMan/Condor).
    pub fn overhead_secs(&self) -> f64 {
        self.ops_start.since(self.start_at).as_secs_f64()
    }

    /// POSIX operation storm (only charged by NFS-like systems).
    pub fn ops_secs(&self) -> f64 {
        self.stage_in_start.since(self.ops_start).as_secs_f64()
    }

    /// Stage-in (S3 GETs, direct-transfer pulls).
    pub fn stage_in_secs(&self) -> f64 {
        self.reads_start.since(self.stage_in_start).as_secs_f64()
    }

    /// Input reads through the storage system.
    pub fn read_secs(&self) -> f64 {
        self.compute_start.since(self.reads_start).as_secs_f64()
    }

    /// Output writes through the storage system.
    pub fn write_secs(&self) -> f64 {
        self.stage_out_start.since(self.compute_end).as_secs_f64()
    }

    /// Stage-out (S3 PUTs).
    pub fn stage_out_secs(&self) -> f64 {
        self.end_at.since(self.stage_out_start).as_secs_f64()
    }
}

/// The world threaded through every simulation event.
pub struct World {
    /// The provisioned virtual cluster.
    pub cluster: Cluster,
    /// The data-sharing option under test.
    pub storage: Box<dyn StorageSystem>,
    /// The workflow being executed.
    pub wf: Workflow,
    /// The run configuration.
    pub cfg: RunConfig,

    /// Remaining unfinished parents per task.
    pub pending_parents: Vec<u32>,
    /// Ready-but-unscheduled tasks (FIFO with a bounded backfill window).
    pub ready: VecDeque<TaskId>,
    /// Per-worker scheduling state (indexed like `cluster.workers()`).
    pub node_sched: Vec<NodeSched>,
    /// Per-task execution records.
    pub records: Vec<Option<TaskRecord>>,
    /// Completed task count.
    pub done: usize,
    /// Task re-executions after injected failures.
    pub retries: u64,
    /// Set when a task exhausted its retries; the run aborts.
    pub aborted: Option<TaskId>,
    /// Time the last task completed.
    pub finished_at: Option<SimTime>,

    /// Serialised background I/O (e.g. NFS write-back flushes — one
    /// writeback stream, like the kernel's flusher thread).
    pub bg_queue: VecDeque<(Stage, Option<Note>)>,
    /// Whether a background stage is in flight.
    pub bg_active: bool,

    /// Rotating cursor for locality-blind node selection.
    pub rr_cursor: usize,
    /// Randomness for tie-breaking.
    pub rng: DetRng,
}

impl World {
    /// Assemble a world over a provisioned cluster and storage system.
    pub fn new(
        wf: Workflow,
        cluster: Cluster,
        storage: Box<dyn StorageSystem>,
        cfg: RunConfig,
    ) -> Self {
        let n = wf.task_count();
        let pending_parents = (0..n).map(|i| wf.parent_count(TaskId(i as u32))).collect();
        let node_sched = cluster
            .workers()
            .iter()
            .map(|&id| {
                let node = cluster.node(id);
                NodeSched {
                    free_slots: node.slots(),
                    // Reserve a slice of RAM for OS + page cache.
                    free_mem: (node.memory_bytes() as f64 * 0.9) as u64,
                }
            })
            .collect();
        let rng = DetRng::stream(cfg.seed, "engine.schedule");
        World {
            cluster,
            storage,
            wf,
            cfg,
            pending_parents,
            ready: VecDeque::new(),
            node_sched,
            records: vec![None; n],
            done: 0,
            retries: 0,
            aborted: None,
            finished_at: None,
            bg_queue: VecDeque::new(),
            bg_active: false,
            rr_cursor: 0,
            rng,
        }
    }

    /// Input `FileRef`s of a task.
    pub fn task_inputs(&self, t: TaskId) -> Vec<FileRef> {
        self.wf
            .task(t)
            .inputs
            .iter()
            .map(|&f| (f, self.wf.file(f).size))
            .collect()
    }

    /// Output `FileRef`s of a task.
    pub fn task_outputs(&self, t: TaskId) -> Vec<FileRef> {
        self.wf
            .task(t)
            .outputs
            .iter()
            .map(|&f| (f, self.wf.file(f).size))
            .collect()
    }

    /// Workflow input files (pre-staged before the run, §III.C).
    pub fn workflow_inputs(&self) -> Vec<FileRef> {
        self.wf
            .files()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class == FileClass::Input)
            .map(|(i, f)| (wfdag::FileId(i as u32), f.size))
            .collect()
    }

    /// Pick a worker for `task` under the configured policy, or `None` if
    /// nothing fits right now.
    pub fn pick_node(&mut self, task: TaskId) -> Option<usize> {
        let need_mem = self.wf.task(task).peak_mem;
        let n = self.node_sched.len();
        let fits = |s: &NodeSched| s.free_slots > 0 && s.free_mem >= need_mem;
        match self.cfg.scheduler {
            SchedulerPolicy::LocalityBlind => {
                // Rotating first-fit: spreads load without looking at data.
                for off in 0..n {
                    let i = (self.rr_cursor + off) % n;
                    if fits(&self.node_sched[i]) {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            SchedulerPolicy::DataAware => {
                let inputs = self.task_inputs(task);
                let mut best: Option<(u64, usize)> = None;
                for i in 0..n {
                    if !fits(&self.node_sched[i]) {
                        continue;
                    }
                    let node_id = self.cluster.workers()[i];
                    let local = self.storage.local_bytes(&self.cluster, node_id, &inputs);
                    // Ties broken by index for determinism.
                    if best.is_none_or(|(b, _)| local > b) {
                        best = Some((local, i));
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }

    /// Reserve a slot + memory on worker index `i` for `task`.
    pub fn reserve(&mut self, i: usize, task: TaskId) {
        let need = self.wf.task(task).peak_mem;
        let s = &mut self.node_sched[i];
        debug_assert!(s.free_slots > 0 && s.free_mem >= need);
        s.free_slots -= 1;
        s.free_mem -= need;
    }

    /// Release the slot + memory held by `task` on worker index `i`.
    pub fn release(&mut self, i: usize, task: TaskId) {
        let need = self.wf.task(task).peak_mem;
        let s = &mut self.node_sched[i];
        s.free_slots += 1;
        s.free_mem += need;
    }
}
