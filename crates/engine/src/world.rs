//! The simulation world: cluster + storage + workflow-management state.

use crate::config::{FaultPlan, RunConfig, SchedulerPolicy};
use simcore::{DetRng, FlowId, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use vcluster::{Cluster, NodeId};
use wfdag::{FileClass, FileId, TaskId, Workflow};
use wfobs::{Event, ObsHandle};
use wfstorage::op::{Note, Stage};
use wfstorage::{FileRef, StorageSystem};

/// Scheduling state of one worker node.
#[derive(Debug, Clone)]
pub struct NodeSched {
    /// Free Condor slots (one per core).
    pub free_slots: u32,
    /// Free memory in bytes.
    pub free_mem: u64,
}

/// One billed lease interval of a cluster node. Crashes and spot
/// terminations close the segment (wasting the started hour under
/// per-hour billing); re-provisioning opens a new one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSegment {
    /// When the instance came up.
    pub open: SimTime,
    /// When it went away (`None` while still running).
    pub close: Option<SimTime>,
    /// Whether this incarnation was a spot instance.
    pub spot: bool,
}

/// Counters of injected faults and recovery work, accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultCounters {
    /// Worker instances that crashed.
    pub node_crashes: u64,
    /// Spot instances revoked by the market.
    pub spot_terminations: u64,
    /// Storage service failures injected.
    pub storage_failures: u64,
    /// Executions killed mid-flight by a fault (excludes transient
    /// task failures, which abort cleanly at compute end).
    pub tasks_killed: u64,
    /// Completed tasks resubmitted by the rescue-DAG pass because an
    /// output of theirs was lost.
    pub rescue_resubmits: u64,
    /// Files reported lost by storage failover.
    pub files_lost: u64,
    /// Slot-seconds of partially-executed work thrown away by kills.
    pub wasted_task_secs: f64,
}

/// Timing record of one executed task (of its final, successful attempt;
/// earlier failed attempts only contribute to `attempts`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// The task this record belongs to. Carrying the id in the record
    /// lets consumers (`jobstate_log`, bus exporters) key by task rather
    /// than assume positional alignment with `Workflow::tasks()`.
    pub task: TaskId,
    /// Node the task ran on.
    pub node: NodeId,
    /// When all dependencies were satisfied.
    pub ready_at: SimTime,
    /// When the slot was acquired.
    pub start_at: SimTime,
    /// When the WMS overhead finished and the operation storm began.
    pub ops_start: SimTime,
    /// When stage-in began (= end of the operation storm).
    pub stage_in_start: SimTime,
    /// When input reads began (= end of stage-in).
    pub reads_start: SimTime,
    /// When the compute phase began (= end of reads).
    pub compute_start: SimTime,
    /// When the compute phase ended (writes follow).
    pub compute_end: SimTime,
    /// When output writes finished and stage-out began.
    pub stage_out_start: SimTime,
    /// When the task released its slot.
    pub end_at: SimTime,
    /// Number of executions (1 = no retries).
    pub attempts: u32,
}

impl TaskRecord {
    /// Wall time spent in I/O phases (stage-in, reads, writes, stage-out,
    /// plus workflow-management overhead before the compute phase).
    pub fn io_secs(&self) -> f64 {
        (self.compute_start.since(self.start_at) + self.end_at.since(self.compute_end))
            .as_secs_f64()
    }

    /// Wall time of the compute phase.
    pub fn cpu_secs(&self) -> f64 {
        self.compute_end.since(self.compute_start).as_secs_f64()
    }

    /// WMS dispatch overhead (DAGMan/Condor).
    pub fn overhead_secs(&self) -> f64 {
        self.ops_start.since(self.start_at).as_secs_f64()
    }

    /// POSIX operation storm (only charged by NFS-like systems).
    pub fn ops_secs(&self) -> f64 {
        self.stage_in_start.since(self.ops_start).as_secs_f64()
    }

    /// Stage-in (S3 GETs, direct-transfer pulls).
    pub fn stage_in_secs(&self) -> f64 {
        self.reads_start.since(self.stage_in_start).as_secs_f64()
    }

    /// Input reads through the storage system.
    pub fn read_secs(&self) -> f64 {
        self.compute_start.since(self.reads_start).as_secs_f64()
    }

    /// Output writes through the storage system.
    pub fn write_secs(&self) -> f64 {
        self.stage_out_start.since(self.compute_end).as_secs_f64()
    }

    /// Stage-out (S3 PUTs).
    pub fn stage_out_secs(&self) -> f64 {
        self.end_at.since(self.stage_out_start).as_secs_f64()
    }
}

/// The world threaded through every simulation event.
pub struct World {
    /// The provisioned virtual cluster.
    pub cluster: Cluster,
    /// The data-sharing option under test.
    pub storage: Box<dyn StorageSystem>,
    /// The workflow being executed.
    pub wf: Workflow,
    /// The run configuration.
    pub cfg: RunConfig,

    /// Remaining unfinished parents per task.
    pub pending_parents: Vec<u32>,
    /// Ready-but-unscheduled tasks (FIFO with a bounded backfill window).
    pub ready: VecDeque<TaskId>,
    /// Per-worker scheduling state (indexed like `cluster.workers()`).
    pub node_sched: Vec<NodeSched>,
    /// Per-task execution records.
    pub records: Vec<Option<TaskRecord>>,
    /// Completed task count.
    pub done: usize,
    /// Task re-executions after injected failures.
    pub retries: u64,
    /// Set when a task exhausted its retries; the run aborts.
    pub aborted: Option<TaskId>,
    /// Time the last task completed.
    pub finished_at: Option<SimTime>,

    /// Serialised background I/O (e.g. NFS write-back flushes — one
    /// writeback stream, like the kernel's flusher thread).
    pub bg_queue: VecDeque<(Stage, Option<Note>)>,
    /// Whether a background stage is in flight.
    pub bg_active: bool,

    /// Rotating cursor for locality-blind node selection.
    pub rr_cursor: usize,
    /// Randomness for tie-breaking.
    pub rng: DetRng,

    /// Effective fault plan: `cfg.faults`, or `cfg.failures` lifted into
    /// a task-failure-only plan.
    pub faults: Option<FaultPlan>,
    /// Per-task execution epoch. A fault kill bumps it, so continuations
    /// of the dead execution (which captured the old epoch) no-op.
    pub epoch: Vec<u32>,
    /// Tasks currently holding a slot on each worker.
    pub running: Vec<Vec<TaskId>>,
    /// Active flow registrations per task, cancelled when the task is
    /// killed.
    pub inflight: HashMap<TaskId, Vec<FlowId>>,
    /// Whether each worker is up.
    pub node_up: Vec<bool>,
    /// Per-worker incarnation counter; crash and recovery events carry
    /// the incarnation they were scheduled against and skip if stale.
    pub node_incarnation: Vec<u32>,
    /// Whether each worker's current incarnation is a spot instance.
    pub node_spot: Vec<bool>,
    /// Per-task completion flags (the rescue-DAG pass clears one when it
    /// resubmits a finished task whose outputs were lost).
    pub completed: Vec<bool>,
    /// Tasks resubmitted by the rescue pass and not yet re-finished.
    pub rescued: HashSet<TaskId>,
    /// Tasks deferred until a rescued producer re-finishes.
    pub rescue_waiters: HashMap<TaskId, Vec<TaskId>>,
    /// Producing task of every non-input file.
    pub producer_of: HashMap<FileId, TaskId>,
    /// Files whose `plan_write` was issued. A retry of an execution
    /// killed mid-write skips these (re-writing would violate the
    /// storage write-once discipline); storage failover removes lost
    /// files so rescue re-runs regenerate exactly what vanished.
    pub written: HashSet<FileId>,
    /// Files already covered by a `plan_stage_out` call, so a retried
    /// execution does not stage out (and bill) the same output twice.
    pub staged_out: HashSet<FileId>,
    /// Set once any storage failover reported lost files; gates the
    /// rescue checks so fault-free runs skip them entirely.
    pub any_files_lost: bool,
    /// While `Some(t)` and `now < t`, dispatch is suspended (NFS-style
    /// whole-run stall on server failure).
    pub stall_until: Option<SimTime>,
    /// Fault/recovery counters for the run report.
    pub fault_counters: FaultCounters,
    /// Billing segments per cluster node (indexed by `NodeId::index`).
    pub node_segments: Vec<Vec<NodeSegment>>,
    /// Fault stream: transient task-failure coin flips.
    pub fault_rng_task: DetRng,
    /// Fault stream: storage failure timing and victim choice.
    pub fault_rng_storage: DetRng,
    /// Per-worker fault streams: crash timing and boot delays. Per-node
    /// streams keep draws independent of event interleaving.
    pub fault_rng_node: Vec<DetRng>,
    /// Per-worker fault streams: spot termination timing.
    pub fault_rng_spot: Vec<DetRng>,
    /// Observability bus handle (shared with the sim; disabled by
    /// default). Cloning is one `Rc` bump.
    pub obs: ObsHandle,
}

impl World {
    /// Assemble a world over a provisioned cluster and storage system.
    pub fn new(
        wf: Workflow,
        cluster: Cluster,
        storage: Box<dyn StorageSystem>,
        cfg: RunConfig,
    ) -> Self {
        let n = wf.task_count();
        let pending_parents = (0..n).map(|i| wf.parent_count(TaskId(i as u32))).collect();
        let node_sched = cluster
            .workers()
            .iter()
            .map(|&id| {
                let node = cluster.node(id);
                NodeSched {
                    free_slots: node.slots(),
                    // Reserve a slice of RAM for OS + page cache.
                    free_mem: (node.memory_bytes() as f64 * 0.9) as u64,
                }
            })
            .collect();
        let rng = DetRng::stream(cfg.seed, "engine.schedule");
        let faults = cfg
            .faults
            .clone()
            .or_else(|| cfg.failures.map(FaultPlan::from_failure_model));
        let workers = cluster.workers().len();
        // A zero-rate spot spec is inert: workers stay on-demand, so a
        // FaultPlan::zero() run bills identically to a plan-free run.
        let spot_active = faults
            .as_ref()
            .and_then(|p| p.spot.as_ref())
            .is_some_and(|s| s.rate_per_hour > 0.0);
        let worker_set: HashSet<NodeId> = cluster.workers().iter().copied().collect();
        let node_segments = cluster
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                vec![NodeSegment {
                    open: SimTime::ZERO,
                    close: None,
                    spot: spot_active && worker_set.contains(&NodeId(i as u32)),
                }]
            })
            .collect();
        let mut producer_of = HashMap::new();
        for (i, t) in wf.tasks().iter().enumerate() {
            for &f in &t.outputs {
                producer_of.insert(f, TaskId(i as u32));
            }
        }
        let fault_rng_node = (0..workers)
            .map(|i| DetRng::stream(cfg.seed, &format!("engine.faults.node.{i}")))
            .collect();
        let fault_rng_spot = (0..workers)
            .map(|i| DetRng::stream(cfg.seed, &format!("engine.faults.spot.{i}")))
            .collect();
        World {
            cluster,
            storage,
            wf,
            pending_parents,
            ready: VecDeque::new(),
            node_sched,
            records: vec![None; n],
            done: 0,
            retries: 0,
            aborted: None,
            finished_at: None,
            bg_queue: VecDeque::new(),
            bg_active: false,
            rr_cursor: 0,
            rng,
            faults,
            epoch: vec![0; n],
            running: vec![Vec::new(); workers],
            inflight: HashMap::new(),
            node_up: vec![true; workers],
            node_incarnation: vec![0; workers],
            node_spot: vec![spot_active; workers],
            completed: vec![false; n],
            rescued: HashSet::new(),
            rescue_waiters: HashMap::new(),
            producer_of,
            written: HashSet::new(),
            staged_out: HashSet::new(),
            any_files_lost: false,
            stall_until: None,
            fault_counters: FaultCounters::default(),
            node_segments,
            fault_rng_task: DetRng::stream(cfg.seed, "engine.faults.task"),
            fault_rng_storage: DetRng::stream(cfg.seed, "engine.faults.storage"),
            fault_rng_node,
            fault_rng_spot,
            obs: ObsHandle::disabled(),
            cfg,
        }
    }

    /// Is `epoch` still the live execution of `task`?
    pub fn live(&self, task: TaskId, epoch: u32) -> bool {
        self.epoch[task.index()] == epoch
    }

    /// Has the run reached a terminal state (all tasks done, or aborted)?
    /// Fault event handlers check this first so post-run events are pure
    /// no-ops and the simulation drains.
    pub fn run_over(&self) -> bool {
        self.done == self.wf.task_count() || self.aborted.is_some()
    }

    /// Register an active flow belonging to `task`'s current execution.
    pub fn register_flow(&mut self, task: TaskId, id: FlowId) {
        self.inflight.entry(task).or_default().push(id);
    }

    /// Drop a completed flow's registration.
    pub fn unregister_flow(&mut self, task: TaskId, id: FlowId) {
        if let Some(ids) = self.inflight.get_mut(&task) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.inflight.remove(&task);
            }
        }
    }

    /// Close the open billing segment of cluster node `node_ix`.
    pub fn close_segment(&mut self, node_ix: usize, at: SimTime) {
        if let Some(seg) = self.node_segments[node_ix].last_mut() {
            if seg.close.is_none() {
                seg.close = Some(at);
                self.obs.emit(Event::SegmentClose {
                    node: node_ix as u32,
                });
            }
        }
    }

    /// Open a fresh billing segment on cluster node `node_ix`.
    pub fn open_segment(&mut self, node_ix: usize, at: SimTime, spot: bool) {
        self.node_segments[node_ix].push(NodeSegment {
            open: at,
            close: None,
            spot,
        });
        self.obs.emit(Event::SegmentOpen {
            node: node_ix as u32,
            spot,
        });
    }

    /// Input `FileRef`s of a task.
    pub fn task_inputs(&self, t: TaskId) -> Vec<FileRef> {
        self.wf
            .task(t)
            .inputs
            .iter()
            .map(|&f| (f, self.wf.file(f).size))
            .collect()
    }

    /// Output `FileRef`s of a task.
    pub fn task_outputs(&self, t: TaskId) -> Vec<FileRef> {
        self.wf
            .task(t)
            .outputs
            .iter()
            .map(|&f| (f, self.wf.file(f).size))
            .collect()
    }

    /// Workflow input files (pre-staged before the run, §III.C).
    pub fn workflow_inputs(&self) -> Vec<FileRef> {
        self.wf
            .files()
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class == FileClass::Input)
            .map(|(i, f)| (wfdag::FileId(i as u32), f.size))
            .collect()
    }

    /// Pick a worker for `task` under the configured policy, or `None` if
    /// nothing fits right now.
    pub fn pick_node(&mut self, task: TaskId) -> Option<usize> {
        let need_mem = self.wf.task(task).peak_mem;
        let n = self.node_sched.len();
        let fits = |s: &NodeSched| s.free_slots > 0 && s.free_mem >= need_mem;
        match self.cfg.scheduler {
            SchedulerPolicy::LocalityBlind => {
                // Rotating first-fit: spreads load without looking at data.
                for off in 0..n {
                    let i = (self.rr_cursor + off) % n;
                    if fits(&self.node_sched[i]) {
                        self.rr_cursor = (i + 1) % n;
                        return Some(i);
                    }
                }
                None
            }
            SchedulerPolicy::DataAware => {
                let inputs = self.task_inputs(task);
                let mut best: Option<(u64, usize)> = None;
                for i in 0..n {
                    if !fits(&self.node_sched[i]) {
                        continue;
                    }
                    let node_id = self.cluster.workers()[i];
                    let local = self.storage.local_bytes(&self.cluster, node_id, &inputs);
                    // Ties broken by index for determinism.
                    if best.is_none_or(|(b, _)| local > b) {
                        best = Some((local, i));
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }

    /// Reserve a slot + memory on worker index `i` for `task`.
    pub fn reserve(&mut self, i: usize, task: TaskId) {
        let need = self.wf.task(task).peak_mem;
        let s = &mut self.node_sched[i];
        debug_assert!(s.free_slots > 0 && s.free_mem >= need);
        s.free_slots -= 1;
        s.free_mem -= need;
    }

    /// Release the slot + memory held by `task` on worker index `i`.
    pub fn release(&mut self, i: usize, task: TaskId) {
        let need = self.wf.task(task).peak_mem;
        let s = &mut self.node_sched[i];
        s.free_slots += 1;
        s.free_mem += need;
    }
}
