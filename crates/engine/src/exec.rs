//! Executing storage [`OpPlan`]s against the simulator.

use crate::world::World;
use simcore::{FlowId, Sim};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use wfdag::TaskId;
use wfobs::Event;
use wfstorage::op::{Note, OpPlan, Stage};

/// A continuation fired when an operation completes.
pub type Cont = Box<dyn FnOnce(&mut Sim<World>, &mut World)>;

/// A `(task, epoch)` pair identifying one task execution. Guarded stages
/// check it before starting work (a killed execution's stale events
/// no-op) and register their flows so a kill can cancel them.
pub type ExecGuard = Option<(TaskId, u32)>;

/// Execute a plan: background stages are queued onto the world's single
/// writeback stream; foreground stages run in order; `done` fires when the
/// last foreground stage completes.
pub fn exec_plan(sim: &mut Sim<World>, world: &mut World, plan: OpPlan, done: Cont) {
    exec_plan_guarded(sim, world, plan, None, done);
}

/// [`exec_plan`] on behalf of one task execution: if the execution dies
/// (node crash, storage failover, spot termination), pending latency
/// events no-op and registered flows are cancelled by the kill path.
/// Background stages stay unguarded — writeback belongs to the storage
/// service, not the task.
pub fn exec_plan_guarded(
    sim: &mut Sim<World>,
    world: &mut World,
    plan: OpPlan,
    guard: ExecGuard,
    done: Cont,
) {
    for (stage, note) in plan.background {
        enqueue_background(sim, world, stage, note);
    }
    exec_stages(sim, world, plan.stages.into(), guard, done);
}

/// Run stages sequentially, then `done`.
fn exec_stages(
    sim: &mut Sim<World>,
    world: &mut World,
    mut stages: VecDeque<Stage>,
    guard: ExecGuard,
    done: Cont,
) {
    match stages.pop_front() {
        None => done(sim, world),
        Some(stage) => exec_stage(
            sim,
            stage,
            guard,
            Box::new(move |sim, world| exec_stages(sim, world, stages, guard, done)),
        ),
    }
}

/// Run one stage: pay the latency, then run all legs in parallel; `done`
/// fires when the last leg lands.
fn exec_stage(sim: &mut Sim<World>, stage: Stage, guard: ExecGuard, done: Cont) {
    sim.schedule_in(stage.latency, move |sim, world| {
        if let Some((task, epoch)) = guard {
            if !world.live(task, epoch) {
                return;
            }
        }
        if stage.legs.is_empty() {
            done(sim, world);
            return;
        }
        let remaining = Rc::new(Cell::new(stage.legs.len()));
        let done_slot = Rc::new(RefCell::new(Some(done)));
        for leg in &stage.legs {
            let remaining = Rc::clone(&remaining);
            let done_slot = Rc::clone(&done_slot);
            // The flow's own id, captured by its completion callback so
            // it can unregister itself (set right after start_flow).
            let id_cell: Rc<Cell<Option<FlowId>>> = Rc::new(Cell::new(None));
            let id_for_cb = Rc::clone(&id_cell);
            let id = sim.start_flow(leg.to_spec(), move |sim, world| {
                if let (Some((task, _)), Some(id)) = (guard, id_for_cb.get()) {
                    world.unregister_flow(task, id);
                }
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    let d = done_slot
                        .borrow_mut()
                        .take()
                        .expect("continuation fired twice");
                    d(sim, world);
                }
            });
            id_cell.set(id);
            if let (Some((task, _)), Some(id)) = (guard, id) {
                world.register_flow(task, id);
            }
        }
    });
}

/// Queue a background stage onto the single writeback stream.
fn enqueue_background(sim: &mut Sim<World>, world: &mut World, stage: Stage, note: Option<Note>) {
    world.bg_queue.push_back((stage, note));
    world.obs.emit(Event::BgEnqueue {
        depth: world.bg_queue.len() as u32,
    });
    if !world.bg_active {
        start_next_background(sim, world);
    }
}

/// Start the next queued background stage, if any.
fn start_next_background(sim: &mut Sim<World>, world: &mut World) {
    let Some((stage, note)) = world.bg_queue.pop_front() else {
        world.bg_active = false;
        return;
    };
    world.bg_active = true;
    world.obs.emit(Event::BgStart {
        depth: world.bg_queue.len() as u32,
    });
    exec_stage(
        sim,
        stage,
        None,
        Box::new(move |sim, world| {
            world.obs.emit(Event::BgDone);
            if let Some(n) = note {
                world.storage.on_background_done(n);
            }
            start_next_background(sim, world);
        }),
    );
}
