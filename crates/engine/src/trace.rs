//! Execution tracing and post-mortem analysis: phase decomposition,
//! Pegasus-style jobstate logs, per-node Gantt charts and utilization
//! summaries over a completed run.

use crate::run::{FaultSummary, RunStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use wfdag::{TaskId, Workflow};
use wfobs::{Event, ObsReport, Phase};

/// Slot-seconds spent in each phase of the task lifecycle, summed over
/// all tasks — where the cluster's time actually went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// DAGMan/Condor dispatch overhead.
    pub overhead: f64,
    /// POSIX operation storms (NFS request processing).
    pub ops: f64,
    /// Stage-in transfers (S3 GETs, direct-transfer pulls).
    pub stage_in: f64,
    /// Input reads through the storage system.
    pub read: f64,
    /// Pure compute.
    pub compute: f64,
    /// Output writes through the storage system.
    pub write: f64,
    /// Stage-out transfers (S3 PUTs).
    pub stage_out: f64,
}

impl PhaseBreakdown {
    /// Total slot-seconds.
    pub fn total(&self) -> f64 {
        self.overhead
            + self.ops
            + self.stage_in
            + self.read
            + self.compute
            + self.write
            + self.stage_out
    }

    /// The I/O share (everything but compute and dispatch overhead).
    pub fn io_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            return 0.0;
        }
        (self.ops + self.stage_in + self.read + self.write + self.stage_out) / t
    }
}

/// Decompose a run into phase totals.
pub fn phase_breakdown(stats: &RunStats) -> PhaseBreakdown {
    let mut p = PhaseBreakdown::default();
    for r in &stats.records {
        p.overhead += r.overhead_secs();
        p.ops += r.ops_secs();
        p.stage_in += r.stage_in_secs();
        p.read += r.read_secs();
        p.compute += r.cpu_secs();
        p.write += r.write_secs();
        p.stage_out += r.stage_out_secs();
    }
    p
}

/// Render a phase breakdown as an ASCII table with bars.
pub fn render_phases(p: &PhaseBreakdown) -> String {
    let mut s = String::new();
    let total = p.total().max(1e-12);
    let rows = [
        ("dispatch overhead", p.overhead),
        ("op storms (NFS)", p.ops),
        ("stage-in", p.stage_in),
        ("reads", p.read),
        ("compute", p.compute),
        ("writes", p.write),
        ("stage-out", p.stage_out),
    ];
    let _ = writeln!(s, "PHASE BREAKDOWN — slot-seconds by lifecycle phase");
    for (name, v) in rows {
        let pct = v / total * 100.0;
        let bar = "#".repeat((pct / 2.5).round() as usize);
        let _ = writeln!(s, "  {name:<18} {v:>10.1}s {pct:>5.1}% |{bar}");
    }
    s
}

/// Emit a Pegasus-jobstate.log-style trace: one line per lifecycle event,
/// sorted by time. Useful for feeding external workflow analysis tools.
pub fn jobstate_log(stats: &RunStats, wf: &Workflow) -> String {
    let mut events: Vec<(u64, String)> = Vec::with_capacity(stats.records.len() * 3);
    for r in stats.records.iter() {
        // Key by the record's own task id — records need not be aligned
        // with `wf.tasks()` (filtered or re-ordered record sets are fine).
        let name = &wf.task(r.task).name;
        let node = r.node.0;
        events.push((
            r.start_at.as_nanos(),
            format!("{:.3} {name} SUBMIT node_{node}", r.start_at.as_secs_f64()),
        ));
        events.push((
            r.compute_start.as_nanos(),
            format!(
                "{:.3} {name} EXECUTE node_{node}",
                r.compute_start.as_secs_f64()
            ),
        ));
        events.push((
            r.end_at.as_nanos(),
            format!(
                "{:.3} {name} JOB_TERMINATED node_{node} attempts={}",
                r.end_at.as_secs_f64(),
                r.attempts
            ),
        ));
    }
    events.sort();
    let mut s = String::with_capacity(events.len() * 48);
    for (_, line) in events {
        s.push_str(&line);
        s.push('\n');
    }
    s
}

/// A per-node occupancy Gantt chart: each node row shows how many slots
/// were busy over time (digits 0–9, `*` for ≥10), over `width` buckets.
pub fn render_gantt(stats: &RunStats, workers: u32, width: usize) -> String {
    let spans: Vec<(u32, u64, u64)> = stats
        .records
        .iter()
        .map(|r| (r.node.0, r.start_at.as_nanos(), r.end_at.as_nanos()))
        .collect();
    render_gantt_rows(&spans, stats.makespan_secs, workers, width)
}

/// Shared Gantt renderer over raw `(node, start_nanos, end_nanos)` spans.
fn render_gantt_rows(
    spans: &[(u32, u64, u64)],
    makespan_secs: f64,
    workers: u32,
    width: usize,
) -> String {
    let mut s = String::new();
    if width == 0 || workers == 0 {
        let _ = writeln!(s, "NODE OCCUPANCY — nothing to draw (0 buckets or 0 nodes)");
        return s;
    }
    let span = makespan_secs.max(1e-9);
    let _ = writeln!(
        s,
        "NODE OCCUPANCY — busy slots over time ({width} buckets of {:.1}s)",
        span / width as f64
    );
    for w in 0..workers {
        let mut busy = vec![0u32; width];
        for &(node, start, end) in spans {
            if node != w {
                continue;
            }
            let start = start as f64 / 1e9;
            let end = end as f64 / 1e9;
            // Clamp both ends into [0, width]; an empty clamped range
            // (start beyond the makespan) simply paints nothing.
            let a = ((start / span * width as f64) as usize).min(width);
            let b = ((end / span * width as f64).ceil() as usize).min(width);
            for bucket in &mut busy[a..b] {
                *bucket += 1;
            }
        }
        let row: String = busy
            .iter()
            .map(|&n| match n {
                0 => '.',
                1..=9 => char::from_digit(n, 10).unwrap(),
                _ => '*',
            })
            .collect();
        let _ = writeln!(s, "  node_{w:<3} |{row}|");
    }
    s
}

/// Render the fault/recovery counters of a run — what was injected, what
/// it killed, and how much work was wasted and redone.
pub fn render_fault_summary(f: &crate::run::FaultSummary) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "FAULTS — injections, kills and recovery work");
    let _ = writeln!(s, "  node crashes       {:>8}", f.node_crashes);
    let _ = writeln!(s, "  spot terminations  {:>8}", f.spot_terminations);
    let _ = writeln!(s, "  storage failures   {:>8}", f.storage_failures);
    let _ = writeln!(s, "  files lost         {:>8}", f.files_lost);
    let _ = writeln!(s, "  tasks killed       {:>8}", f.tasks_killed);
    let _ = writeln!(s, "  rescue resubmits   {:>8}", f.rescue_resubmits);
    let _ = writeln!(s, "  wasted work        {:>8.1}s", f.wasted_task_secs);
    let churned = f.segments.iter().filter(|g| g.secs > 0.0).count();
    let _ = writeln!(s, "  billing segments   {:>8}", churned);
    s
}

// ---------------------------------------------------------------------
// Bus consumers: the same post-mortem views, rebuilt from the wfobs
// event stream alone (no `TaskRecord` access). Running a workflow at
// `ObsLevel::Full` yields the report these functions consume; the test
// suite asserts the bus-derived phase totals match the record-derived
// ones to 1e-6.
// ---------------------------------------------------------------------

fn phase_bucket(p: &mut PhaseBreakdown, phase: Phase) -> &mut f64 {
    match phase {
        Phase::Ops => &mut p.ops,
        Phase::StageIn => &mut p.stage_in,
        Phase::Read => &mut p.read,
        Phase::Compute => &mut p.compute,
        Phase::Write => &mut p.write,
        Phase::StageOut => &mut p.stage_out,
    }
}

/// Per-task phase accumulator for the bus walk: tracks the currently
/// open interval (`None` phase = the dispatch-overhead interval).
#[derive(Clone, Copy, Default)]
struct PhaseAcc {
    p: PhaseBreakdown,
    mark: u64,
    phase: Option<Phase>,
    open: bool,
}

impl PhaseAcc {
    fn close_interval(&mut self, t: u64) {
        let d = (t - self.mark) as f64 / 1e9;
        match self.phase {
            None => self.p.overhead += d,
            Some(ph) => *phase_bucket(&mut self.p, ph) += d,
        }
        self.mark = t;
    }
}

/// Rebuild the phase breakdown from the observability event stream.
///
/// A `TaskStart` resets the task's accumulator (so a retried task counts
/// only its final attempt, matching [`phase_breakdown`]'s record-based
/// semantics); `TaskKilled`/`TaskFailed` discard the partial attempt.
pub fn phase_breakdown_from_bus(report: &ObsReport) -> PhaseBreakdown {
    let mut acc: HashMap<u32, PhaseAcc> = HashMap::new();
    let mut totals = PhaseBreakdown::default();
    for &(t, ev) in &report.events {
        match ev {
            Event::TaskStart { task, .. } => {
                acc.insert(
                    task,
                    PhaseAcc {
                        mark: t,
                        open: true,
                        ..PhaseAcc::default()
                    },
                );
            }
            Event::TaskPhase { task, phase, .. } => {
                if let Some(a) = acc.get_mut(&task) {
                    if a.open {
                        a.close_interval(t);
                        a.phase = Some(phase);
                    }
                }
            }
            Event::TaskEnd { task, .. } => {
                if let Some(a) = acc.get_mut(&task) {
                    if a.open {
                        a.close_interval(t);
                        a.open = false;
                        totals.overhead += a.p.overhead;
                        totals.ops += a.p.ops;
                        totals.stage_in += a.p.stage_in;
                        totals.read += a.p.read;
                        totals.compute += a.p.compute;
                        totals.write += a.p.write;
                        totals.stage_out += a.p.stage_out;
                    }
                }
            }
            Event::TaskKilled { task, .. } | Event::TaskFailed { task, .. } => {
                if let Some(a) = acc.get_mut(&task) {
                    a.open = false;
                }
            }
            _ => {}
        }
    }
    totals
}

/// Rebuild a Pegasus-jobstate-style log from the event stream. Richer
/// than [`jobstate_log`]: every attempt appears (including evicted and
/// failed ones), not just the final successful execution.
pub fn jobstate_log_from_bus(report: &ObsReport, wf: &Workflow) -> String {
    let mut s = String::new();
    for &(t, ev) in &report.events {
        let secs = t as f64 / 1e9;
        match ev {
            Event::TaskStart { task, node, .. } => {
                let name = &wf.task(TaskId(task)).name;
                let _ = writeln!(s, "{secs:.3} {name} SUBMIT node_{node}");
            }
            Event::TaskPhase {
                task,
                node,
                phase: Phase::Compute,
            } => {
                let name = &wf.task(TaskId(task)).name;
                let _ = writeln!(s, "{secs:.3} {name} EXECUTE node_{node}");
            }
            Event::TaskEnd {
                task,
                node,
                attempt,
            } => {
                let name = &wf.task(TaskId(task)).name;
                let _ = writeln!(
                    s,
                    "{secs:.3} {name} JOB_TERMINATED node_{node} attempts={attempt}"
                );
            }
            Event::TaskKilled { task, node, .. } => {
                let name = &wf.task(TaskId(task)).name;
                let _ = writeln!(s, "{secs:.3} {name} JOB_EVICTED node_{node}");
            }
            Event::TaskFailed { task, node } => {
                let name = &wf.task(TaskId(task)).name;
                let _ = writeln!(s, "{secs:.3} {name} JOB_FAILURE node_{node}");
            }
            _ => {}
        }
    }
    s
}

/// Rebuild the fault counters from the event stream. Billing segments
/// are left empty — instance types never cross the bus; take them from
/// `RunStats::faults::segments`.
pub fn fault_summary_from_bus(report: &ObsReport) -> FaultSummary {
    let mut f = FaultSummary::default();
    for &(_, ev) in &report.events {
        match ev {
            Event::Fault { kind, .. } => match kind {
                wfobs::FaultKind::NodeCrash => f.node_crashes += 1,
                wfobs::FaultKind::SpotTermination => f.spot_terminations += 1,
                wfobs::FaultKind::StorageFailure => f.storage_failures += 1,
            },
            Event::TaskKilled { wasted_nanos, .. } => {
                f.tasks_killed += 1;
                f.wasted_task_secs += wasted_nanos as f64 / 1e9;
            }
            Event::RescueResubmit { .. } => f.rescue_resubmits += 1,
            Event::FilesLost { count } => f.files_lost += count as u64,
            _ => {}
        }
    }
    f
}

/// Rebuild the per-node occupancy Gantt chart from the event stream:
/// task spans are `TaskStart` to `TaskEnd`/`TaskKilled` per node, so
/// evicted attempts paint the chart too (unlike the record-based view).
pub fn render_gantt_from_bus(report: &ObsReport, workers: u32, width: usize) -> String {
    let mut open: HashMap<u32, (u32, u64)> = HashMap::new();
    let mut spans: Vec<(u32, u64, u64)> = Vec::new();
    let mut t_end = 0u64;
    for &(t, ev) in &report.events {
        t_end = t_end.max(t);
        match ev {
            Event::TaskStart { task, node, .. } => {
                open.insert(task, (node, t));
            }
            Event::TaskEnd { task, .. }
            | Event::TaskKilled { task, .. }
            | Event::TaskFailed { task, .. } => {
                if let Some((node, start)) = open.remove(&task) {
                    spans.push((node, start, t));
                }
            }
            _ => {}
        }
    }
    for (_, (node, start)) in open {
        spans.push((node, start, t_end));
    }
    render_gantt_rows(&spans, t_end as f64 / 1e9, workers, width)
}

// ---------------------------------------------------------------------
// OTLP consumers: labels that join run metadata onto the exporter, and
// the inverse mappings that reconstruct the paper's deliverables (phase
// breakdown, billing segments) from a decoded OTLP document alone. The
// parity suite holds both reconstructions to 1e-6 of the bus/record
// paths — the proof that the exported trace carries the whole story.
// ---------------------------------------------------------------------

/// Build the label set the OTLP exporter joins onto the event stream of
/// a finished run: task names from the workflow, the storage/cluster
/// resource attributes, and one billing record per instance incarnation
/// (from `stats.faults.segments`, which is ordered per node exactly like
/// the `SegmentOpen` stream).
pub fn otlp_labels(
    stats: &RunStats,
    wf: &Workflow,
    storage_label: &str,
    workers: u32,
) -> wfobs::OtlpLabels {
    wfobs::OtlpLabels {
        service_name: "wfsim".to_string(),
        run_name: wf.name.clone(),
        storage: storage_label.to_string(),
        workers,
        task_names: wf.tasks().iter().map(|t| t.name.clone()).collect(),
        node_names: Vec::new(),
        segments: stats
            .faults
            .segments
            .iter()
            .map(|s| wfobs::SegmentLabel {
                node: s.node,
                itype: s.itype.api_name().to_string(),
                spot: s.spot,
                secs: s.secs,
            })
            .collect(),
    }
}

/// Rebuild the phase breakdown from a decoded OTLP trace: sum the phase
/// spans of task attempts that finished `ok` (matching
/// [`phase_breakdown_from_bus`], which drops killed/failed attempts).
pub fn phase_breakdown_from_otlp(trace: &wfobs::otlp::decode::Trace) -> PhaseBreakdown {
    let ok_tasks: std::collections::HashSet<&str> = trace
        .spans
        .iter()
        .filter(|s| {
            s.attr("wf.task.outcome")
                .and_then(|v| v.as_str())
                .is_some_and(|o| o == "ok")
        })
        .map(|s| s.span_id.as_str())
        .collect();
    let mut p = PhaseBreakdown::default();
    for s in &trace.spans {
        let Some(label) = s.attr("wf.phase").and_then(|v| v.as_str()) else {
            continue;
        };
        if !ok_tasks.contains(s.parent_span_id.as_str()) {
            continue;
        }
        let d = (s.end - s.start) as f64 / 1e9;
        match label {
            "overhead" => p.overhead += d,
            "ops" => p.ops += d,
            "stage-in" => p.stage_in += d,
            "read" => p.read += d,
            "compute" => p.compute += d,
            "write" => p.write += d,
            "stage-out" => p.stage_out += d,
            _ => {}
        }
    }
    p
}

/// Rebuild the billed lease intervals from a decoded OTLP trace: every
/// node-incarnation span carries `wf.billing.*` attributes, and the
/// instance type parses back through `InstanceType::from_api_name`.
/// Feeding the result to `wfcost::CostModel::segments_cents` reproduces
/// the run's resource bill.
pub fn segments_from_otlp(trace: &wfobs::otlp::decode::Trace) -> Vec<wfcost::BilledSegment> {
    let mut out = Vec::new();
    for s in &trace.spans {
        let Some(itype) = s
            .attr("wf.billing.itype")
            .and_then(|v| v.as_str())
            .and_then(vcluster::InstanceType::from_api_name)
        else {
            continue;
        };
        out.push(wfcost::BilledSegment {
            node: s.attr("wf.node.id").and_then(|v| v.as_i64()).unwrap_or(0) as u32,
            itype,
            secs: s
                .attr("wf.billing.secs")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0),
            spot: s
                .attr("wf.billing.spot")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        });
    }
    out
}

/// The busiest resources of a run, by mean utilization — the first place
/// to look when asking "what limited this configuration?".
pub fn hottest_resources(stats: &RunStats, top: usize) -> String {
    let mut rows: Vec<_> = stats.resources.iter().collect();
    rows.sort_by(|a, b| b.mean_utilization.total_cmp(&a.mean_utilization));
    let mut s = String::new();
    let _ = writeln!(s, "HOTTEST RESOURCES — mean utilization over the makespan");
    for r in rows.into_iter().take(top) {
        let bar = "#".repeat((r.mean_utilization * 40.0).round() as usize);
        let _ = writeln!(
            s,
            "  {:<14} {:>5.1}% busy {:>8.1}s |{bar}",
            r.name,
            r.mean_utilization * 100.0,
            r.busy_secs
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workflow, RunConfig};
    use wfdag::WorkflowBuilder;
    use wfstorage::StorageKind;

    fn run() -> (RunStats, Workflow) {
        let mut b = WorkflowBuilder::new("trace");
        let f1 = b.file("a", 50_000_000);
        let f2 = b.file("b", 20_000_000);
        b.task("t0", "gen", 3.0, 256 << 20, vec![], vec![f1]);
        b.task("t1", "use", 5.0, 256 << 20, vec![f1], vec![f2]);
        let wf = b.build().unwrap();
        let stats = run_workflow(wf.clone(), RunConfig::cell(StorageKind::S3, 2)).unwrap();
        (stats, wf)
    }

    #[test]
    fn phases_partition_the_slot_time() {
        let (stats, _) = run();
        let p = phase_breakdown(&stats);
        let slot_time: f64 = stats
            .records
            .iter()
            .map(|r| r.end_at.since(r.start_at).as_secs_f64())
            .sum();
        assert!(
            (p.total() - slot_time).abs() < 1e-6,
            "{} vs {slot_time}",
            p.total()
        );
        assert!(p.compute >= 8.0 - 1e-6);
        assert!(p.stage_in > 0.0, "S3 runs must stage in");
        assert!((0.0..=1.0).contains(&p.io_fraction()));
    }

    #[test]
    fn jobstate_log_is_ordered_and_complete() {
        let (stats, wf) = run();
        let log = jobstate_log(&stats, &wf);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2 * 3);
        assert!(lines[0].contains("SUBMIT"));
        assert!(lines.last().unwrap().contains("JOB_TERMINATED"));
        let times: Vec<f64> = lines
            .iter()
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gantt_renders_one_row_per_node() {
        let (stats, _) = run();
        let g = render_gantt(&stats, 2, 40);
        assert_eq!(g.lines().count(), 3, "{g}");
        assert!(g.contains("node_0"));
        assert!(g.contains('1'), "some bucket must show one busy slot: {g}");
    }

    #[test]
    fn hottest_resources_lists_top() {
        let (stats, _) = run();
        let h = hottest_resources(&stats, 3);
        assert_eq!(h.lines().count(), 4);
    }

    #[test]
    fn render_phases_shows_percentages() {
        let (stats, _) = run();
        let out = render_phases(&phase_breakdown(&stats));
        assert!(out.contains("compute"));
        assert!(out.contains('%'));
    }
}
