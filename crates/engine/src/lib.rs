//! # wfengine — the workflow management system
//!
//! Mirrors the paper's software stack (§III.A) inside the simulator:
//!
//! * a **planner** role is played by the per-storage job wrapping (S3 jobs
//!   get GET/PUT stage-in/out, POSIX jobs mount the shared file system);
//! * **DAGMan** becomes the dependency-release logic in [`driver`];
//! * the **Condor schedd** becomes the matchmaker: slot- and memory-aware,
//!   and — exactly as the paper notes (§IV.A) — blind to data locality
//!   (a [`SchedulerPolicy::DataAware`] variant implements the paper's
//!   suggested improvement as ablation A3).
//!
//! Entry point: [`run_workflow`].
//!
//! ```
//! use wfengine::{run_workflow, RunConfig};
//! use wfstorage::StorageKind;
//! use wfdag::WorkflowBuilder;
//!
//! let mut b = WorkflowBuilder::new("demo");
//! let f = b.file("data", 10_000_000);
//! b.task("gen", "gen", 1.0, 0, vec![], vec![f]);
//! let stats = run_workflow(b.build().unwrap(), RunConfig::cell(StorageKind::Nfs, 2)).unwrap();
//! assert_eq!(stats.tasks, 1);
//! assert!(stats.makespan_secs > 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod exec;
mod exec_tests;
mod failures;
pub mod run;
pub mod trace;
pub mod world;

pub use config::{
    FailureModel, FaultPlan, NodeCrashSpec, RetryBackoff, RunConfig, SchedulerPolicy, SpotSpec,
    StorageFailureSpec,
};
pub use run::{run_workflow, run_workflow_with_obs, FaultSummary, ResourceRow, RunError, RunStats};
pub use trace::{
    fault_summary_from_bus, jobstate_log, jobstate_log_from_bus, otlp_labels, phase_breakdown,
    phase_breakdown_from_bus, phase_breakdown_from_otlp, render_fault_summary,
    render_gantt_from_bus, segments_from_otlp, PhaseBreakdown,
};
pub use world::{FaultCounters, NodeSched, NodeSegment, TaskRecord, World};

#[cfg(test)]
mod tests {
    use super::*;
    use wfdag::WorkflowBuilder;
    use wfstorage::StorageKind;

    fn diamond(mb: u64) -> wfdag::Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let fin = b.file("in.dat", mb * 1_000_000);
        let f1 = b.file("f1.dat", mb * 1_000_000);
        let f2 = b.file("f2.dat", mb * 1_000_000);
        let f3 = b.file("f3.dat", mb * 1_000_000);
        let fout = b.file("out.dat", mb * 1_000_000);
        b.task("a", "gen", 2.0, 100 << 20, vec![fin], vec![f1, f2]);
        b.task("b", "lhs", 3.0, 100 << 20, vec![f1], vec![f3]);
        b.task("c", "rhs", 3.0, 100 << 20, vec![f2], vec![fout]);
        let f4 = b.file("out2.dat", mb * 1_000_000);
        b.task("d", "join", 1.0, 100 << 20, vec![f3], vec![f4]);
        b.build().unwrap()
    }

    #[test]
    fn diamond_runs_on_every_storage_kind() {
        for kind in StorageKind::ALL {
            let workers = if kind == StorageKind::Local { 1 } else { 2 };
            let stats = run_workflow(diamond(5), RunConfig::cell(kind, workers))
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(stats.tasks, 4, "{kind:?}");
            assert!(stats.makespan_secs > 0.0, "{kind:?}");
            // Compute alone is 2+max(3,3)+1 = 6 s on the critical path,
            // plus I/O and overhead.
            assert!(
                stats.makespan_secs >= 6.0,
                "{kind:?}: {}",
                stats.makespan_secs
            );
            assert!(
                stats.makespan_secs < 600.0,
                "{kind:?}: {}",
                stats.makespan_secs
            );
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a = run_workflow(diamond(5), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let b = run_workflow(diamond(5), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn memory_limits_concurrency() {
        // 8 independent tasks of 3 GB on a 7 GB worker: at most 2 run at
        // once, so the makespan must exceed 4 × compute.
        let mut b = WorkflowBuilder::new("mem");
        for i in 0..8 {
            let f = b.file(format!("o{i}"), 1000);
            b.task(format!("t{i}"), "big", 10.0, 3 << 30, vec![], vec![f]);
        }
        let wf = b.build().unwrap();
        let stats = run_workflow(wf, RunConfig::cell(StorageKind::Nfs, 1)).unwrap();
        assert!(
            stats.makespan_secs >= 40.0,
            "memory limit ignored: {}",
            stats.makespan_secs
        );
    }

    #[test]
    fn oversized_task_is_rejected() {
        let mut b = WorkflowBuilder::new("huge");
        let f = b.file("o", 10);
        b.task("t", "huge", 1.0, 64 << 30, vec![], vec![f]);
        let err =
            run_workflow(b.build().unwrap(), RunConfig::cell(StorageKind::Nfs, 1)).unwrap_err();
        assert!(matches!(err, RunError::TaskTooLarge { .. }));
    }

    #[test]
    fn io_fraction_reflects_workload() {
        // A compute-heavy diamond should have a low I/O fraction.
        let stats = run_workflow(diamond(1), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        assert!(
            stats.io_fraction() < 0.5,
            "io_fraction={}",
            stats.io_fraction()
        );
        assert!(stats.total_cpu_secs >= 8.9, "{}", stats.total_cpu_secs);
    }

    #[test]
    fn records_are_consistent() {
        let stats = run_workflow(diamond(5), RunConfig::cell(StorageKind::S3, 2)).unwrap();
        for r in &stats.records {
            assert!(r.ready_at <= r.start_at);
            assert!(r.start_at <= r.compute_start);
            assert!(r.compute_start <= r.compute_end);
            assert!(r.compute_end <= r.end_at);
        }
        // Dependencies respected: task d starts after b ends.
        assert!(stats.records[3].start_at >= stats.records[1].end_at);
    }

    #[test]
    fn more_workers_do_not_slow_down_parallel_workload() {
        let mut b = WorkflowBuilder::new("wide");
        for i in 0..32 {
            let f = b.file(format!("o{i}"), 1_000_000);
            b.task(format!("t{i}"), "w", 5.0, 100 << 20, vec![], vec![f]);
        }
        let wf = b.build().unwrap();
        let two = run_workflow(wf.clone(), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let four = run_workflow(wf, RunConfig::cell(StorageKind::GlusterNufa, 4)).unwrap();
        assert!(
            four.makespan_secs <= two.makespan_secs * 1.05,
            "4 workers ({}) slower than 2 ({})",
            four.makespan_secs,
            two.makespan_secs
        );
    }
}
