//! Run configuration: one cell of the paper's experiment grid.

use simcore::SimDuration;
use vcluster::InstanceType;
use wfstorage::{StorageConfigs, StorageKind};

/// How the matchmaker picks a node for a ready job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The paper's Condor setup: no data locality, no parent-child
    /// affinity (§IV.A) — eligible nodes are tried in a rotating order.
    LocalityBlind,
    /// The "more data-aware scheduler" the paper suggests could improve
    /// cache hits (§IV.A) — prefer the eligible node holding the most
    /// input bytes. Ablation A3.
    DataAware,
}

/// Transient-failure injection: each task execution fails with
/// probability `prob`; DAGMan re-queues it up to `max_retries` times
/// (Pegasus/DAGMan's standard retry behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Per-execution failure probability in `[0, 1)`.
    pub prob: f64,
    /// Maximum retries before the workflow aborts.
    pub max_retries: u32,
}

/// DAGMan-style exponential retry backoff: attempt `k`'s re-queue is
/// delayed by `base × factor^(k−1)`, capped at `max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBackoff {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per further attempt.
    pub factor: f64,
    /// Upper bound on the delay.
    pub max: SimDuration,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        RetryBackoff {
            base: SimDuration::from_secs(5),
            factor: 2.0,
            max: SimDuration::from_secs(300),
        }
    }
}

impl RetryBackoff {
    /// The delay before re-queuing a task that has failed `attempts`
    /// times (`attempts ≥ 1`).
    pub fn delay(&self, attempts: u32) -> SimDuration {
        let scale = self.factor.powi(attempts.saturating_sub(1).min(30) as i32);
        let secs = (self.base.as_secs_f64() * scale).min(self.max.as_secs_f64());
        SimDuration::from_secs_f64(secs)
    }
}

/// Node-crash injection: worker instances die mid-run, killing their
/// in-flight tasks and cancelling their flows.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCrashSpec {
    /// Per-node Poisson crash rate (crashes per node-hour), sampled from
    /// the per-node `engine.faults.node.<i>` stream. `0.0` samples
    /// nothing.
    pub rate_per_hour: f64,
    /// Explicit, deterministic crashes: `(worker index, at seconds)` —
    /// the unit-test and experiment-scenario interface.
    pub scheduled: Vec<(u32, f64)>,
    /// Re-provision a replacement instance after a boot delay (70–90 s,
    /// §V). Without it the node stays gone, which can deadlock the run.
    pub reprovision: bool,
}

/// Storage-server/peer failure injection, surfaced to the storage system
/// through `StorageSystem::on_node_failed`.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFailureSpec {
    /// Poisson failure rate (failures per hour) of the storage service,
    /// sampled from the `engine.faults.storage` stream.
    pub rate_per_hour: f64,
    /// Explicit failure instants in seconds (deterministic scenarios).
    pub scheduled: Vec<f64>,
    /// Service recovery time: how long an NFS-style stall lasts. Peer
    /// (brick) failures restart empty after the same delay but do not
    /// stall the run.
    pub recovery_secs: f64,
}

/// Spot-market revocation: workers run as spot instances and may be
/// terminated by price movements; terminated capacity is replaced by
/// on-demand instances (billed separately — the wasted-partial-hour
/// cost shows up in the per-segment billing).
#[derive(Debug, Clone, PartialEq)]
pub struct SpotSpec {
    /// Per-node Poisson termination rate (terminations per node-hour),
    /// sampled from the per-node `engine.faults.spot.<i>` stream.
    pub rate_per_hour: f64,
    /// Replace terminated capacity with an on-demand instance after a
    /// boot delay.
    pub replace: bool,
}

/// The complete multi-layer fault plan. Every stochastic choice draws
/// from dedicated named RNG streams, so (a) equal seeds give bit-identical
/// fault timelines and (b) a plan whose rates are all zero consumes no
/// randomness — such a run is bit-identical to one with no plan at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Transient per-execution task failures (the original
    /// [`FailureModel`], drawn from `engine.faults.task`).
    pub task_failures: Option<FailureModel>,
    /// Worker-instance crashes.
    pub node_crash: Option<NodeCrashSpec>,
    /// Storage-server/peer failures.
    pub storage_failure: Option<StorageFailureSpec>,
    /// Spot-market terminations.
    pub spot: Option<SpotSpec>,
    /// Retry backoff applied to every failure class.
    pub backoff: RetryBackoff,
    /// Retry budget for fault-killed executions (crashes, storage
    /// failures, terminations). Transient task failures keep their own
    /// [`FailureModel::max_retries`] budget.
    pub max_fault_retries: u32,
}

impl FaultPlan {
    /// A plan with every fault class disabled. Present-but-zero plans are
    /// bit-identical to no plan (the metamorphic property the test suite
    /// enforces).
    pub fn zero() -> Self {
        FaultPlan {
            task_failures: Some(FailureModel {
                prob: 0.0,
                max_retries: 0,
            }),
            node_crash: Some(NodeCrashSpec {
                rate_per_hour: 0.0,
                scheduled: Vec::new(),
                reprovision: true,
            }),
            storage_failure: Some(StorageFailureSpec {
                rate_per_hour: 0.0,
                scheduled: Vec::new(),
                recovery_secs: 0.0,
            }),
            spot: Some(SpotSpec {
                rate_per_hour: 0.0,
                replace: true,
            }),
            backoff: RetryBackoff::default(),
            max_fault_retries: 0,
        }
    }

    /// Lift a bare [`FailureModel`] (the `RunConfig::failures` field)
    /// into a plan with only transient task failures.
    pub fn from_failure_model(fm: FailureModel) -> Self {
        FaultPlan {
            task_failures: Some(fm),
            max_fault_retries: fm.max_retries,
            ..FaultPlan::default()
        }
    }
}

/// Configuration of one workflow execution.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Experiment seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// The data-sharing option under test.
    pub storage: StorageKind,
    /// Number of worker nodes (the paper sweeps 1, 2, 4, 8).
    pub workers: u32,
    /// Override the dedicated-server instance type (NFS: default
    /// `m1.xlarge`; §V.C also tries `m2.4xlarge`).
    pub server_type: Option<InstanceType>,
    /// Zero-fill ephemeral disks first (ablation A1).
    pub initialize_disks: bool,
    /// Matchmaking policy.
    pub scheduler: SchedulerPolicy,
    /// Per-job workflow-management overhead (DAGMan release + Condor
    /// matchmaking/dispatch), paid while holding the slot.
    pub job_overhead: SimDuration,
    /// Storage-system tunables (defaults are paper-calibrated).
    pub storage_cfgs: StorageConfigs,
    /// Optional transient-failure injection with DAGMan-style retries.
    /// Legacy shorthand: when `faults` is `None`, this is lifted into a
    /// task-failure-only [`FaultPlan`].
    pub failures: Option<FailureModel>,
    /// Full multi-layer fault plan (node crashes, storage failover, spot
    /// termination). Takes precedence over `failures` when set.
    pub faults: Option<FaultPlan>,
    /// Observability level: `Off` (default, zero-overhead), `Digest`
    /// (streaming run digest only) or `Full` (events + metrics +
    /// exporters).
    pub obs: wfobs::ObsLevel,
}

impl RunConfig {
    /// A cell of the paper's main grid: `storage` × `workers`, everything
    /// else as in §III–IV.
    pub fn cell(storage: StorageKind, workers: u32) -> Self {
        RunConfig {
            seed: 42,
            storage,
            workers,
            server_type: None,
            initialize_disks: false,
            scheduler: SchedulerPolicy::LocalityBlind,
            job_overhead: SimDuration::from_nanos(250_000_000), // 0.25 s
            storage_cfgs: StorageConfigs::default(),
            failures: None,
            faults: None,
            obs: wfobs::ObsLevel::Off,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style observability level override.
    pub fn with_obs(mut self, obs: wfobs::ObsLevel) -> Self {
        self.obs = obs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_defaults_match_paper_setup() {
        let c = RunConfig::cell(StorageKind::Nfs, 4);
        assert_eq!(c.workers, 4);
        assert_eq!(c.scheduler, SchedulerPolicy::LocalityBlind);
        assert!(!c.initialize_disks);
        assert!(c.server_type.is_none());
    }
}
