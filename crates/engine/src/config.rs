//! Run configuration: one cell of the paper's experiment grid.

use simcore::SimDuration;
use vcluster::InstanceType;
use wfstorage::{StorageConfigs, StorageKind};

/// How the matchmaker picks a node for a ready job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The paper's Condor setup: no data locality, no parent-child
    /// affinity (§IV.A) — eligible nodes are tried in a rotating order.
    LocalityBlind,
    /// The "more data-aware scheduler" the paper suggests could improve
    /// cache hits (§IV.A) — prefer the eligible node holding the most
    /// input bytes. Ablation A3.
    DataAware,
}

/// Transient-failure injection: each task execution fails with
/// probability `prob`; DAGMan re-queues it up to `max_retries` times
/// (Pegasus/DAGMan's standard retry behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Per-execution failure probability in `[0, 1)`.
    pub prob: f64,
    /// Maximum retries before the workflow aborts.
    pub max_retries: u32,
}

/// Configuration of one workflow execution.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Experiment seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// The data-sharing option under test.
    pub storage: StorageKind,
    /// Number of worker nodes (the paper sweeps 1, 2, 4, 8).
    pub workers: u32,
    /// Override the dedicated-server instance type (NFS: default
    /// `m1.xlarge`; §V.C also tries `m2.4xlarge`).
    pub server_type: Option<InstanceType>,
    /// Zero-fill ephemeral disks first (ablation A1).
    pub initialize_disks: bool,
    /// Matchmaking policy.
    pub scheduler: SchedulerPolicy,
    /// Per-job workflow-management overhead (DAGMan release + Condor
    /// matchmaking/dispatch), paid while holding the slot.
    pub job_overhead: SimDuration,
    /// Storage-system tunables (defaults are paper-calibrated).
    pub storage_cfgs: StorageConfigs,
    /// Optional transient-failure injection with DAGMan-style retries.
    pub failures: Option<FailureModel>,
}

impl RunConfig {
    /// A cell of the paper's main grid: `storage` × `workers`, everything
    /// else as in §III–IV.
    pub fn cell(storage: StorageKind, workers: u32) -> Self {
        RunConfig {
            seed: 42,
            storage,
            workers,
            server_type: None,
            initialize_disks: false,
            scheduler: SchedulerPolicy::LocalityBlind,
            job_overhead: SimDuration::from_nanos(250_000_000), // 0.25 s
            storage_cfgs: StorageConfigs::default(),
            failures: None,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_defaults_match_paper_setup() {
        let c = RunConfig::cell(StorageKind::Nfs, 4);
        assert_eq!(c.workers, 4);
        assert_eq!(c.scheduler, SchedulerPolicy::LocalityBlind);
        assert!(!c.initialize_disks);
        assert!(c.server_type.is_none());
    }
}
