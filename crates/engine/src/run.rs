//! Top-level entry point: execute one workflow under one configuration.

use crate::config::RunConfig;
use crate::driver::{makespan, start_run};
use crate::world::{TaskRecord, World};
use serde::{Deserialize, Serialize};
use simcore::{Sim, SimTime};
use vcluster::Cluster;
use wfcost::BilledSegment;
use wfdag::Workflow;
use wfstorage::{build_storage, cluster_spec_for, StorageBilling, StorageOpStats};

/// Injected faults and the recovery work they caused, plus the billing
/// segments the instance churn produced (feed them to
/// `wfcost::PriceBook::segments_cents` for the fault-adjusted bill).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Worker instances that crashed.
    pub node_crashes: u64,
    /// Spot instances revoked by the market.
    pub spot_terminations: u64,
    /// Storage service failures injected.
    pub storage_failures: u64,
    /// Executions killed mid-flight by a fault.
    pub tasks_killed: u64,
    /// Completed tasks resubmitted by the rescue-DAG pass.
    pub rescue_resubmits: u64,
    /// Files reported lost by storage failover.
    pub files_lost: u64,
    /// Slot-seconds of partially-executed work thrown away by kills.
    pub wasted_task_secs: f64,
    /// Billed lease intervals, one per instance incarnation. A fault-free
    /// run has exactly one full-makespan segment per node.
    pub segments: Vec<BilledSegment>,
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The makespan (§V): first submission to last task completion.
    pub makespan_secs: f64,
    /// Tasks executed.
    pub tasks: usize,
    /// Simulation events fired (diagnostic).
    pub events: u64,
    /// Storage operation counters.
    pub op_stats: StorageOpStats,
    /// Billing-relevant usage (S3 requests).
    pub billing: StorageBilling,
    /// Sum of wall time tasks spent in I/O phases.
    pub total_io_secs: f64,
    /// Sum of wall time tasks spent computing.
    pub total_cpu_secs: f64,
    /// Task re-executions after injected failures.
    pub retries: u64,
    /// Fault injections and recovery work (all zero without a plan).
    pub faults: FaultSummary,
    /// Per-task execution records, indexed by task id.
    pub records: Vec<TaskRecord>,
    /// Per-resource usage rows (disks, NICs, servers), for utilization
    /// reports.
    pub resources: Vec<ResourceRow>,
    /// Streaming run digest over the observability event stream
    /// (`None` when `RunConfig::obs` is `Off`). Equal configs and seeds
    /// produce equal digests — the replay-verification contract.
    pub digest: Option<u64>,
    /// The full observability report (events, metrics, resource labels)
    /// when `RunConfig::obs` is `Full`.
    pub obs: Option<wfobs::ObsReport>,
}

/// Usage of one simulated resource over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRow {
    /// Resource name (e.g. `w0.disk.fw`, `srv.nic.out`, `nfs.ops`).
    pub name: String,
    /// Total bytes (or operation units) that crossed it.
    pub bytes: f64,
    /// Seconds during which at least one flow used it.
    pub busy_secs: f64,
    /// Mean utilization over the makespan, 0..=1.
    pub mean_utilization: f64,
}

impl RunStats {
    /// Fraction of occupied-slot time spent on I/O (and WMS overhead)
    /// rather than compute — the paper calls Montage >95% I/O by this
    /// style of measure.
    pub fn io_fraction(&self) -> f64 {
        let total = self.total_io_secs + self.total_cpu_secs;
        if total <= 0.0 {
            0.0
        } else {
            self.total_io_secs / total
        }
    }
}

/// Errors a run can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A task needs more memory than any worker has — it can never be
    /// scheduled.
    TaskTooLarge {
        /// Name of the offending task.
        task: String,
    },
    /// The simulation drained with unfinished tasks (a scheduling
    /// deadlock; indicates a bug or an infeasible configuration).
    Deadlock {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// A task kept failing past its retry budget (failure injection).
    RetriesExhausted {
        /// Name of the failing task.
        task: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::TaskTooLarge { task } => {
                write!(f, "task {task} needs more memory than any worker provides")
            }
            RunError::Deadlock { completed, total } => {
                write!(f, "run stalled at {completed}/{total} tasks")
            }
            RunError::RetriesExhausted { task } => {
                write!(f, "task {task} exhausted its retry budget")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Execute `workflow` under `cfg` and return the statistics.
///
/// Deterministic: the same workflow, config and seed produce identical
/// results.
pub fn run_workflow(workflow: Workflow, cfg: RunConfig) -> Result<RunStats, RunError> {
    let obs = wfobs::ObsHandle::new(cfg.obs, cfg.seed);
    run_workflow_with_obs(workflow, cfg, obs)
}

/// Like [`run_workflow`], but over a caller-built observability handle —
/// the entry point for live consumption: attach
/// [`ObsSink`](wfobs::ObsSink)s (TUI viewer, frame capturers) and tune
/// the tick throttle before the run starts. Sinks are flushed exactly
/// once, after the simulation drains and before statistics are
/// extracted. Attaching sinks never changes the digest or the stats.
pub fn run_workflow_with_obs(
    workflow: Workflow,
    cfg: RunConfig,
    obs: wfobs::ObsHandle,
) -> Result<RunStats, RunError> {
    let mut sim: Sim<World> = Sim::new();
    sim.set_obs(obs);
    let spec = {
        let mut s = cluster_spec_for(cfg.storage, cfg.workers, cfg.server_type);
        s.initialize_disks = cfg.initialize_disks;
        s
    };
    let cluster = Cluster::provision(&mut sim, &spec);

    // Feasibility: every task must fit in some worker's usable memory.
    let usable = (cluster.node(cluster.workers()[0]).memory_bytes() as f64 * 0.9) as u64;
    if let Some(t) = workflow.tasks().iter().find(|t| t.peak_mem > usable) {
        return Err(RunError::TaskTooLarge {
            task: t.name.clone(),
        });
    }

    let storage = build_storage(cfg.storage, &mut sim, &cluster, &cfg.storage_cfgs);
    let mut world = World::new(workflow, cluster, storage, cfg);
    world.obs = sim.obs().clone();

    sim.schedule_at(SimTime::ZERO, start_run);
    sim.run(&mut world);
    // Final metric tick + sink flush — before the error checks, so a
    // live viewer restores the terminal even when the run fails.
    sim.obs().flush_sinks();

    let total = world.wf.task_count();
    if let Some(t) = world.aborted {
        return Err(RunError::RetriesExhausted {
            task: world.wf.task(t).name.clone(),
        });
    }
    if world.done != total {
        return Err(RunError::Deadlock {
            completed: world.done,
            total,
        });
    }
    // A zero-task workflow never sets `finished_at` (nothing completes);
    // it finishes the moment it starts.
    let finished = makespan(&world).unwrap_or(SimTime::ZERO);
    let makespan_secs = finished.as_secs_f64();

    let mut total_io_secs = 0.0;
    let mut total_cpu_secs = 0.0;
    let records: Vec<TaskRecord> = world
        .records
        .iter()
        .map(|r| r.expect("every task has a record"))
        .collect();
    for r in &records {
        total_io_secs += r.io_secs();
        total_cpu_secs += r.cpu_secs();
    }

    let resources = (0..sim.resource_count())
        .map(|i| {
            let id = simcore::ResourceId::from_index(i);
            let s = sim.resource_stats(id);
            ResourceRow {
                name: sim.resource_name(id).to_string(),
                bytes: s.bytes,
                busy_secs: s.busy_secs,
                mean_utilization: if makespan_secs > 0.0 {
                    (s.util_integral / makespan_secs).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect();

    // Billing segments: close every still-open lease at the moment the
    // workflow finished (events after the last completion — late fault
    // draws, drained timers — must not inflate the bill).
    let mut segments = Vec::new();
    for (i, node) in world.cluster.nodes().iter().enumerate() {
        for seg in &world.node_segments[i] {
            let close = seg.close.unwrap_or(finished);
            segments.push(BilledSegment {
                node: i as u32,
                itype: node.itype,
                secs: close.since(seg.open).as_secs_f64(),
                spot: seg.spot,
            });
        }
    }
    let c = world.fault_counters;
    let faults = FaultSummary {
        node_crashes: c.node_crashes,
        spot_terminations: c.spot_terminations,
        storage_failures: c.storage_failures,
        tasks_killed: c.tasks_killed,
        rescue_resubmits: c.rescue_resubmits,
        files_lost: c.files_lost,
        wasted_task_secs: c.wasted_task_secs,
        segments,
    };

    let obs_handle = sim.obs().clone();
    let digest = obs_handle.digest();
    let obs = match obs_handle.level() {
        wfobs::ObsLevel::Full => obs_handle.take_report(),
        _ => None,
    };

    Ok(RunStats {
        makespan_secs,
        tasks: total,
        events: sim.events_fired(),
        op_stats: world.storage.op_stats(),
        billing: world.storage.billing(),
        total_io_secs,
        total_cpu_secs,
        retries: world.retries,
        faults,
        records,
        resources,
        digest,
        obs,
    })
}
