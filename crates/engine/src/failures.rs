//! Fault injection and recovery: node crashes, storage failover, spot
//! termination, DAGMan-style backoff retries and the rescue-DAG pass.
//!
//! Every stochastic choice draws from a dedicated named RNG stream
//! (`engine.faults.*`), and zero-rate fault classes draw *nothing*, so a
//! present-but-all-zero [`FaultPlan`](crate::config::FaultPlan) is
//! bit-identical to running with no plan at all — the metamorphic
//! property `tests/prop_fault_metamorphic.rs` enforces.
//!
//! Kill mechanics: each task execution carries an epoch
//! ([`World::epoch`]); killing an execution bumps it, cancels the
//! execution's registered flows, and schedules a backoff re-queue. Stale
//! continuations of the dead execution compare epochs and no-op.

use crate::driver::{mark_ready, try_dispatch};
use crate::world::{NodeSched, World};
use simcore::{DetRng, Sim, SimDuration, SimTime};
use vcluster::{Cluster, NodeId};
use wfdag::TaskId;
use wfobs::{Event, FaultKind};
use wfstorage::FailoverResponse;

/// Sample an exponential inter-arrival time for a Poisson process with
/// the given hourly rate.
fn exp_secs(rng: &mut DetRng, rate_per_hour: f64) -> f64 {
    let u = rng.uniform(0.0, 1.0);
    -(1.0 - u).ln() / rate_per_hour * 3600.0
}

/// Arm the fault plan at the start of a run: schedule explicit fault
/// instants and sample the first stochastic arrival of each class.
pub(crate) fn install_faults(sim: &mut Sim<World>, world: &mut World) {
    let Some(plan) = world.faults.clone() else {
        return;
    };
    if let Some(nc) = &plan.node_crash {
        for &(ix, at) in &nc.scheduled {
            let ix = ix as usize;
            if ix >= world.node_up.len() {
                continue;
            }
            let incarnation = world.node_incarnation[ix];
            sim.schedule_at(SimTime::from_secs_f64(at), move |sim, world| {
                node_crash(sim, world, ix, incarnation);
            });
        }
        if nc.rate_per_hour > 0.0 {
            for ix in 0..world.node_up.len() {
                schedule_next_crash(sim, world, ix);
            }
        }
    }
    if let Some(sp) = &plan.spot {
        if sp.rate_per_hour > 0.0 {
            for ix in 0..world.node_up.len() {
                schedule_spot_termination(sim, world, ix, sp.rate_per_hour);
            }
        }
    }
    if let Some(sf) = &plan.storage_failure {
        for &at in &sf.scheduled {
            let victim = pick_storage_victim(world);
            sim.schedule_at(SimTime::from_secs_f64(at), move |sim, world| {
                storage_failure(sim, world, victim, false);
            });
        }
        if sf.rate_per_hour > 0.0 {
            schedule_next_storage_failure(sim, world);
        }
    }
}

/// The node hosting the storage service: the dedicated server when one
/// exists (NFS), otherwise a worker peer sampled from the storage fault
/// stream (GlusterFS brick, PVFS I/O server).
fn pick_storage_victim(world: &mut World) -> NodeId {
    match world.cluster.server() {
        Some(s) => s,
        None => {
            let ix = world.fault_rng_storage.index(world.cluster.workers().len());
            world.cluster.workers()[ix]
        }
    }
}

fn schedule_next_crash(sim: &mut Sim<World>, world: &mut World, ix: usize) {
    let rate = world
        .faults
        .as_ref()
        .and_then(|p| p.node_crash.as_ref())
        .map_or(0.0, |n| n.rate_per_hour);
    if rate <= 0.0 {
        return;
    }
    let dt = exp_secs(&mut world.fault_rng_node[ix], rate);
    let incarnation = world.node_incarnation[ix];
    sim.schedule_in(SimDuration::from_secs_f64(dt), move |sim, world| {
        node_crash(sim, world, ix, incarnation);
    });
}

fn node_crash(sim: &mut Sim<World>, world: &mut World, ix: usize, incarnation: u32) {
    if world.run_over() {
        return; // post-run faults change nothing, and the sim drains
    }
    if world.node_incarnation[ix] != incarnation || !world.node_up[ix] {
        return; // stale event for an earlier incarnation
    }
    world.fault_counters.node_crashes += 1;
    world.obs.emit(Event::Fault {
        kind: FaultKind::NodeCrash,
        node: world.cluster.workers()[ix].0,
    });
    take_down_worker(sim, world, ix);
    let reprovision = world
        .faults
        .as_ref()
        .and_then(|p| p.node_crash.as_ref())
        .is_none_or(|n| n.reprovision);
    if reprovision {
        schedule_recovery(sim, world, ix);
    }
}

fn schedule_spot_termination(sim: &mut Sim<World>, world: &mut World, ix: usize, rate: f64) {
    if !world.node_spot[ix] {
        return;
    }
    let dt = exp_secs(&mut world.fault_rng_spot[ix], rate);
    let incarnation = world.node_incarnation[ix];
    sim.schedule_in(SimDuration::from_secs_f64(dt), move |sim, world| {
        if world.run_over() {
            return;
        }
        if world.node_incarnation[ix] != incarnation || !world.node_up[ix] || !world.node_spot[ix] {
            return;
        }
        world.fault_counters.spot_terminations += 1;
        world.obs.emit(Event::Fault {
            kind: FaultKind::SpotTermination,
            node: world.cluster.workers()[ix].0,
        });
        take_down_worker(sim, world, ix);
        let replace = world
            .faults
            .as_ref()
            .and_then(|p| p.spot.as_ref())
            .is_none_or(|s| s.replace);
        if replace {
            // The replacement is on-demand: recovery clears the spot flag,
            // so this node is never terminated by the market again.
            schedule_recovery(sim, world, ix);
        }
    });
}

/// Common crash/termination path: the instance dies, its in-flight
/// executions are killed (their slots die with the node), its billing
/// segment closes, and the storage layer hears about the lost peer.
fn take_down_worker(sim: &mut Sim<World>, world: &mut World, ix: usize) {
    let now = sim.now();
    world.node_up[ix] = false;
    world.node_incarnation[ix] += 1;
    let node_id = world.cluster.workers()[ix];
    for t in world.running[ix].clone() {
        // The slot vanishes with the node: no release.
        kill_task(sim, world, t, ix, false);
    }
    world.running[ix].clear();
    world.node_sched[ix].free_slots = 0;
    world.node_sched[ix].free_mem = 0;
    world.close_segment(node_id.index(), now);
    let resp = world.storage.on_node_failed(&world.cluster, node_id);
    apply_failover(sim, world, resp);
}

/// Re-provision a replacement instance after the §V boot delay.
fn schedule_recovery(sim: &mut Sim<World>, world: &mut World, ix: usize) {
    let delay = Cluster::boot_delay(&mut world.fault_rng_node[ix]);
    let incarnation = world.node_incarnation[ix];
    sim.schedule_in(delay, move |sim, world| {
        if world.run_over() {
            return;
        }
        if world.node_incarnation[ix] != incarnation || world.node_up[ix] {
            return;
        }
        let node_id = world.cluster.workers()[ix];
        let node = world.cluster.node(node_id);
        let sched = NodeSched {
            free_slots: node.slots(),
            free_mem: (node.memory_bytes() as f64 * 0.9) as u64,
        };
        world.node_up[ix] = true;
        world.node_spot[ix] = false;
        world.node_sched[ix] = sched;
        world.obs.emit(Event::NodeRecovered { node: node_id.0 });
        world.open_segment(node_id.index(), sim.now(), false);
        schedule_next_crash(sim, world, ix);
        try_dispatch(sim, world);
    });
}

fn schedule_next_storage_failure(sim: &mut Sim<World>, world: &mut World) {
    let rate = world
        .faults
        .as_ref()
        .and_then(|p| p.storage_failure.as_ref())
        .map_or(0.0, |s| s.rate_per_hour);
    if rate <= 0.0 {
        return;
    }
    let dt = exp_secs(&mut world.fault_rng_storage, rate);
    sim.schedule_in(SimDuration::from_secs_f64(dt), move |sim, world| {
        if world.run_over() {
            return;
        }
        let victim = pick_storage_victim(world);
        storage_failure(sim, world, victim, true);
    });
}

/// A storage *service* failure: the daemon on `victim` dies. The node's
/// compute capacity is unaffected (full node death is the node-crash
/// class, which also reports the failed peer to the storage layer);
/// per-backend consequences come from `StorageSystem::on_node_failed`.
fn storage_failure(sim: &mut Sim<World>, world: &mut World, victim: NodeId, resample: bool) {
    if world.run_over() {
        return;
    }
    let stalled = world.stall_until.is_some_and(|t| sim.now() < t);
    if !stalled {
        world.fault_counters.storage_failures += 1;
        world.obs.emit(Event::Fault {
            kind: FaultKind::StorageFailure,
            node: victim.0,
        });
        let resp = world.storage.on_node_failed(&world.cluster, victim);
        apply_failover(sim, world, resp);
    }
    if resample {
        schedule_next_storage_failure(sim, world);
    }
}

/// Apply a storage layer's failover verdict to the run.
fn apply_failover(sim: &mut Sim<World>, world: &mut World, resp: FailoverResponse) {
    match resp {
        FailoverResponse::Unaffected => {}
        FailoverResponse::StallAll => {
            // NFS semantics: every client call hangs until the server
            // recovers. In-flight executions die (their I/O times out);
            // nothing dispatches until the stall lifts.
            let recovery = world
                .faults
                .as_ref()
                .and_then(|p| p.storage_failure.as_ref())
                .map_or(60.0, |s| s.recovery_secs);
            let mut until = sim.now() + SimDuration::from_secs_f64(recovery);
            if let Some(t) = world.stall_until {
                if t > until {
                    until = t;
                }
            }
            world.stall_until = Some(until);
            for ix in 0..world.running.len() {
                if !world.node_up[ix] {
                    continue;
                }
                for t in world.running[ix].clone() {
                    kill_task(sim, world, t, ix, true);
                }
            }
            sim.schedule_at(until, |sim, world| {
                if world.run_over() {
                    return;
                }
                if world.stall_until.is_some_and(|t| sim.now() >= t) {
                    world.stall_until = None;
                    try_dispatch(sim, world);
                }
            });
        }
        FailoverResponse::LostFiles(files) => {
            world.any_files_lost = true;
            world.fault_counters.files_lost += files.len() as u64;
            world.obs.emit(Event::FilesLost {
                count: files.len() as u32,
            });
            for f in files {
                // Lost outputs become writable again for rescue re-runs.
                world.written.remove(&f);
                world.staged_out.remove(&f);
            }
        }
    }
}

/// Kill one in-flight execution: bump its epoch (stale continuations
/// no-op), cancel its registered flows, charge the wasted work, and
/// re-queue it after backoff — or abort the run if the fault-retry
/// budget is exhausted.
pub(crate) fn kill_task(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    release_slot: bool,
) {
    let now = sim.now();
    let start_at = {
        let rec = world.records[task.index()].as_mut().expect("record");
        rec.attempts += 1;
        rec.start_at
    };
    world.fault_counters.tasks_killed += 1;
    world.fault_counters.wasted_task_secs += now.since(start_at).as_secs_f64();
    world.obs.emit(Event::TaskKilled {
        task: task.0,
        node: world.cluster.workers()[worker_ix].0,
        wasted_nanos: now.since(start_at).as_nanos(),
    });
    world.epoch[task.index()] += 1;
    if let Some(ids) = world.inflight.remove(&task) {
        for id in ids {
            sim.cancel_flow(id);
        }
    }
    world.running[worker_ix].retain(|&t| t != task);
    if release_slot {
        world.release(worker_ix, task);
    }
    let budget = world.faults.as_ref().map_or(0, |p| p.max_fault_retries);
    finish_failure(sim, world, task, budget);
}

/// A transient execution failure at compute end (the original
/// [`FailureModel`](crate::config::FailureModel) path): the slot is
/// released cleanly, no flows are in flight.
pub(crate) fn fail_execution(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    budget: u32,
) {
    world.running[worker_ix].retain(|&t| t != task);
    world.release(worker_ix, task);
    world.epoch[task.index()] += 1;
    world.obs.emit(Event::TaskFailed {
        task: task.0,
        node: world.cluster.workers()[worker_ix].0,
    });
    finish_failure(sim, world, task, budget);
}

/// Shared failure tail: abort on budget exhaustion, else count the retry
/// and re-queue after exponential backoff.
fn finish_failure(sim: &mut Sim<World>, world: &mut World, task: TaskId, budget: u32) {
    if world.aborted.is_some() {
        return;
    }
    let attempts = world.records[task.index()].expect("record").attempts;
    if attempts > budget {
        world.aborted = Some(task);
        // Drain the queue so the run winds down.
        world.ready.clear();
        return;
    }
    world.retries += 1;
    let delay = world
        .faults
        .as_ref()
        .map_or(SimDuration::ZERO, |p| p.backoff.delay(attempts));
    let expected = world.epoch[task.index()];
    sim.schedule_in(delay, move |sim, world| {
        if world.aborted.is_some() || world.epoch[task.index()] != expected {
            return;
        }
        mark_ready(sim, world, task);
        try_dispatch(sim, world);
    });
}

/// Rescue-DAG check at ready time: if any input of `task` is gone, defer
/// `task`, resubmit the (finished) producers of the missing files and
/// re-prestage missing workflow inputs. Returns `true` if the task was
/// deferred. Cascades: a resubmitted producer runs through the same
/// check, so losses propagate up the DAG until reaching surviving data.
pub(crate) fn rescue_defer(sim: &mut Sim<World>, world: &mut World, task: TaskId) -> bool {
    let inputs = world.task_inputs(task);
    let mut missing = world.storage.missing_files(&inputs);
    if missing.is_empty() {
        return false;
    }
    missing.sort_unstable();
    missing.dedup();
    let mut producers: Vec<TaskId> = Vec::new();
    for f in missing {
        match world.producer_of.get(&f).copied() {
            Some(p) => {
                if !producers.contains(&p) {
                    producers.push(p);
                }
            }
            None => {
                // A workflow input: re-stage it from the submit host.
                let size = world.wf.file(f).size;
                world.storage.prestage(&world.cluster, &[(f, size)]);
            }
        }
    }
    if producers.is_empty() {
        return false; // everything missing was re-stageable
    }
    for p in producers {
        let waiters = world.rescue_waiters.entry(p).or_default();
        if !waiters.contains(&task) {
            waiters.push(task);
            world.pending_parents[task.index()] += 1;
        }
        if world.completed[p.index()] {
            world.completed[p.index()] = false;
            world.done -= 1;
            world.rescued.insert(p);
            world.fault_counters.rescue_resubmits += 1;
            world.obs.emit(Event::RescueResubmit { task: p.0 });
            mark_ready(sim, world, p);
        }
        // else: p is already being rescued (or re-running) — just wait.
    }
    true
}

#[cfg(test)]
mod tests {
    use crate::config::{
        FailureModel, FaultPlan, NodeCrashSpec, RetryBackoff, SpotSpec, StorageFailureSpec,
    };
    use crate::{run_workflow, RunConfig, RunError};
    use simcore::SimDuration;
    use wfdag::{Workflow, WorkflowBuilder};
    use wfstorage::StorageKind;

    fn chain(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let out = b.file(format!("f{i}"), 5_000_000);
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            b.task(format!("t{i}"), "step", 2.0, 128 << 20, inputs, vec![out]);
            prev = Some(out);
        }
        b.build().unwrap()
    }

    fn wide(n: usize, cpu_secs: f64) -> Workflow {
        let mut b = WorkflowBuilder::new("wide");
        for i in 0..n {
            let f = b.file(format!("o{i}"), 2_000_000);
            b.task(format!("t{i}"), "w", cpu_secs, 128 << 20, vec![], vec![f]);
        }
        b.build().unwrap()
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.3,
            max_retries: 50,
        });
        let stats = run_workflow(chain(20), cfg).unwrap();
        assert_eq!(stats.tasks, 20, "all tasks complete despite failures");
        assert!(
            stats.retries > 0,
            "with p=0.3 over 20 tasks some retries occur"
        );
        // Retried tasks report attempts > 1.
        assert!(stats.records.iter().any(|r| r.attempts > 1));
    }

    #[test]
    fn retries_lengthen_the_makespan() {
        let clean = run_workflow(chain(20), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.3,
            max_retries: 50,
        });
        let faulty = run_workflow(chain(20), cfg).unwrap();
        assert!(
            faulty.makespan_secs > clean.makespan_secs,
            "failures must cost time: {} vs {}",
            faulty.makespan_secs,
            clean.makespan_secs
        );
    }

    #[test]
    fn exhausted_retries_abort_the_run() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 1.0, // every execution fails
            max_retries: 3,
        });
        let err = run_workflow(chain(3), cfg).unwrap_err();
        assert!(matches!(err, RunError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn zero_probability_changes_nothing() {
        let clean = run_workflow(chain(10), RunConfig::cell(StorageKind::Nfs, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::Nfs, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.0,
            max_retries: 3,
        });
        let with_model = run_workflow(chain(10), cfg).unwrap();
        assert_eq!(
            clean.makespan_secs.to_bits(),
            with_model.makespan_secs.to_bits()
        );
        assert_eq!(with_model.retries, 0);
        assert!(with_model.records.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let run = || {
            let mut cfg = RunConfig::cell(StorageKind::S3, 2).with_seed(7);
            cfg.failures = Some(FailureModel {
                prob: 0.25,
                max_retries: 20,
            });
            run_workflow(chain(15), cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn write_once_survives_retries() {
        // Failures happen before writes, so storage write-once asserts
        // must hold even with heavy retrying on S3 (PUT discipline).
        let mut cfg = RunConfig::cell(StorageKind::S3, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.4,
            max_retries: 100,
        });
        let stats = run_workflow(chain(20), cfg).unwrap();
        assert_eq!(stats.billing.s3_puts, 20, "exactly one PUT per output");
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let b = RetryBackoff {
            base: SimDuration::from_secs(5),
            factor: 2.0,
            max: SimDuration::from_secs(300),
        };
        assert_eq!(b.delay(1), SimDuration::from_secs(5));
        assert_eq!(b.delay(2), SimDuration::from_secs(10));
        assert_eq!(b.delay(4), SimDuration::from_secs(40));
        assert_eq!(b.delay(10), SimDuration::from_secs(300), "capped");
        assert_eq!(b.delay(0), SimDuration::from_secs(5), "clamps at base");
    }

    #[test]
    fn backoff_pushes_retries_apart() {
        // With a huge backoff, a single transient failure costs at least
        // the backoff delay end-to-end.
        let clean = run_workflow(chain(5), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.faults = Some(FaultPlan {
            task_failures: Some(FailureModel {
                prob: 0.5,
                max_retries: 50,
            }),
            backoff: RetryBackoff {
                base: SimDuration::from_secs(200),
                factor: 1.0,
                max: SimDuration::from_secs(200),
            },
            max_fault_retries: 50,
            ..FaultPlan::default()
        });
        let faulty = run_workflow(chain(5), cfg).unwrap();
        if faulty.retries > 0 {
            assert!(
                faulty.makespan_secs >= clean.makespan_secs + 200.0,
                "{} retries but makespan {} vs clean {}",
                faulty.retries,
                faulty.makespan_secs,
                clean.makespan_secs
            );
        }
    }

    fn crash_plan(scheduled: Vec<(u32, f64)>, budget: u32) -> FaultPlan {
        FaultPlan {
            node_crash: Some(NodeCrashSpec {
                rate_per_hour: 0.0,
                scheduled,
                reprovision: true,
            }),
            max_fault_retries: budget,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn node_crash_kills_and_recovers() {
        let clean =
            run_workflow(wide(16, 60.0), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.faults = Some(crash_plan(vec![(0, 2.0)], 10));
        let stats = run_workflow(wide(16, 60.0), cfg).unwrap();
        assert_eq!(stats.tasks, 16, "all tasks complete despite the crash");
        assert_eq!(stats.faults.node_crashes, 1);
        assert!(stats.faults.tasks_killed > 0, "tasks were in flight at 2 s");
        assert!(stats.faults.wasted_task_secs > 0.0);
        assert!(
            stats.makespan_secs > clean.makespan_secs,
            "crash + 70-90 s reboot must cost time: {} vs {}",
            stats.makespan_secs,
            clean.makespan_secs
        );
        // The crashed node came back: it has two billing segments.
        let segs = stats.faults.segments.len();
        assert!(segs >= 3, "2 workers, one crashed once: {segs} segments");
    }

    #[test]
    fn crash_without_reprovision_loses_capacity() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        let mut plan = crash_plan(vec![(1, 2.0)], 10);
        plan.node_crash.as_mut().unwrap().reprovision = false;
        cfg.faults = Some(plan);
        let stats = run_workflow(wide(16, 4.0), cfg).unwrap();
        assert_eq!(stats.tasks, 16);
        // Every record of the surviving executions sits on node 0.
        assert!(stats.records.iter().all(|r| r.node.0 == 0));
    }

    #[test]
    fn fault_retry_budget_exhaustion_aborts() {
        // Both workers crash mid-run with a zero fault-retry budget: the
        // first killed execution exhausts it and the run aborts.
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.faults = Some(crash_plan(vec![(0, 2.0), (1, 2.0)], 0));
        let err = run_workflow(wide(16, 4.0), cfg).unwrap_err();
        assert!(matches!(err, RunError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn crash_after_finish_changes_nothing() {
        let clean =
            run_workflow(wide(8, 4.0), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.faults = Some(crash_plan(vec![(0, clean.makespan_secs + 50.0)], 10));
        let stats = run_workflow(wide(8, 4.0), cfg).unwrap();
        assert_eq!(stats.makespan_secs.to_bits(), clean.makespan_secs.to_bits());
        assert_eq!(stats.faults.node_crashes, 0, "post-run crash is a no-op");
        assert_eq!(stats.faults.segments, clean.faults.segments);
    }

    #[test]
    fn crash_runs_are_deterministic() {
        let run = || {
            let mut cfg = RunConfig::cell(StorageKind::GlusterDistribute, 4).with_seed(11);
            cfg.faults = Some(FaultPlan {
                node_crash: Some(NodeCrashSpec {
                    rate_per_hour: 20.0, // violent churn
                    scheduled: vec![],
                    reprovision: true,
                }),
                max_fault_retries: 40,
                ..FaultPlan::default()
            });
            run_workflow(chain(12), cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults.node_crashes, b.faults.node_crashes);
        assert_eq!(a.faults.tasks_killed, b.faults.tasks_killed);
        assert_eq!(a.faults.segments, b.faults.segments);
    }

    #[test]
    fn nfs_server_failure_stalls_the_run() {
        let clean = run_workflow(chain(8), RunConfig::cell(StorageKind::Nfs, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::Nfs, 2);
        cfg.faults = Some(FaultPlan {
            storage_failure: Some(StorageFailureSpec {
                rate_per_hour: 0.0,
                scheduled: vec![clean.makespan_secs * 0.4],
                recovery_secs: 300.0,
            }),
            max_fault_retries: 10,
            ..FaultPlan::default()
        });
        let stats = run_workflow(chain(8), cfg).unwrap();
        assert_eq!(stats.faults.storage_failures, 1);
        assert!(
            stats.makespan_secs >= clean.makespan_secs + 250.0,
            "a 300 s NFS outage must stall the whole run: {} vs {}",
            stats.makespan_secs,
            clean.makespan_secs
        );
    }

    #[test]
    fn gluster_brick_loss_triggers_rescue() {
        // Lose a brick mid-run on distribute: files on it vanish and the
        // rescue pass resubmits their producers.
        let clean = run_workflow(
            chain(12),
            RunConfig::cell(StorageKind::GlusterDistribute, 2),
        )
        .unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterDistribute, 2);
        cfg.faults = Some(FaultPlan {
            storage_failure: Some(StorageFailureSpec {
                rate_per_hour: 0.0,
                scheduled: vec![clean.makespan_secs * 0.5],
                recovery_secs: 0.0,
            }),
            max_fault_retries: 30,
            ..FaultPlan::default()
        });
        let stats = run_workflow(chain(12), cfg).unwrap();
        assert_eq!(stats.tasks, 12);
        assert!(stats.faults.files_lost > 0, "the brick held chain files");
        assert!(
            stats.faults.rescue_resubmits > 0,
            "losing a mid-chain file forces producer resubmission"
        );
        assert!(stats.makespan_secs > clean.makespan_secs);
    }

    #[test]
    fn rescue_reuses_surviving_outputs() {
        // A fan-in: two producers on different bricks, one brick dies.
        // Only the lost producer re-runs; the surviving output is reused
        // (attempts stays 1 for at least one producer).
        let mut b = WorkflowBuilder::new("fanin");
        let fa = b.file("a", 4_000_000);
        let fb = b.file("bb", 4_000_000);
        let fc = b.file("c", 1_000_000);
        b.task("pa", "p", 2.0, 64 << 20, vec![], vec![fa]);
        b.task("pb", "p", 2.0, 64 << 20, vec![], vec![fb]);
        b.task("join", "j", 30.0, 64 << 20, vec![fa, fb], vec![fc]);
        let wf = b.build().unwrap();

        let mut cfg = RunConfig::cell(StorageKind::GlusterDistribute, 2);
        cfg.faults = Some(FaultPlan {
            node_crash: Some(NodeCrashSpec {
                rate_per_hour: 0.0,
                // Crash a worker while `join` computes: its inputs' bricks
                // may die; join is killed and rescued on retry.
                scheduled: vec![(0, 10.0)],
                reprovision: true,
            }),
            max_fault_retries: 20,
            ..FaultPlan::default()
        });
        let stats = run_workflow(wf, cfg).unwrap();
        assert_eq!(stats.tasks, 3);
        // Rescue only re-ran what was needed; the run completed without
        // write-once violations (reused outputs are never rewritten).
        if stats.faults.files_lost > 0 && stats.faults.rescue_resubmits > 0 {
            assert!(stats.faults.rescue_resubmits <= 2);
        }
    }

    #[test]
    fn spot_terminations_bill_spot_segments() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.faults = Some(FaultPlan {
            spot: Some(SpotSpec {
                rate_per_hour: 300.0, // mean time to revocation ~12 s
                replace: true,
            }),
            max_fault_retries: 60,
            ..FaultPlan::default()
        });
        let stats = run_workflow(wide(24, 60.0), cfg).unwrap();
        assert_eq!(stats.tasks, 24);
        assert!(stats.faults.spot_terminations > 0, "rate ~1/min must fire");
        assert!(
            stats.faults.segments.iter().any(|s| s.spot),
            "initial worker segments are spot"
        );
        assert!(
            stats.faults.segments.iter().any(|s| !s.spot),
            "replacements are on-demand"
        );
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan() {
        for kind in [
            StorageKind::Nfs,
            StorageKind::GlusterDistribute,
            StorageKind::S3,
        ] {
            let clean = run_workflow(chain(8), RunConfig::cell(kind, 2)).unwrap();
            let mut cfg = RunConfig::cell(kind, 2);
            cfg.faults = Some(FaultPlan::zero());
            let zero = run_workflow(chain(8), cfg).unwrap();
            assert_eq!(
                clean.makespan_secs.to_bits(),
                zero.makespan_secs.to_bits(),
                "{kind:?}"
            );
            assert_eq!(clean.events, zero.events, "{kind:?}");
            assert_eq!(clean.faults.segments, zero.faults.segments, "{kind:?}");
            assert_eq!(zero.faults.tasks_killed, 0);
        }
    }
}
