//! Tests for transient-failure injection and DAGMan-style retries.
//!
//! (Test-only module: the mechanism lives in [`crate::driver`], configured
//! by [`crate::config::FailureModel`].)

#[cfg(test)]
mod tests {
    use crate::{run_workflow, FailureModel, RunConfig, RunError};
    use wfdag::{Workflow, WorkflowBuilder};
    use wfstorage::StorageKind;

    fn chain(n: usize) -> Workflow {
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = None;
        for i in 0..n {
            let out = b.file(format!("f{i}"), 5_000_000);
            let inputs = prev.map(|p| vec![p]).unwrap_or_default();
            b.task(format!("t{i}"), "step", 2.0, 128 << 20, inputs, vec![out]);
            prev = Some(out);
        }
        b.build().unwrap()
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.3,
            max_retries: 50,
        });
        let stats = run_workflow(chain(20), cfg).unwrap();
        assert_eq!(stats.tasks, 20, "all tasks complete despite failures");
        assert!(
            stats.retries > 0,
            "with p=0.3 over 20 tasks some retries occur"
        );
        // Retried tasks report attempts > 1.
        assert!(stats.records.iter().any(|r| r.attempts > 1));
    }

    #[test]
    fn retries_lengthen_the_makespan() {
        let clean = run_workflow(chain(20), RunConfig::cell(StorageKind::GlusterNufa, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.3,
            max_retries: 50,
        });
        let faulty = run_workflow(chain(20), cfg).unwrap();
        assert!(
            faulty.makespan_secs > clean.makespan_secs,
            "failures must cost time: {} vs {}",
            faulty.makespan_secs,
            clean.makespan_secs
        );
    }

    #[test]
    fn exhausted_retries_abort_the_run() {
        let mut cfg = RunConfig::cell(StorageKind::GlusterNufa, 2);
        cfg.failures = Some(FailureModel {
            prob: 1.0, // every execution fails
            max_retries: 3,
        });
        let err = run_workflow(chain(3), cfg).unwrap_err();
        assert!(matches!(err, RunError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn zero_probability_changes_nothing() {
        let clean = run_workflow(chain(10), RunConfig::cell(StorageKind::Nfs, 2)).unwrap();
        let mut cfg = RunConfig::cell(StorageKind::Nfs, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.0,
            max_retries: 3,
        });
        let with_model = run_workflow(chain(10), cfg).unwrap();
        assert_eq!(
            clean.makespan_secs.to_bits(),
            with_model.makespan_secs.to_bits()
        );
        assert_eq!(with_model.retries, 0);
        assert!(with_model.records.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let run = || {
            let mut cfg = RunConfig::cell(StorageKind::S3, 2).with_seed(7);
            cfg.failures = Some(FailureModel {
                prob: 0.25,
                max_retries: 20,
            });
            run_workflow(chain(15), cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(a.retries, b.retries);
    }

    #[test]
    fn write_once_survives_retries() {
        // Failures happen before writes, so storage write-once asserts
        // must hold even with heavy retrying on S3 (PUT discipline).
        let mut cfg = RunConfig::cell(StorageKind::S3, 2);
        cfg.failures = Some(FailureModel {
            prob: 0.4,
            max_retries: 100,
        });
        let stats = run_workflow(chain(20), cfg).unwrap();
        assert_eq!(stats.billing.s3_puts, 20, "exactly one PUT per output");
    }
}
