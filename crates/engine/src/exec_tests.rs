//! Tests for the plan executor and the background writeback stream.

#[cfg(test)]
mod tests {
    use crate::exec::exec_plan;
    use crate::world::World;
    use crate::RunConfig;
    use simcore::{Sim, SimDuration, SimTime};
    use vcluster::Cluster;
    use wfdag::WorkflowBuilder;
    use wfstorage::op::{FlowLeg, Note, OpPlan, Stage};
    use wfstorage::{build_storage, cluster_spec_for, StorageConfigs, StorageKind};

    /// A minimal world for executor tests.
    fn world(sim: &mut Sim<World>) -> World {
        let cfg = RunConfig::cell(StorageKind::Nfs, 2);
        let spec = cluster_spec_for(cfg.storage, cfg.workers, None);
        let cluster = Cluster::provision(sim, &spec);
        let storage = build_storage(cfg.storage, sim, &cluster, &StorageConfigs::default());
        let mut b = WorkflowBuilder::new("empty");
        let f = b.file("f", 1);
        b.task("t", "x", 0.0, 0, vec![], vec![f]);
        World::new(b.build().unwrap(), cluster, storage, cfg)
    }

    #[test]
    fn stages_execute_sequentially_with_latencies() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(&mut sim);
        let r = sim.add_resource("test.r", 100.0);
        // Two stages: 1 s latency + 100 bytes (1 s), then 2 s latency.
        let plan = OpPlan::one(Stage::lat_leg(
            SimDuration::from_secs(1),
            FlowLeg::new(100, vec![r]),
        ))
        .then(Stage::latency(SimDuration::from_secs(2)));
        sim.schedule_at(SimTime::ZERO, move |sim, w| {
            exec_plan(
                sim,
                w,
                plan,
                Box::new(|sim, _| {
                    assert!((sim.now().as_secs_f64() - 4.0).abs() < 1e-9);
                }),
            );
        });
        sim.run(&mut w);
        assert!(
            (sim.now().as_secs_f64() - 4.0).abs() < 1e-9,
            "{}",
            sim.now()
        );
    }

    #[test]
    fn parallel_legs_complete_together() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(&mut sim);
        let r = sim.add_resource("test.r", 100.0);
        // Two 100-byte legs share the resource: the stage ends at 2 s.
        let plan = OpPlan::one(Stage {
            latency: SimDuration::ZERO,
            legs: vec![FlowLeg::new(100, vec![r]), FlowLeg::new(100, vec![r])],
        });
        sim.schedule_at(SimTime::ZERO, move |sim, w| {
            exec_plan(sim, w, plan, Box::new(|_, _| {}));
        });
        sim.run(&mut w);
        assert!(
            (sim.now().as_secs_f64() - 2.0).abs() < 1e-9,
            "{}",
            sim.now()
        );
    }

    #[test]
    fn empty_plan_fires_continuation_immediately() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(&mut sim);
        sim.schedule_at(SimTime::from_secs_f64(5.0), move |sim, w| {
            exec_plan(
                sim,
                w,
                OpPlan::empty(),
                Box::new(|sim, _| {
                    assert!((sim.now().as_secs_f64() - 5.0).abs() < 1e-12);
                }),
            );
        });
        sim.run(&mut w);
        assert!((sim.now().as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn background_stages_serialize_on_one_stream() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(&mut sim);
        let r = sim.add_resource("flush.r", 100.0);
        // Two background flushes of 100 bytes each on one writeback
        // stream: they run one after the other (1 s each), so the sim
        // drains at t = 2 s, not t = 1 s.
        let mk = |r| {
            OpPlan::empty().with_background(
                Stage::leg(FlowLeg::new(100, vec![r])),
                Some(Note::NfsFlushed { bytes: 100 }),
            )
        };
        let (p1, p2) = (mk(r), mk(r));
        sim.schedule_at(SimTime::ZERO, move |sim, w| {
            exec_plan(sim, w, p1, Box::new(|_, _| {}));
            exec_plan(sim, w, p2, Box::new(|_, _| {}));
        });
        sim.run(&mut w);
        assert!(
            (sim.now().as_secs_f64() - 2.0).abs() < 1e-9,
            "{}",
            sim.now()
        );
        assert!(!w.bg_active);
        assert!(w.bg_queue.is_empty());
    }

    #[test]
    fn foreground_does_not_wait_for_background() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(&mut sim);
        let r = sim.add_resource("flush.r", 1.0); // very slow flush: 100 s
        let plan = OpPlan::one(Stage::latency(SimDuration::from_secs(1)))
            .with_background(Stage::leg(FlowLeg::new(100, vec![r])), None);
        let done_at = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
        let done_at2 = done_at.clone();
        sim.schedule_at(SimTime::ZERO, move |sim, w| {
            exec_plan(
                sim,
                w,
                plan,
                Box::new(move |sim, _| {
                    done_at2.set(sim.now().as_secs_f64());
                }),
            );
        });
        sim.run(&mut w);
        assert!(
            (done_at.get() - 1.0).abs() < 1e-9,
            "foreground done at {}",
            done_at.get()
        );
        assert!(
            (sim.now().as_secs_f64() - 100.0).abs() < 1e-6,
            "flush drains later"
        );
    }
}
