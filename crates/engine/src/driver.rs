//! The workflow driver: DAGMan-like dependency release and Condor-like
//! dispatch, plus the per-job lifecycle
//! (stage-in → reads → compute → writes → stage-out).

use crate::exec::exec_plan;
use crate::world::{TaskRecord, World};
use simcore::{Sim, SimDuration, SimTime};
use wfdag::TaskId;

/// How many queued jobs the matchmaker examines per cycle (backfill
/// window): a ready job that does not fit anywhere does not starve
/// smaller jobs behind it, but the scan stays bounded.
const BACKFILL_WINDOW: usize = 64;

/// Kick off the run: pre-stage inputs, release root tasks, dispatch.
pub fn start_run(sim: &mut Sim<World>, world: &mut World) {
    let inputs = world.workflow_inputs();
    world.storage.prestage(&world.cluster, &inputs);
    for t in world.wf.roots() {
        mark_ready(sim, world, t);
    }
    try_dispatch(sim, world);
}

fn mark_ready(sim: &mut Sim<World>, world: &mut World, task: TaskId) {
    world.ready.push_back(task);
    let now = sim.now();
    let attempts = world.records[task.index()].map_or(0, |r| r.attempts);
    world.records[task.index()] = Some(TaskRecord {
        node: vcluster::NodeId(u32::MAX),
        ready_at: now,
        start_at: now,
        ops_start: now,
        stage_in_start: now,
        reads_start: now,
        compute_start: now,
        compute_end: now,
        stage_out_start: now,
        end_at: now,
        attempts,
    });
}

/// One matchmaking cycle: dispatch every queued job (within the backfill
/// window) that fits on some node.
pub fn try_dispatch(sim: &mut Sim<World>, world: &mut World) {
    let mut examined = 0;
    let mut kept = std::collections::VecDeque::new();
    while let Some(task) = world.ready.pop_front() {
        if examined >= BACKFILL_WINDOW {
            kept.push_back(task);
            continue;
        }
        examined += 1;
        match world.pick_node(task) {
            Some(i) => dispatch(sim, world, task, i),
            None => kept.push_back(task),
        }
    }
    world.ready = kept;
}

fn dispatch(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.reserve(worker_ix, task);
    let node = world.cluster.workers()[worker_ix];
    {
        let rec = world.records[task.index()].as_mut().expect("record exists");
        rec.node = node;
        rec.start_at = sim.now();
    }
    // DAGMan/Condor per-job overhead is paid while holding the slot.
    let overhead = world.cfg.job_overhead;
    sim.schedule_in(overhead, move |sim, world| {
        job_ops(sim, world, task, worker_ix);
    });
}

/// The task's POSIX operation storm, charged to storage systems with a
/// central per-op bottleneck (NFS).
fn job_ops(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .ops_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    let io_ops = world.wf.task(task).io_ops;
    let plan = world.storage.plan_task_ops(&world.cluster, node, io_ops);
    exec_plan(
        sim,
        world,
        plan,
        Box::new(move |sim, world| job_stage_in(sim, world, task, worker_ix)),
    );
}

fn job_stage_in(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .stage_in_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    let inputs = world.task_inputs(task);
    let plan = world.storage.plan_stage_in(&world.cluster, node, &inputs);
    exec_plan(
        sim,
        world,
        plan,
        Box::new(move |sim, world| job_read(sim, world, task, worker_ix, 0)),
    );
}

fn job_read(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize, idx: usize) {
    if idx == 0 {
        world.records[task.index()]
            .as_mut()
            .expect("record")
            .reads_start = sim.now();
    }
    let inputs = world.task_inputs(task);
    if idx >= inputs.len() {
        job_compute(sim, world, task, worker_ix);
        return;
    }
    let node = world.cluster.workers()[worker_ix];
    let plan = world.storage.plan_read(&world.cluster, node, inputs[idx]);
    exec_plan(
        sim,
        world,
        plan,
        Box::new(move |sim, world| job_read(sim, world, task, worker_ix, idx + 1)),
    );
}

fn job_compute(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    let node = world.cluster.workers()[worker_ix];
    let speed = world.cluster.node(node).itype.core_speed();
    let dur = SimDuration::from_secs_f64(world.wf.task(task).cpu_secs / speed);
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .compute_start = sim.now();
    sim.schedule_in(dur, move |sim, world| {
        world.records[task.index()]
            .as_mut()
            .expect("record")
            .compute_end = sim.now();
        // Transient-failure injection (before any output is written, so
        // the write-once discipline survives the retry).
        if let Some(fm) = world.cfg.failures {
            {
                let rec = world.records[task.index()].as_mut().expect("record");
                rec.attempts += 1;
            }
            if world.rng.chance(fm.prob) {
                let attempts = world.records[task.index()].expect("record").attempts;
                world.release(worker_ix, task);
                if attempts > fm.max_retries {
                    world.aborted = Some(task);
                    // Drain the queue so the run winds down.
                    world.ready.clear();
                    return;
                }
                world.retries += 1;
                mark_ready(sim, world, task);
                try_dispatch(sim, world);
                return;
            }
        } else {
            world.records[task.index()]
                .as_mut()
                .expect("record")
                .attempts += 1;
        }
        job_write(sim, world, task, worker_ix, 0);
    });
}

fn job_write(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize, idx: usize) {
    let outputs = world.task_outputs(task);
    if idx >= outputs.len() {
        job_stage_out(sim, world, task, worker_ix);
        return;
    }
    let node = world.cluster.workers()[worker_ix];
    let plan = world.storage.plan_write(&world.cluster, node, outputs[idx]);
    exec_plan(
        sim,
        world,
        plan,
        Box::new(move |sim, world| job_write(sim, world, task, worker_ix, idx + 1)),
    );
}

fn job_stage_out(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .stage_out_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    let outputs = world.task_outputs(task);
    let plan = world.storage.plan_stage_out(&world.cluster, node, &outputs);
    exec_plan(
        sim,
        world,
        plan,
        Box::new(move |sim, world| job_done(sim, world, task, worker_ix)),
    );
}

fn job_done(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.release(worker_ix, task);
    world.records[task.index()].as_mut().expect("record").end_at = sim.now();
    world.done += 1;
    if world.done == world.wf.task_count() {
        world.finished_at = Some(sim.now());
    }
    // DAGMan releases children whose last parent just finished.
    let children: Vec<TaskId> = world.wf.children(task).to_vec();
    for c in children {
        let p = &mut world.pending_parents[c.index()];
        debug_assert!(*p > 0, "child with no pending parents released");
        *p -= 1;
        if *p == 0 {
            mark_ready(sim, world, c);
        }
    }
    try_dispatch(sim, world);
}

/// The workflow makespan (§V): first submission to last completion.
pub fn makespan(world: &World) -> Option<SimTime> {
    world.finished_at
}
