//! The workflow driver: DAGMan-like dependency release and Condor-like
//! dispatch, plus the per-job lifecycle
//! (stage-in → reads → compute → writes → stage-out).
//!
//! Fault injection (node crashes, storage failover, spot termination) and
//! the rescue-DAG recovery pass live in [`crate::failures`]; the driver's
//! part of the bargain is (a) every lifecycle continuation carries the
//! task's execution *epoch* and no-ops if the execution was killed, and
//! (b) writes skip outputs that survived on healthy nodes, so a rescue
//! re-run regenerates only what was actually lost.

use crate::exec::exec_plan_guarded;
use crate::failures;
use crate::world::{TaskRecord, World};
use simcore::{Sim, SimDuration, SimTime};
use wfdag::TaskId;
use wfobs::{Event, Phase};

/// How many queued jobs the matchmaker examines per cycle (backfill
/// window): a ready job that does not fit anywhere does not starve
/// smaller jobs behind it, but the scan stays bounded.
const BACKFILL_WINDOW: usize = 64;

/// Kick off the run: pre-stage inputs, arm the fault plan, release root
/// tasks, dispatch.
pub fn start_run(sim: &mut Sim<World>, world: &mut World) {
    let inputs = world.workflow_inputs();
    world.storage.prestage(&world.cluster, &inputs);
    if world.obs.enabled() {
        // The initial billing segments were opened in `World::new`,
        // before the bus was attached; replay them onto the bus so the
        // segment stream is complete.
        for (ix, segs) in world.node_segments.iter().enumerate() {
            if let Some(seg) = segs.last() {
                if seg.close.is_none() {
                    world.obs.emit(Event::SegmentOpen {
                        node: ix as u32,
                        spot: seg.spot,
                    });
                }
            }
        }
    }
    failures::install_faults(sim, world);
    for t in world.wf.roots() {
        mark_ready(sim, world, t);
    }
    try_dispatch(sim, world);
}

pub(crate) fn mark_ready(sim: &mut Sim<World>, world: &mut World, task: TaskId) {
    // Rescue-DAG pass: if an input was lost to a storage failure, defer
    // this task and resubmit the producers of the missing files.
    if world.any_files_lost && failures::rescue_defer(sim, world, task) {
        return;
    }
    world.ready.push_back(task);
    world.obs.emit(Event::TaskReady { task: task.0 });
    world.obs.emit(Event::ReadyDepth {
        depth: world.ready.len() as u32,
    });
    let now = sim.now();
    let attempts = world.records[task.index()].map_or(0, |r| r.attempts);
    world.records[task.index()] = Some(TaskRecord {
        task,
        node: vcluster::NodeId(u32::MAX),
        ready_at: now,
        start_at: now,
        ops_start: now,
        stage_in_start: now,
        reads_start: now,
        compute_start: now,
        compute_end: now,
        stage_out_start: now,
        end_at: now,
        attempts,
    });
}

/// One matchmaking cycle: dispatch every queued job (within the backfill
/// window) that fits on some node.
pub fn try_dispatch(sim: &mut Sim<World>, world: &mut World) {
    if let Some(t) = world.stall_until {
        // Storage is down and every client call hangs: nothing dispatches
        // until the service recovers.
        if sim.now() < t {
            return;
        }
        world.stall_until = None;
    }
    let mut examined = 0;
    let mut dispatched = 0u32;
    let mut kept = std::collections::VecDeque::new();
    while let Some(task) = world.ready.pop_front() {
        if examined >= BACKFILL_WINDOW {
            kept.push_back(task);
            continue;
        }
        examined += 1;
        match world.pick_node(task) {
            Some(i) => {
                dispatch(sim, world, task, i);
                dispatched += 1;
            }
            None => kept.push_back(task),
        }
    }
    world.ready = kept;
    // Re-sample queue depth after the drain, so depth decreases are
    // observable too (live ready-depth widgets track both edges).
    if dispatched > 0 {
        world.obs.emit(Event::ReadyDepth {
            depth: world.ready.len() as u32,
        });
    }
}

fn dispatch(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize) {
    world.reserve(worker_ix, task);
    world.running[worker_ix].push(task);
    let epoch = world.epoch[task.index()];
    let node = world.cluster.workers()[worker_ix];
    let attempt = {
        let rec = world.records[task.index()].as_mut().expect("record exists");
        rec.node = node;
        rec.start_at = sim.now();
        rec.attempts
    };
    world.obs.emit(Event::TaskStart {
        task: task.0,
        node: node.0,
        attempt,
    });
    // DAGMan/Condor per-job overhead is paid while holding the slot.
    let overhead = world.cfg.job_overhead;
    sim.schedule_in(overhead, move |sim, world| {
        job_ops(sim, world, task, worker_ix, epoch);
    });
}

/// The task's POSIX operation storm, charged to storage systems with a
/// central per-op bottleneck (NFS).
fn job_ops(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize, epoch: u32) {
    if !world.live(task, epoch) {
        return;
    }
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .ops_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    world.obs.emit(Event::TaskPhase {
        task: task.0,
        node: node.0,
        phase: Phase::Ops,
    });
    let io_ops = world.wf.task(task).io_ops;
    let plan = world.storage.plan_task_ops(&world.cluster, node, io_ops);
    exec_plan_guarded(
        sim,
        world,
        plan,
        Some((task, epoch)),
        Box::new(move |sim, world| job_stage_in(sim, world, task, worker_ix, epoch)),
    );
}

fn job_stage_in(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    epoch: u32,
) {
    if !world.live(task, epoch) {
        return;
    }
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .stage_in_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    world.obs.emit(Event::TaskPhase {
        task: task.0,
        node: node.0,
        phase: Phase::StageIn,
    });
    let inputs = world.task_inputs(task);
    let plan = world.storage.plan_stage_in(&world.cluster, node, &inputs);
    exec_plan_guarded(
        sim,
        world,
        plan,
        Some((task, epoch)),
        Box::new(move |sim, world| job_read(sim, world, task, worker_ix, epoch, 0)),
    );
}

fn job_read(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    epoch: u32,
    idx: usize,
) {
    if !world.live(task, epoch) {
        return;
    }
    if idx == 0 {
        world.records[task.index()]
            .as_mut()
            .expect("record")
            .reads_start = sim.now();
        world.obs.emit(Event::TaskPhase {
            task: task.0,
            node: world.cluster.workers()[worker_ix].0,
            phase: Phase::Read,
        });
    }
    let inputs = world.task_inputs(task);
    if idx >= inputs.len() {
        job_compute(sim, world, task, worker_ix, epoch);
        return;
    }
    // An input can vanish *after* dispatch (a brick died under us): the
    // execution fails like a crashed one and the retry's rescue pass
    // resubmits the producer.
    if world.any_files_lost
        && !world
            .storage
            .missing_files(&inputs[idx..idx + 1])
            .is_empty()
    {
        failures::kill_task(sim, world, task, worker_ix, true);
        return;
    }
    let node = world.cluster.workers()[worker_ix];
    let plan = world.storage.plan_read(&world.cluster, node, inputs[idx]);
    exec_plan_guarded(
        sim,
        world,
        plan,
        Some((task, epoch)),
        Box::new(move |sim, world| job_read(sim, world, task, worker_ix, epoch, idx + 1)),
    );
}

fn job_compute(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    epoch: u32,
) {
    let node = world.cluster.workers()[worker_ix];
    let speed = world.cluster.node(node).itype.core_speed();
    let dur = SimDuration::from_secs_f64(world.wf.task(task).cpu_secs / speed);
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .compute_start = sim.now();
    world.obs.emit(Event::TaskPhase {
        task: task.0,
        node: node.0,
        phase: Phase::Compute,
    });
    sim.schedule_in(dur, move |sim, world| {
        if !world.live(task, epoch) {
            return;
        }
        world.records[task.index()]
            .as_mut()
            .expect("record")
            .compute_end = sim.now();
        // Transient-failure injection (before any output is written, so
        // the write-once discipline survives the retry).
        let fm = world.faults.as_ref().and_then(|p| p.task_failures);
        if let Some(fm) = fm {
            world.records[task.index()]
                .as_mut()
                .expect("record")
                .attempts += 1;
            // Zero-probability models draw nothing, keeping a zero-rate
            // plan bit-identical to no plan at all.
            if fm.prob > 0.0 && world.fault_rng_task.chance(fm.prob) {
                failures::fail_execution(sim, world, task, worker_ix, fm.max_retries);
                return;
            }
        } else {
            world.records[task.index()]
                .as_mut()
                .expect("record")
                .attempts += 1;
        }
        world.obs.emit(Event::TaskPhase {
            task: task.0,
            node: world.cluster.workers()[worker_ix].0,
            phase: Phase::Write,
        });
        job_write(sim, world, task, worker_ix, epoch, 0);
    });
}

fn job_write(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    epoch: u32,
    idx: usize,
) {
    if !world.live(task, epoch) {
        return;
    }
    let outputs = world.task_outputs(task);
    if idx >= outputs.len() {
        job_stage_out(sim, world, task, worker_ix, epoch);
        return;
    }
    // Skip outputs this workflow already wrote: a retry of an execution
    // killed mid-write must not write twice, and a rescue re-run reuses
    // outputs that survived on healthy nodes (failover removed only the
    // lost ones from `written`).
    if !world.written.insert(outputs[idx].0) {
        job_write(sim, world, task, worker_ix, epoch, idx + 1);
        return;
    }
    let node = world.cluster.workers()[worker_ix];
    let plan = world.storage.plan_write(&world.cluster, node, outputs[idx]);
    exec_plan_guarded(
        sim,
        world,
        plan,
        Some((task, epoch)),
        Box::new(move |sim, world| job_write(sim, world, task, worker_ix, epoch, idx + 1)),
    );
}

fn job_stage_out(
    sim: &mut Sim<World>,
    world: &mut World,
    task: TaskId,
    worker_ix: usize,
    epoch: u32,
) {
    if !world.live(task, epoch) {
        return;
    }
    world.records[task.index()]
        .as_mut()
        .expect("record")
        .stage_out_start = sim.now();
    let node = world.cluster.workers()[worker_ix];
    world.obs.emit(Event::TaskPhase {
        task: task.0,
        node: node.0,
        phase: Phase::StageOut,
    });
    // Only stage out (and bill) each output once, even across retries.
    let outputs: Vec<_> = world
        .task_outputs(task)
        .into_iter()
        .filter(|&(f, _)| world.staged_out.insert(f))
        .collect();
    let plan = world.storage.plan_stage_out(&world.cluster, node, &outputs);
    exec_plan_guarded(
        sim,
        world,
        plan,
        Some((task, epoch)),
        Box::new(move |sim, world| job_done(sim, world, task, worker_ix, epoch)),
    );
}

fn job_done(sim: &mut Sim<World>, world: &mut World, task: TaskId, worker_ix: usize, epoch: u32) {
    if !world.live(task, epoch) {
        return;
    }
    world.release(worker_ix, task);
    world.running[worker_ix].retain(|&t| t != task);
    let attempt = {
        let rec = world.records[task.index()].as_mut().expect("record");
        rec.end_at = sim.now();
        rec.attempts
    };
    world.obs.emit(Event::TaskEnd {
        task: task.0,
        node: world.cluster.workers()[worker_ix].0,
        attempt,
    });
    world.completed[task.index()] = true;
    world.done += 1;
    if world.done == world.wf.task_count() {
        world.finished_at = Some(sim.now());
    }
    if world.rescued.remove(&task) {
        // A rescue re-run releases only the tasks that were deferred on
        // it — its original children already ran.
        let waiters = world.rescue_waiters.remove(&task).unwrap_or_default();
        for w in waiters {
            let p = &mut world.pending_parents[w.index()];
            debug_assert!(*p > 0, "rescue waiter with no pending parents");
            *p -= 1;
            if *p == 0 {
                mark_ready(sim, world, w);
            }
        }
        try_dispatch(sim, world);
        return;
    }
    // DAGMan releases children whose last parent just finished.
    let children: Vec<TaskId> = world.wf.children(task).to_vec();
    for c in children {
        let p = &mut world.pending_parents[c.index()];
        debug_assert!(*p > 0, "child with no pending parents released");
        *p -= 1;
        if *p == 0 {
            mark_ready(sim, world, c);
        }
    }
    try_dispatch(sim, world);
}

/// The workflow makespan (§V): first submission to last completion.
pub fn makespan(world: &World) -> Option<SimTime> {
    world.finished_at
}
