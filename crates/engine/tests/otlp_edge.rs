//! OTLP exporter edge cases: a zero-task DAG, a single-node cluster, and
//! a run whose event stream ends mid-fault (rescue pending, replacement
//! node not yet up). Each must still produce a parseable, single-rooted
//! OTLP document and a stable digest.

use wfengine::{run_workflow, RunConfig, RunStats};
use wfobs::otlp::decode;
use wfobs::{Event, FaultKind, ObsHandle, ObsLevel, OpKind, OtlpLabels, Phase};
use wfstorage::StorageKind;

fn export(stats: &RunStats, wf: &wfdag::Workflow, workers: u32) -> String {
    let report = stats.obs.as_ref().expect("Full level records a report");
    let labels = wfengine::otlp_labels(stats, wf, StorageKind::GlusterNufa.label(), workers);
    wfobs::otlp_trace(report, &labels)
}

#[test]
fn zero_task_dag_exports_single_rooted_trace() {
    let wf = wfdag::WorkflowBuilder::new("empty")
        .build()
        .expect("empty workflow is well-formed");
    let cfg = RunConfig::cell(StorageKind::GlusterNufa, 2)
        .with_seed(7)
        .with_obs(ObsLevel::Full);
    let stats = run_workflow(wf.clone(), cfg.clone()).expect("zero-task run succeeds");
    assert_eq!(stats.makespan_secs, 0.0);
    assert_eq!(stats.tasks, 0);

    let json = export(&stats, &wf, 2);
    let trace = decode::trace(&json).expect("decodes");
    decode::check_well_formed(&trace).expect("well-formed");
    assert!(
        trace
            .spans
            .iter()
            .all(|s| s.attr("wf.task.outcome").is_none()),
        "no task spans in an empty run"
    );

    // Digest (and hence every derived id) is stable across replays.
    let again = run_workflow(wf.clone(), cfg).expect("zero-task run succeeds");
    assert_eq!(stats.digest, again.digest);
    assert_eq!(json, export(&again, &wf, 2));
}

#[test]
fn single_node_cluster_exports_well_formed_trace() {
    let mut b = wfdag::WorkflowBuilder::new("single");
    let fin = b.file("in.dat", 1_000_000);
    let f1 = b.file("f1.dat", 1_000_000);
    let f2 = b.file("f2.dat", 1_000_000);
    b.task("a", "gen", 1.0, 64 << 20, vec![fin], vec![f1]);
    b.task("b", "use", 2.0, 64 << 20, vec![f1], vec![f2]);
    let wf = b.build().unwrap();
    let cfg = RunConfig::cell(StorageKind::Nfs, 1)
        .with_seed(9)
        .with_obs(ObsLevel::Full);
    let stats = run_workflow(wf.clone(), cfg).expect("single-node run succeeds");

    let json = export(&stats, &wf, 1);
    let trace = decode::trace(&json).expect("decodes");
    decode::check_well_formed(&trace).expect("well-formed");
    let ok = trace
        .spans
        .iter()
        .filter(|s| s.attr("wf.task.outcome").and_then(|v| v.as_str()) == Some("ok"))
        .count();
    assert_eq!(ok, 2, "both tasks completed on the lone worker");
}

/// A stream that stops mid-recovery: a crash killed the task, the rescue
/// pass resubmitted it, but no replacement node came up before the end.
/// The exporter must close the dangling task/node spans at stream end
/// and still emit a parseable single-rooted document.
#[test]
fn stream_ending_mid_fault_still_exports() {
    let build = || {
        let h = ObsHandle::new(ObsLevel::Full, 11);
        h.set_now(0);
        h.emit(Event::SegmentOpen {
            node: 0,
            spot: false,
        });
        h.emit(Event::TaskStart {
            task: 0,
            node: 0,
            attempt: 0,
        });
        h.set_now(500_000_000);
        h.emit(Event::TaskPhase {
            task: 0,
            node: 0,
            phase: Phase::Read,
        });
        h.emit(Event::StorageOp {
            op: OpKind::Read,
            node: 0,
            bytes: 4_096,
        });
        h.set_now(900_000_000);
        h.emit(Event::Fault {
            kind: FaultKind::NodeCrash,
            node: 0,
        });
        h.emit(Event::TaskKilled {
            task: 0,
            node: 0,
            wasted_nanos: 900_000_000,
        });
        h.emit(Event::FilesLost { count: 2 });
        h.emit(Event::RescueResubmit { task: 1 });
        h.emit(Event::SegmentClose { node: 0 });
        // A second task was dispatched elsewhere and never finished.
        h.set_now(950_000_000);
        h.emit(Event::SegmentOpen {
            node: 1,
            spot: false,
        });
        h.emit(Event::TaskStart {
            task: 1,
            node: 1,
            attempt: 0,
        });
        // Stream ends here: rescue pending, node 1's segment still open.
        h.take_report().unwrap()
    };

    let report = build();
    let json = wfobs::otlp_trace(&report, &OtlpLabels::default());
    let trace = decode::trace(&json).expect("decodes");
    decode::check_well_formed(&trace).expect("well-formed mid-fault");

    let unfinished: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.attr("wf.task.outcome").and_then(|v| v.as_str()) == Some("unfinished"))
        .collect();
    assert_eq!(unfinished.len(), 1, "the dangling attempt is marked");
    assert_eq!(
        unfinished[0].end, 950_000_000,
        "dangling spans close at the last observed timestamp"
    );
    let root = trace
        .spans
        .iter()
        .find(|s| s.parent_span_id.is_empty())
        .unwrap();
    assert!(root.events.iter().any(|e| e.name == "rescue_resubmit"));
    assert!(root.events.iter().any(|e| e.name == "files_lost"));

    // Same synthetic stream → same digest → byte-identical export.
    let again = build();
    assert_eq!(report.digest, again.digest);
    assert_eq!(json, wfobs::otlp_trace(&again, &OtlpLabels::default()));
}
