//! Metamorphic property tests for the fault-injection subsystem.
//!
//! Two invariants, checked over randomly generated DAGs, storage options
//! and seeds:
//!
//! 1. **Zero-rate plans are invisible.** A [`FaultPlan`] whose every
//!    class is present but rated zero draws nothing from the fault RNG
//!    streams and schedules no events, so the run must be *bit-identical*
//!    to one with no plan at all — makespan bits, event counts, per-task
//!    records, retry counters and billing segments.
//! 2. **Post-finish faults are no-ops.** A node crash scheduled after the
//!    last task completes must change nothing: the simulation drains the
//!    stale event without side effects, and no counter or segment moves.

use proptest::prelude::*;
use wfengine::{run_workflow, FaultPlan, NodeCrashSpec, RunConfig, RunStats};
use wfstorage::StorageKind;

/// Generation parameters of one task: compute seconds, output size, and
/// a parent-selection mask over earlier tasks.
#[derive(Debug, Clone, Copy)]
struct GenTask {
    cpu_ds: u16,
    out_mb: u8,
    parent_mask: u32,
}

fn gen_task() -> impl Strategy<Value = GenTask> {
    (1u16..50, 1u8..20, 0u32..=u32::MAX).prop_map(|(cpu_ds, out_mb, parent_mask)| GenTask {
        cpu_ds,
        out_mb,
        parent_mask,
    })
}

/// Build a random but well-formed DAG: task `i` consumes the outputs of
/// the earlier tasks its mask selects (plus a common input for roots).
fn build_workflow(tasks: &[GenTask]) -> wfdag::Workflow {
    let mut b = wfdag::WorkflowBuilder::new("prop");
    let root_in = b.file("in.dat", 2_000_000);
    let mut outs = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let out = b.file(format!("f{i}.dat"), u64::from(t.out_mb) * 1_000_000);
        let parents: Vec<_> = (0..i)
            .filter(|j| t.parent_mask >> (j % 32) & 1 == 1)
            .map(|j| outs[j])
            .collect();
        let inputs = if parents.is_empty() {
            vec![root_in]
        } else {
            parents
        };
        b.task(
            format!("t{i}"),
            "w",
            f64::from(t.cpu_ds) / 10.0,
            128 << 20,
            inputs,
            vec![out],
        );
        outs.push(out);
    }
    b.build().expect("generated DAG is acyclic by construction")
}

const KINDS: [StorageKind; 5] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterNufa,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

fn run(
    tasks: &[GenTask],
    kind_ix: usize,
    workers: u32,
    seed: u64,
    plan: Option<FaultPlan>,
) -> RunStats {
    let mut cfg = RunConfig::cell(KINDS[kind_ix % KINDS.len()], workers)
        .with_seed(seed)
        .with_obs(wfobs::ObsLevel::Digest);
    cfg.faults = plan;
    run_workflow(build_workflow(tasks), cfg).expect("fault-free run succeeds")
}

/// Bit-level equality of everything a report serialises (event counts
/// are checked separately: a drained post-finish fault timer is still an
/// event, even though it has no observable effect).
fn assert_bit_identical(a: &RunStats, b: &RunStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        a.makespan_secs.to_bits(),
        b.makespan_secs.to_bits(),
        "makespan diverged: {} vs {}",
        a.makespan_secs,
        b.makespan_secs
    );
    prop_assert_eq!(a.retries, b.retries);
    prop_assert_eq!(&a.records, &b.records, "per-task records diverged");
    prop_assert_eq!(&a.faults.segments, &b.faults.segments, "segments diverged");
    prop_assert_eq!(
        a.total_io_secs.to_bits(),
        b.total_io_secs.to_bits(),
        "io seconds diverged"
    );
    // The run digest folds every observability event (with timestamps)
    // into one word: equality here means the full instrumented event
    // streams replayed identically, not just the summarised stats.
    prop_assert!(a.digest.is_some(), "digest missing at ObsLevel::Digest");
    prop_assert_eq!(a.digest, b.digest, "run digests diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: present-but-zero fault plans change nothing.
    #[test]
    fn zero_rate_plan_is_bit_identical_to_no_plan(
        tasks in proptest::collection::vec(gen_task(), 1..10),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..=u64::MAX,
    ) {
        let clean = run(&tasks, kind_ix, workers, seed, None);
        let zeroed = run(&tasks, kind_ix, workers, seed, Some(FaultPlan::zero()));
        assert_bit_identical(&clean, &zeroed)?;
        prop_assert_eq!(clean.events, zeroed.events, "zero-rate plan scheduled events");
        prop_assert_eq!(zeroed.faults.node_crashes, 0);
        prop_assert_eq!(zeroed.faults.tasks_killed, 0);
    }

    /// Invariant 2: a crash scheduled after the last task finishes is a
    /// pure no-op — same bits, no counters, no extra segments.
    #[test]
    fn crash_after_finish_changes_nothing(
        tasks in proptest::collection::vec(gen_task(), 1..10),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..=u64::MAX,
        victim in 0u32..4,
        delay_ds in 1u32..1000,
    ) {
        let clean = run(&tasks, kind_ix, workers, seed, None);
        let mut plan = FaultPlan::zero();
        plan.node_crash = Some(NodeCrashSpec {
            rate_per_hour: 0.0,
            scheduled: vec![(
                victim % workers,
                clean.makespan_secs + f64::from(delay_ds) / 10.0,
            )],
            reprovision: true,
        });
        let late = run(&tasks, kind_ix, workers, seed, Some(plan));
        assert_bit_identical(&clean, &late)?;
        // The stale crash timer still drains through the event queue —
        // exactly one extra event, with no observable effect.
        prop_assert_eq!(late.events, clean.events + 1);
        prop_assert_eq!(late.faults.node_crashes, 0, "post-finish crash counted");
        prop_assert_eq!(late.faults.wasted_task_secs.to_bits(), 0.0f64.to_bits());
    }
}
