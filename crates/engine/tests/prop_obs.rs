//! Property tests for the observability subsystem (`wfobs`) as wired
//! through the engine:
//!
//! 1. **Chrome traces are well-formed.** For random DAGs, storage kinds
//!    and seeds, the exported Trace Event JSON parses, has a
//!    `traceEvents` array, and every lane's `"X"` spans are strictly
//!    nested or disjoint — the invariant `chrome://tracing` renders by.
//! 2. **The run digest is a replay contract.** Same workflow + config +
//!    seed → same digest (at `Digest` *and* `Full` level — the digest
//!    must not depend on whether events are also being recorded);
//!    different seeds → different digests.
//! 3. **Levels record exactly what they promise.** Sampling
//!    `Off`/`Digest`/`Full`: `Off` produces neither digest nor report,
//!    `Digest` produces the digest but no exporter-visible events, and
//!    `Full` produces both with the same digest value.

use proptest::prelude::*;
use wfengine::{run_workflow, RunConfig, RunStats};
use wfobs::{chrome_trace, ChromeLabels, ObsLevel};
use wfstorage::StorageKind;

/// Generation parameters of one task: compute seconds, output size, and
/// a parent-selection mask over earlier tasks.
#[derive(Debug, Clone, Copy)]
struct GenTask {
    cpu_ds: u16,
    out_mb: u8,
    parent_mask: u32,
}

fn gen_task() -> impl Strategy<Value = GenTask> {
    (1u16..50, 1u8..20, 0u32..=u32::MAX).prop_map(|(cpu_ds, out_mb, parent_mask)| GenTask {
        cpu_ds,
        out_mb,
        parent_mask,
    })
}

/// Build a random but well-formed DAG: task `i` consumes the outputs of
/// the earlier tasks its mask selects (plus a common input for roots).
fn build_workflow(tasks: &[GenTask]) -> wfdag::Workflow {
    let mut b = wfdag::WorkflowBuilder::new("prop-obs");
    let root_in = b.file("in.dat", 2_000_000);
    let mut outs = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let out = b.file(format!("f{i}.dat"), u64::from(t.out_mb) * 1_000_000);
        let parents: Vec<_> = (0..i)
            .filter(|j| t.parent_mask >> (j % 32) & 1 == 1)
            .map(|j| outs[j])
            .collect();
        let inputs = if parents.is_empty() {
            vec![root_in]
        } else {
            parents
        };
        b.task(
            format!("t{i}"),
            "w",
            f64::from(t.cpu_ds) / 10.0,
            128 << 20,
            inputs,
            vec![out],
        );
        outs.push(out);
    }
    b.build().expect("generated DAG is acyclic by construction")
}

const KINDS: [StorageKind; 5] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterNufa,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

fn run(tasks: &[GenTask], kind_ix: usize, workers: u32, seed: u64, obs: ObsLevel) -> RunStats {
    let cfg = RunConfig::cell(KINDS[kind_ix % KINDS.len()], workers)
        .with_seed(seed)
        .with_obs(obs);
    run_workflow(build_workflow(tasks), cfg).expect("fault-free run succeeds")
}

/// Extract `(ts, ts + dur)` for every complete (`"ph":"X"`) span, grouped
/// by `(pid, tid)` lane.
fn spans_by_lane(trace: &serde_json::Value) -> Result<Vec<Vec<(f64, f64)>>, TestCaseError> {
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| TestCaseError::fail("traceEvents array missing"))?;
    let num = |v: &serde_json::Value| -> Option<f64> {
        match *v {
            serde_json::Value::F64(f) => Some(f),
            serde_json::Value::I64(n) => Some(n as f64),
            serde_json::Value::U64(n) => Some(n as f64),
            _ => None,
        }
    };
    type Lane = ((f64, f64), Vec<(f64, f64)>);
    let mut lanes: Vec<Lane> = Vec::new();
    for ev in events {
        let ph = ev.get("ph");
        let is_x = matches!(ph, Some(serde_json::Value::Str(s)) if s == "X");
        if !is_x {
            continue;
        }
        let pid = ev.get("pid").and_then(&num).expect("X span has pid");
        let tid = ev.get("tid").and_then(&num).expect("X span has tid");
        let ts = ev.get("ts").and_then(&num).expect("X span has ts");
        let dur = ev.get("dur").and_then(&num).expect("X span has dur");
        prop_assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur: {ts}/{dur}");
        let key = (pid, tid);
        match lanes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push((ts, ts + dur)),
            None => lanes.push((key, vec![(ts, ts + dur)])),
        }
    }
    Ok(lanes.into_iter().map(|(_, v)| v).collect())
}

/// Chrome's rendering invariant: within one lane, spans sorted by start
/// (ties: longest first) must form a stack — each span either starts
/// after the enclosing span ends, or ends no later than it. `ts` and
/// `dur` are printed at microsecond precision with 3 decimals, so two
/// spans closing at the same instant can disagree by the rounding of
/// `ts + dur`; 2.5 ns absorbs that without masking real overlaps.
fn assert_nested_or_disjoint(mut spans: Vec<(f64, f64)>) -> Result<(), TestCaseError> {
    const EPS: f64 = 0.0025;
    spans.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(b.1.partial_cmp(&a.1).unwrap())
    });
    let mut stack: Vec<(f64, f64)> = Vec::new();
    for (start, end) in spans {
        while let Some(&(_, top_end)) = stack.last() {
            if top_end <= start + EPS {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(top_start, top_end)) = stack.last() {
            prop_assert!(
                end <= top_end + EPS,
                "span [{start}, {end}] straddles enclosing [{top_start}, {top_end}]"
            );
        }
        stack.push((start, end));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A full-level run's Chrome trace parses as JSON and every lane's
    /// spans are nested or disjoint.
    #[test]
    fn chrome_trace_is_valid_and_lanes_nest(
        tasks in proptest::collection::vec(gen_task(), 1..12),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..=u64::MAX,
    ) {
        let stats = run(&tasks, kind_ix, workers, seed, ObsLevel::Full);
        let report = stats.obs.as_ref().expect("Full level records a report");
        prop_assert!(!report.events.is_empty(), "run emitted no events");
        let wf = build_workflow(&tasks);
        let labels = ChromeLabels {
            task_names: wf.tasks().iter().map(|t| t.name.clone()).collect(),
            node_names: Vec::new(),
        };
        let json = chrome_trace(report, &labels);
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("chrome trace is valid JSON");
        let lanes = spans_by_lane(&parsed)?;
        prop_assert!(!lanes.is_empty(), "no spans exported");
        for lane in lanes {
            assert_nested_or_disjoint(lane)?;
        }
    }

    /// Digest is stable across same-seed replays, identical between
    /// `Digest` and `Full` levels, and perturbed by the seed.
    #[test]
    fn digest_replays_and_separates_seeds(
        tasks in proptest::collection::vec(gen_task(), 1..10),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let a = run(&tasks, kind_ix, workers, seed, ObsLevel::Digest);
        let b = run(&tasks, kind_ix, workers, seed, ObsLevel::Digest);
        let full = run(&tasks, kind_ix, workers, seed, ObsLevel::Full);
        let other = run(&tasks, kind_ix, workers, seed + 1, ObsLevel::Digest);
        prop_assert!(a.digest.is_some(), "digest missing at Digest level");
        prop_assert_eq!(a.digest, b.digest, "same-seed digests diverged");
        prop_assert_eq!(a.digest, full.digest, "Digest and Full levels disagree");
        prop_assert!(a.digest != other.digest, "different seeds collided");
    }

    /// Each observability level records exactly what it promises: `Off`
    /// nothing, `Digest` only the digest (no exporter-visible event log),
    /// `Full` the digest plus a non-empty report that agrees with it.
    #[test]
    fn obs_levels_record_what_they_promise(
        tasks in proptest::collection::vec(gen_task(), 1..8),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..=u64::MAX,
        level_ix in 0usize..3,
    ) {
        let level = [ObsLevel::Off, ObsLevel::Digest, ObsLevel::Full][level_ix];
        let stats = run(&tasks, kind_ix, workers, seed, level);
        match level {
            ObsLevel::Off => {
                prop_assert!(stats.digest.is_none(), "Off must not digest");
                prop_assert!(stats.obs.is_none(), "Off must not record");
            }
            ObsLevel::Digest => {
                prop_assert!(stats.digest.is_some(), "Digest must digest");
                prop_assert!(
                    stats.obs.is_none(),
                    "Digest must emit no exporter-visible events"
                );
            }
            ObsLevel::Full => {
                let report = stats.obs.as_ref().expect("Full records a report");
                prop_assert!(!report.events.is_empty(), "Full recorded no events");
                prop_assert_eq!(
                    stats.digest,
                    Some(report.digest),
                    "report digest and stats digest diverged"
                );
            }
        }
        // The digest value itself never depends on the recording level.
        if level != ObsLevel::Off {
            let other = run(&tasks, kind_ix, workers, seed, ObsLevel::Digest);
            prop_assert_eq!(stats.digest, other.digest);
        }
    }
}
