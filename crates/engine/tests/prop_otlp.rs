//! Conformance property tests for the OTLP export pipeline: for random
//! DAGs, storage kinds, cluster sizes, seeds and fault plans, the
//! exported `ExportTraceServiceRequest` must
//!
//! 1. decode with the in-repo OTLP reader and pass the well-formedness
//!    check (single root, parents resolve, child intervals nest inside
//!    parents, unique non-zero span ids, one trace id),
//! 2. re-export byte-identically (the determinism contract), with trace
//!    and span ids derived from the run digest stream — so a different
//!    seed moves every id,
//! 3. agree with the metrics document: same resource attributes, and
//!    every counter in the registry round-trips through OTLP JSON.

use proptest::prelude::*;
use wfengine::{run_workflow, FaultPlan, NodeCrashSpec, RunConfig, RunStats};
use wfobs::otlp::decode;
use wfobs::ObsLevel;
use wfstorage::StorageKind;

/// Generation parameters of one task (same scheme as `prop_obs`).
#[derive(Debug, Clone, Copy)]
struct GenTask {
    cpu_ds: u16,
    out_mb: u8,
    parent_mask: u32,
}

fn gen_task() -> impl Strategy<Value = GenTask> {
    (1u16..50, 1u8..20, 0u32..=u32::MAX).prop_map(|(cpu_ds, out_mb, parent_mask)| GenTask {
        cpu_ds,
        out_mb,
        parent_mask,
    })
}

fn build_workflow(tasks: &[GenTask]) -> wfdag::Workflow {
    let mut b = wfdag::WorkflowBuilder::new("prop-otlp");
    let root_in = b.file("in.dat", 2_000_000);
    let mut outs = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let out = b.file(format!("f{i}.dat"), u64::from(t.out_mb) * 1_000_000);
        let parents: Vec<_> = (0..i)
            .filter(|j| t.parent_mask >> (j % 32) & 1 == 1)
            .map(|j| outs[j])
            .collect();
        let inputs = if parents.is_empty() {
            vec![root_in]
        } else {
            parents
        };
        b.task(
            format!("t{i}"),
            "w",
            f64::from(t.cpu_ds) / 10.0,
            128 << 20,
            inputs,
            vec![out],
        );
        outs.push(out);
    }
    b.build().expect("generated DAG is acyclic by construction")
}

const KINDS: [StorageKind; 5] = [
    StorageKind::Nfs,
    StorageKind::S3,
    StorageKind::GlusterNufa,
    StorageKind::GlusterDistribute,
    StorageKind::Pvfs,
];

fn run(
    tasks: &[GenTask],
    kind_ix: usize,
    workers: u32,
    seed: u64,
    plan: Option<FaultPlan>,
) -> RunStats {
    let mut cfg = RunConfig::cell(KINDS[kind_ix % KINDS.len()], workers)
        .with_seed(seed)
        .with_obs(ObsLevel::Full);
    cfg.faults = plan;
    run_workflow(build_workflow(tasks), cfg).expect("run succeeds")
}

/// Export a finished run both ways and return the rendered documents.
fn export(stats: &RunStats, tasks: &[GenTask], kind_ix: usize, workers: u32) -> (String, String) {
    let report = stats.obs.as_ref().expect("Full level records a report");
    let labels = wfengine::otlp_labels(
        stats,
        &build_workflow(tasks),
        KINDS[kind_ix % KINDS.len()].label(),
        workers,
    );
    (
        wfobs::otlp_trace(report, &labels),
        wfobs::otlp_metrics(report, &labels),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free runs: well-formed span tree, byte-deterministic
    /// re-export, metrics round-trip, seed moves the trace id.
    #[test]
    fn exported_traces_are_well_formed_and_deterministic(
        tasks in proptest::collection::vec(gen_task(), 1..12),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..u64::MAX,
    ) {
        let stats = run(&tasks, kind_ix, workers, seed, None);
        let (trace_json, metrics_json) = export(&stats, &tasks, kind_ix, workers);
        let trace = decode::trace(&trace_json).expect("trace decodes");
        decode::check_well_formed(&trace).expect("well-formed span tree");

        // Every successful task contributes exactly one `ok` attempt span.
        let ok_spans = trace
            .spans
            .iter()
            .filter(|s| {
                s.attr("wf.task.outcome").and_then(|v| v.as_str()) == Some("ok")
            })
            .count();
        prop_assert_eq!(ok_spans, tasks.len(), "one ok span per task");

        // Byte-determinism: a second run + export reproduces both files.
        let again = run(&tasks, kind_ix, workers, seed, None);
        let (trace2, metrics2) = export(&again, &tasks, kind_ix, workers);
        prop_assert_eq!(&trace_json, &trace2, "trace export not byte-stable");
        prop_assert_eq!(&metrics_json, &metrics2, "metrics export not byte-stable");

        // Ids derive from the digest stream: a different seed moves them.
        let other = run(&tasks, kind_ix, workers, seed + 1, None);
        let (other_trace, _) = export(&other, &tasks, kind_ix, workers);
        let other = decode::trace(&other_trace).expect("trace decodes");
        prop_assert!(
            trace.spans[0].trace_id != other.spans[0].trace_id,
            "seed change must move the trace id"
        );

        // The metrics document shares the resource block and round-trips
        // the full counter registry.
        let metrics = decode::metrics(&metrics_json).expect("metrics decode");
        prop_assert_eq!(&metrics.resource, &trace.resource);
        let report = stats.obs.as_ref().unwrap();
        for (name, v) in report.metrics.counters() {
            let exported = metrics.metrics.iter().find_map(|m| match m {
                decode::Metric::Sum(n, val) if n == &format!("wf.{name}") => Some(*val),
                _ => None,
            });
            prop_assert_eq!(exported, Some(v as i64), "counter {} lost", name);
        }
    }

    /// Runs with injected node crashes (reprovision on) still export a
    /// single-rooted, well-formed, byte-stable trace; the fault shows up
    /// as root span events and extra node-incarnation spans.
    #[test]
    fn faulted_runs_export_well_formed_traces(
        tasks in proptest::collection::vec(gen_task(), 2..10),
        kind_ix in 0usize..KINDS.len(),
        workers in 2u32..5,
        seed in 0u64..u64::MAX,
        victim in 0u32..4,
        frac in 0.1f64..0.9,
    ) {
        // Schedule the crash mid-run, relative to the clean makespan.
        let clean = run(&tasks, kind_ix, workers, seed, None);
        let mut plan = FaultPlan::zero();
        plan.node_crash = Some(NodeCrashSpec {
            rate_per_hour: 0.0,
            scheduled: vec![(victim % workers, clean.makespan_secs * frac)],
            reprovision: true,
        });
        plan.max_fault_retries = 16;
        let stats = run(&tasks, kind_ix, workers, seed, Some(plan.clone()));
        let (trace_json, _) = export(&stats, &tasks, kind_ix, workers);
        let trace = decode::trace(&trace_json).expect("trace decodes");
        decode::check_well_formed(&trace).expect("well-formed under faults");

        if stats.faults.node_crashes > 0 {
            let root = trace
                .spans
                .iter()
                .find(|s| s.parent_span_id.is_empty())
                .expect("single root exists");
            prop_assert!(
                root.events.iter().any(|e| e.name == "fault"),
                "crash must surface as a root span event"
            );
            // If the replacement booted before the run ended (the run can
            // finish on the surviving nodes during the boot delay), its
            // incarnation span links back to the terminated one.
            if root.events.iter().any(|e| e.name == "node_recovered") {
                prop_assert!(
                    trace.spans.iter().any(|s| s
                        .links
                        .iter()
                        .any(|l| l.attrs.iter().any(|(k, v)| {
                            k == "wf.link"
                                && v.as_str() == Some("previous_incarnation")
                        }))),
                    "reprovisioned node must link its previous incarnation"
                );
            }
        }

        let again = run(&tasks, kind_ix, workers, seed, Some(plan));
        let (trace2, _) = export(&again, &tasks, kind_ix, workers);
        prop_assert_eq!(trace_json, trace2, "faulted export not byte-stable");
    }
}
