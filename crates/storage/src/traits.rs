//! The [`StorageSystem`] trait: what every data-sharing option implements.

use crate::op::{Note, OpPlan};
use serde::{Deserialize, Serialize};
use vcluster::{Cluster, NodeId};
use wfdag::FileId;

/// A file reference with its size, the unit storage planners work in.
pub type FileRef = (FileId, u64);

/// Aggregate operation counters a storage system maintains (for reports
/// and, for S3, billing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageOpStats {
    /// Foreground read operations planned.
    pub reads: u64,
    /// Foreground write operations planned.
    pub writes: u64,
    /// Bytes read (foreground).
    pub bytes_read: u64,
    /// Bytes written (foreground).
    pub bytes_written: u64,
    /// Reads served from a cache (NFS server page cache, S3 client cache).
    pub cache_hits: u64,
    /// Reads that missed every cache.
    pub cache_misses: u64,
}

/// Billing-relevant usage (only S3 charges per request, §VI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBilling {
    /// S3 PUT requests issued.
    pub s3_puts: u64,
    /// S3 GET requests issued.
    pub s3_gets: u64,
    /// Peak bytes resident in S3 (for the $/GB-month charge).
    pub s3_peak_bytes: u64,
}

/// Deployment constraints of a storage option (§V: GlusterFS and PVFS need
/// at least two nodes; the local disk is only meaningful on one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraints {
    /// Minimum worker count for a valid deployment.
    pub min_workers: u32,
    /// Maximum worker count (None = unbounded).
    pub max_workers: Option<u32>,
    /// Whether a dedicated storage-server node must be provisioned.
    pub needs_server: bool,
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints {
            min_workers: 1,
            max_workers: None,
            needs_server: false,
        }
    }
}

/// How a storage system reacts when a cluster node dies (fault
/// injection). The engine calls [`StorageSystem::on_node_failed`] and
/// applies the returned semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverResponse {
    /// The system does not depend on the dead node (S3's data plane is
    /// off-cluster; the local disk survives a service restart).
    Unaffected,
    /// All traffic through the system stalls until the server recovers
    /// (an NFS server reboot aborts outstanding RPCs and blocks new ones).
    StallAll,
    /// Files whose only copy lived on the dead node are gone and must be
    /// re-created by re-running their producers (a GlusterFS brick or a
    /// PVFS I/O server restarting with an empty volume).
    LostFiles(Vec<FileId>),
}

/// A data-sharing option for workflows in the cloud (§IV).
///
/// Implementations are *planners*: each operation returns an [`OpPlan`]
/// that the workflow engine executes against the simulator. Metadata
/// effects (placement, caches) are committed at planning time, which is
/// sound for the paper's strictly write-once workloads.
pub trait StorageSystem {
    /// Short system name, e.g. `"glusterfs-nufa"`.
    fn name(&self) -> &'static str;

    /// Attach an observability bus. Backends keep the handle and report
    /// planned operations and cache hits/misses through it; the default
    /// (for test doubles) ignores it.
    fn attach_obs(&mut self, _obs: wfobs::ObsHandle) {}

    /// Deployment constraints.
    fn constraints(&self) -> Constraints {
        Constraints::default()
    }

    /// Record the placement of pre-staged workflow input files (§III.C:
    /// input data is pre-staged to the virtual cluster before the run).
    fn prestage(&mut self, cluster: &Cluster, files: &[FileRef]);

    /// Plan the cost of a task's POSIX operation storm (opens, seeks,
    /// attribute lookups) on `node` — `io_ops` calls. Only systems with a
    /// central per-operation bottleneck (NFS) charge for this; client-side
    /// caching makes it free elsewhere.
    fn plan_task_ops(&mut self, _cluster: &Cluster, _node: NodeId, _io_ops: u32) -> OpPlan {
        OpPlan::empty()
    }

    /// Plan the per-job stage-in of `inputs` on `node`, for systems that
    /// copy files to the local file system before the job starts (S3,
    /// §IV.A). POSIX systems return an empty plan.
    fn plan_stage_in(&mut self, _cluster: &Cluster, _node: NodeId, _inputs: &[FileRef]) -> OpPlan {
        OpPlan::empty()
    }

    /// Plan a task's read of `file` on `node`.
    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, file: FileRef) -> OpPlan;

    /// Plan a task's write of `file` on `node`. Files are write-once; a
    /// second write of the same id is a bug and implementations may panic.
    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, file: FileRef) -> OpPlan;

    /// Plan the per-job stage-out of `outputs` from `node` (S3 PUTs).
    fn plan_stage_out(
        &mut self,
        _cluster: &Cluster,
        _node: NodeId,
        _outputs: &[FileRef],
    ) -> OpPlan {
        OpPlan::empty()
    }

    /// Callback when a background stage completes (e.g. an NFS flush).
    fn on_background_done(&mut self, _note: Note) {}

    /// Fault-injection hook: `node` just died. Implementations update
    /// their internal placement/caches and describe the consequence.
    /// Must be deterministic (no randomness); the default is
    /// [`FailoverResponse::Unaffected`].
    fn on_node_failed(&mut self, _cluster: &Cluster, _node: NodeId) -> FailoverResponse {
        FailoverResponse::Unaffected
    }

    /// Of `files`, the ones this system can no longer serve (lost to a
    /// node failure). The engine's rescue-DAG pass re-runs their
    /// producers. Systems that never lose data return an empty vector.
    fn missing_files(&self, _files: &[FileRef]) -> Vec<FileId> {
        Vec::new()
    }

    /// Bytes of `files` already resident at `node` (local placement or
    /// client cache) — consulted by the data-aware scheduler ablation A3.
    fn local_bytes(&self, _cluster: &Cluster, _node: NodeId, _files: &[FileRef]) -> u64 {
        0
    }

    /// Operation counters.
    fn op_stats(&self) -> StorageOpStats;

    /// Billing-relevant usage.
    fn billing(&self) -> StorageBilling {
        StorageBilling::default()
    }
}

/// The storage options evaluated in the paper (plus XtreemFS, which §IV
/// reports was >2× slower and not fully evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Single-node local RAID 0 ("Local" in Figs 2–7).
    Local,
    /// NFS on a dedicated server (§IV.B).
    Nfs,
    /// GlusterFS in NUFA mode (§IV.C).
    GlusterNufa,
    /// GlusterFS in distribute mode (§IV.C).
    GlusterDistribute,
    /// PVFS 2.6.3 striped across workers (§IV.D).
    Pvfs,
    /// Amazon S3 with the caching client (§IV.A).
    S3,
    /// XtreemFS (§IV, evaluated only anecdotally).
    XtreemFs,
    /// Direct node-to-node transfers — the paper's future work (§VIII).
    DirectTransfer,
}

impl StorageKind {
    /// Every kind, in the paper's presentation order (plus §VIII's
    /// future-work system).
    pub const ALL: [StorageKind; 8] = [
        StorageKind::S3,
        StorageKind::Nfs,
        StorageKind::GlusterNufa,
        StorageKind::GlusterDistribute,
        StorageKind::Pvfs,
        StorageKind::Local,
        StorageKind::XtreemFs,
        StorageKind::DirectTransfer,
    ];

    /// The five systems the paper evaluates in full, plus Local.
    pub const EVALUATED: [StorageKind; 6] = [
        StorageKind::S3,
        StorageKind::Nfs,
        StorageKind::GlusterNufa,
        StorageKind::GlusterDistribute,
        StorageKind::Pvfs,
        StorageKind::Local,
    ];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Local => "Local",
            StorageKind::Nfs => "NFS",
            StorageKind::GlusterNufa => "GlusterFS (NUFA)",
            StorageKind::GlusterDistribute => "GlusterFS (distribute)",
            StorageKind::Pvfs => "PVFS",
            StorageKind::S3 => "S3",
            StorageKind::XtreemFs => "XtreemFS",
            StorageKind::DirectTransfer => "Direct transfer",
        }
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
