//! # wfstorage — data-sharing options for workflows in the cloud
//!
//! Implements §IV of the paper: the five storage systems evaluated on EC2
//! plus XtreemFS, behind one [`StorageSystem`] trait.
//!
//! | Module | System | Paper section |
//! |---|---|---|
//! | [`local`] | single-node RAID 0 | §V "local disk" |
//! | [`nfs`] | NFS, dedicated `m1.xlarge`, async | §IV.B |
//! | [`gluster`] | GlusterFS NUFA / distribute | §IV.C |
//! | [`pvfs`] | PVFS 2.6.3, striped, no small-file opts | §IV.D |
//! | [`s3`] | Amazon S3 + caching client | §IV.A |
//! | [`xtreemfs`] | XtreemFS (>2× slower, not fully run) | §IV |
//! | [`p2p`] | direct node-to-node transfers | §VIII (future work) |
//!
//! A storage system is a *planner*: each read/write/stage operation
//! returns an [`OpPlan`] (latencies + fluid-flow legs) that the workflow
//! engine executes against the simulator. See [`op`] for the plan
//! vocabulary and [`factory::build_storage`] for construction by
//! [`StorageKind`].

#![warn(missing_docs)]

pub mod factory;
pub mod gluster;
pub mod local;
pub mod lru;
pub mod nfs;
pub mod op;
pub mod p2p;
pub mod pvfs;
pub mod s3;
pub mod traits;
pub mod xtreemfs;

pub use factory::{build_storage, cluster_spec_for, StorageConfigs};
pub use gluster::{Gluster, GlusterConfig, GlusterMode};
pub use local::{LocalConfig, LocalDisk};
pub use lru::LruBytes;
pub use nfs::{Nfs, NfsConfig, NfsPlacement};
pub use op::{FlowLeg, Note, OpPlan, Stage};
pub use p2p::{DirectTransfer, P2pConfig};
pub use pvfs::{Pvfs, PvfsConfig};
pub use s3::{S3Config, S3};
pub use traits::{
    Constraints, FailoverResponse, FileRef, StorageBilling, StorageKind, StorageOpStats,
    StorageSystem,
};
pub use xtreemfs::{XtreemFs, XtreemFsConfig};
