//! Construction of storage systems by [`StorageKind`].

use crate::gluster::{Gluster, GlusterConfig, GlusterMode};
use crate::local::{LocalConfig, LocalDisk};
use crate::nfs::{Nfs, NfsConfig};
use crate::p2p::{DirectTransfer, P2pConfig};
use crate::pvfs::{Pvfs, PvfsConfig};
use crate::s3::{S3Config, S3};
use crate::traits::{StorageKind, StorageSystem};
use crate::xtreemfs::{XtreemFs, XtreemFsConfig};
use simcore::Sim;
use vcluster::{Cluster, ClusterSpec, InstanceType};

/// Per-system configuration bundle with paper-calibrated defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageConfigs {
    /// Local-disk tunables.
    pub local: Option<LocalConfig>,
    /// NFS tunables.
    pub nfs: Option<NfsConfig>,
    /// GlusterFS tunables (mode is still taken from the kind).
    pub gluster_latencies: Option<GlusterConfig>,
    /// PVFS tunables.
    pub pvfs: Option<PvfsConfig>,
    /// S3 tunables.
    pub s3: Option<S3Config>,
    /// XtreemFS tunables.
    pub xtreemfs: Option<XtreemFsConfig>,
    /// Direct-transfer tunables (§VIII future work).
    pub p2p: Option<P2pConfig>,
}

/// The cluster spec a storage kind needs for `workers` worker nodes,
/// including any dedicated server node (NFS by default runs on an
/// `m1.xlarge`, §IV.B; pass `server_type` to try others, §V.C).
pub fn cluster_spec_for(
    kind: StorageKind,
    workers: u32,
    server_type: Option<InstanceType>,
) -> ClusterSpec {
    match kind {
        StorageKind::Nfs => {
            ClusterSpec::with_server(workers, server_type.unwrap_or(InstanceType::M1Xlarge))
        }
        _ => ClusterSpec::workers_only(workers),
    }
}

/// Build a storage system over a provisioned cluster.
///
/// Panics if the cluster violates the kind's constraints (too few workers,
/// missing server).
pub fn build_storage<W>(
    kind: StorageKind,
    sim: &mut Sim<W>,
    cluster: &Cluster,
    cfgs: &StorageConfigs,
) -> Box<dyn StorageSystem> {
    let mut sys: Box<dyn StorageSystem> = match kind {
        StorageKind::Local => Box::new(LocalDisk::new(cluster, cfgs.local.unwrap_or_default())),
        StorageKind::Nfs => Box::new(Nfs::new(sim, cluster, cfgs.nfs.unwrap_or_default())),
        StorageKind::GlusterNufa => Box::new(Gluster::new(GlusterConfig {
            mode: GlusterMode::Nufa,
            ..cfgs
                .gluster_latencies
                .unwrap_or_else(|| GlusterConfig::new(GlusterMode::Nufa))
        })),
        StorageKind::GlusterDistribute => Box::new(Gluster::new(GlusterConfig {
            mode: GlusterMode::Distribute,
            ..cfgs
                .gluster_latencies
                .unwrap_or_else(|| GlusterConfig::new(GlusterMode::Distribute))
        })),
        StorageKind::Pvfs => Box::new(Pvfs::new(cfgs.pvfs.unwrap_or_default())),
        StorageKind::S3 => Box::new(S3::new(sim, cluster, cfgs.s3.unwrap_or_default())),
        StorageKind::XtreemFs => Box::new(XtreemFs::new(sim, cfgs.xtreemfs.unwrap_or_default())),
        StorageKind::DirectTransfer => {
            Box::new(DirectTransfer::new(cluster, cfgs.p2p.unwrap_or_default()))
        }
    };
    sys.attach_obs(sim.obs().clone());
    let cons = sys.constraints();
    let workers = cluster.workers().len() as u32;
    assert!(
        workers >= cons.min_workers,
        "{} needs at least {} workers, got {workers}",
        sys.name(),
        cons.min_workers
    );
    if let Some(max) = cons.max_workers {
        assert!(
            workers <= max,
            "{} supports at most {max} workers, got {workers}",
            sys.name()
        );
    }
    if cons.needs_server {
        assert!(
            cluster.server().is_some(),
            "{} needs a dedicated server node",
            sys.name()
        );
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        for kind in StorageKind::ALL {
            let mut sim: Sim<()> = Sim::new();
            let workers = 2;
            let spec = cluster_spec_for(kind, workers, None);
            let cluster = Cluster::provision(&mut sim, &spec);
            if kind == StorageKind::Local {
                continue; // max one worker; covered below
            }
            let sys = build_storage(kind, &mut sim, &cluster, &StorageConfigs::default());
            assert!(!sys.name().is_empty());
        }
    }

    #[test]
    fn local_builds_on_one_worker() {
        let mut sim: Sim<()> = Sim::new();
        let cluster = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let sys = build_storage(
            StorageKind::Local,
            &mut sim,
            &cluster,
            &StorageConfigs::default(),
        );
        assert_eq!(sys.name(), "local");
    }

    #[test]
    fn nfs_spec_includes_server() {
        let spec = cluster_spec_for(StorageKind::Nfs, 4, None);
        assert_eq!(spec.storage_server, Some(InstanceType::M1Xlarge));
        assert_eq!(spec.total_instances(), 5);
        let big = cluster_spec_for(StorageKind::Nfs, 4, Some(InstanceType::M24Xlarge));
        assert_eq!(big.storage_server, Some(InstanceType::M24Xlarge));
    }

    #[test]
    #[should_panic(expected = "at least 2 workers")]
    fn gluster_on_one_worker_panics() {
        let mut sim: Sim<()> = Sim::new();
        let cluster = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let _ = build_storage(
            StorageKind::GlusterNufa,
            &mut sim,
            &cluster,
            &StorageConfigs::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at most 1 workers")]
    fn local_on_two_workers_panics() {
        let mut sim: Sim<()> = Sim::new();
        let cluster = Cluster::provision(&mut sim, &ClusterSpec::workers_only(2));
        let _ = build_storage(
            StorageKind::Local,
            &mut sim,
            &cluster,
            &StorageConfigs::default(),
        );
    }
}
