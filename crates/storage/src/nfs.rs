//! NFS on a dedicated server node (§IV.B).
//!
//! The paper's configuration: an `m1.xlarge` server (16 GB RAM — "which
//! facilitates good cache performance"), clients mounting with `async`
//! (calls return before data reaches disk) and `noatime`.
//!
//! Model:
//!
//! * every operation pays an RPC latency;
//! * **reads** hit the server page cache (LRU over the server's memory) —
//!   hits stream from RAM through the server NIC, misses add the server
//!   disk;
//! * **async writes** land in server RAM (client NIC → server NIC) and
//!   flush to disk in the background, paying the first-write penalty there;
//! * when outstanding dirty bytes exceed a fraction of server memory the
//!   server throttles — further writes go synchronously through the disk,
//!   which is what makes NFS fall off a cliff when many clients write at
//!   once (the 2→4 node Broadband regression of §V.C; a 64 GB `m2.4xlarge`
//!   raises the dirty limit, which is why it helps but doesn't fix it).
//!
//! The alternative configuration of §VI (overloading a compute node
//! instead of paying for a dedicated server) is ablation A4.

use crate::lru::LruBytes;
use crate::op::{FlowLeg, Note, OpPlan, Stage};
use crate::traits::{Constraints, FailoverResponse, FileRef, StorageOpStats, StorageSystem};
use simcore::{ResourceId, Sim, SimDuration};
use std::collections::HashSet;
use vcluster::{net_path, Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Where the NFS daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfsPlacement {
    /// A dedicated storage-server node (the paper's main setup).
    DedicatedServer,
    /// Overload the first worker node (§VI's cost-saving alternative).
    OnWorker,
}

/// Tunables for the NFS model.
#[derive(Debug, Clone, Copy)]
pub struct NfsConfig {
    /// Per-operation RPC latency (open + attribute round trips).
    pub rpc_latency: SimDuration,
    /// Mount with `async` (the paper's setting). `false` forces every
    /// write through the server disk.
    pub async_writes: bool,
    /// Fraction of server memory usable as page cache.
    pub cache_fraction: f64,
    /// Fraction of each *client's* memory usable as NFS client page
    /// cache. The workloads are write-once, so client-cached data never
    /// goes stale; only attribute revalidation still hits the server.
    /// With one client this makes NFS behave almost like a RAM disk for
    /// re-read data — the effect behind NFS beating the local disk for
    /// single-node Montage (§V.A).
    pub client_cache_fraction: f64,
    /// Fraction of server memory dirty pages may occupy before writes are
    /// throttled to disk speed (Linux `dirty_ratio` behaviour).
    pub dirty_fraction: f64,
    /// Daemon placement.
    pub placement: NfsPlacement,
    /// Server request-processing capacity in operations/second *per
    /// server core*: with many concurrent clients the nfsd threads
    /// saturate and per-op queueing delay grows — one of the reasons a
    /// central server degrades as the cluster scales (§V). The beefier
    /// `m2.4xlarge` server of §V.C helps exactly because it has more
    /// cores.
    pub ops_per_sec_per_core: f64,
    /// Cross-client operation amplification: with close-to-open
    /// consistency every additional client node re-validates attributes
    /// and lookups for itself, so the server-side operation demand of a
    /// task grows as `1 + amplification × min(workers − 1,
    /// amp_clients_cap)` — the contention saturates once the hot
    /// directory entries are contended by a handful of clients.
    pub op_amplification: f64,
    /// Client count beyond which amplification saturates.
    pub amp_clients_cap: u32,
}

impl Default for NfsConfig {
    fn default() -> Self {
        NfsConfig {
            rpc_latency: SimDuration::from_nanos(1_200_000), // 1.2 ms
            async_writes: true,
            cache_fraction: 0.85,
            client_cache_fraction: 0.5,
            dirty_fraction: 0.35,
            placement: NfsPlacement::DedicatedServer,
            ops_per_sec_per_core: 320.0,
            op_amplification: 1.15,
            amp_clients_cap: 3,
        }
    }
}

/// The NFS storage system.
#[derive(Debug)]
pub struct Nfs {
    cfg: NfsConfig,
    server: NodeId,
    /// nfsd request-processing capacity: every operation pushes one unit
    /// through this resource before its data moves.
    ops: ResourceId,
    cache: LruBytes,
    /// Per-client page caches, indexed like `cluster.nodes()`.
    client_caches: Vec<LruBytes>,
    dirty: u64,
    dirty_limit: u64,
    present: HashSet<FileId>,
    stats: StorageOpStats,
    obs: ObsHandle,
    throttled_writes: u64,
}

impl Nfs {
    /// Build an NFS system over a provisioned cluster. With
    /// [`NfsPlacement::DedicatedServer`] the cluster must have been
    /// provisioned with a server node.
    pub fn new<W>(sim: &mut Sim<W>, cluster: &Cluster, cfg: NfsConfig) -> Self {
        let server = match cfg.placement {
            NfsPlacement::DedicatedServer => cluster
                .server()
                .expect("NFS with DedicatedServer placement needs a server node"),
            NfsPlacement::OnWorker => cluster.workers()[0],
        };
        let mem = cluster.node(server).memory_bytes() as f64;
        let client_caches = cluster
            .nodes()
            .iter()
            .map(|n| LruBytes::new((n.memory_bytes() as f64 * cfg.client_cache_fraction) as u64))
            .collect();
        Nfs {
            cfg,
            server,
            ops: sim.add_resource(
                "nfs.ops",
                cfg.ops_per_sec_per_core * f64::from(cluster.node(server).itype.cores()),
            ),
            cache: LruBytes::new((mem * cfg.cache_fraction) as u64),
            client_caches,
            dirty: 0,
            dirty_limit: (mem * cfg.dirty_fraction) as u64,
            present: HashSet::new(),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
            throttled_writes: 0,
        }
    }

    /// The admission stage every operation passes: one request unit
    /// through the nfsd processing capacity.
    fn admission(&self) -> Stage {
        Stage::lat_leg(self.cfg.rpc_latency, FlowLeg::new(1, vec![self.ops]))
    }

    /// The node running the daemon.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Writes that hit the dirty throttle and went through the disk.
    pub fn throttled_writes(&self) -> u64 {
        self.throttled_writes
    }

    /// Outstanding dirty bytes (not yet flushed).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }
}

impl StorageSystem for Nfs {
    fn name(&self) -> &'static str {
        "nfs"
    }

    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn plan_task_ops(&mut self, cluster: &Cluster, node: NodeId, io_ops: u32) -> OpPlan {
        self.obs.emit(Event::StorageOp {
            op: OpKind::OpStorm,
            node: node.0,
            bytes: 0,
        });
        let extra = (cluster.workers().len() as u32 - 1).min(self.cfg.amp_clients_cap);
        let amplified =
            (f64::from(io_ops) * (1.0 + self.cfg.op_amplification * f64::from(extra))).round();
        OpPlan::one(Stage::lat_leg(
            self.cfg.rpc_latency,
            FlowLeg::new(amplified as u64, vec![self.ops]),
        ))
    }

    fn constraints(&self) -> Constraints {
        Constraints {
            min_workers: 1,
            max_workers: None,
            needs_server: self.cfg.placement == NfsPlacement::DedicatedServer,
        }
    }

    fn prestage(&mut self, _cluster: &Cluster, files: &[FileRef]) {
        // Input data is copied onto the server before the run; recent
        // writes leave it warm in the page cache (as on the real system).
        for (f, size) in files {
            self.present.insert(*f);
            self.cache.insert(*f, *size);
        }
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.contains(&file),
            "read of a file never written: {file:?}"
        );
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        let srv = cluster.node(self.server);
        let client = cluster.node(node);
        // Client page cache: write-once data never goes stale, so a
        // resident copy is served locally after one attribute
        // revalidation round trip.
        if self.client_caches[node.index()].touch(file) {
            self.stats.cache_hits += 1;
            self.obs.emit(Event::CacheHit { node: node.0 });
            return OpPlan::one(self.admission());
        }
        let hit = self.cache.touch(file);
        if hit {
            self.stats.cache_hits += 1;
            self.obs.emit(Event::CacheHit { node: node.0 });
        } else {
            self.stats.cache_misses += 1;
            self.obs.emit(Event::CacheMiss { node: node.0 });
            self.cache.insert(file, size);
        }
        self.client_caches[node.index()].insert(file, size);
        let mut path = Vec::new();
        if !hit {
            path.extend(srv.read_path());
        }
        path.extend(net_path(srv, client));
        let plan = OpPlan::one(self.admission());
        if path.is_empty() {
            // Overloaded-server local read served from RAM.
            plan
        } else {
            plan.then(Stage::leg(FlowLeg::new(size, path)))
        }
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.insert(file),
            "write-once violated for {file:?}"
        );
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        let srv = cluster.node(self.server);
        let client = cluster.node(node);
        // Written data is hot in the server cache either way, and in the
        // writing client's page cache.
        self.cache.insert(file, size);
        self.client_caches[node.index()].insert(file, size);

        let throttled = !self.cfg.async_writes || self.dirty + size > self.dirty_limit;
        let plan = OpPlan::one(self.admission());
        if throttled {
            self.throttled_writes += 1;
            let mut path = net_path(client, srv);
            path.extend(srv.write_path());
            plan.then(Stage::leg(FlowLeg::new(size, path)))
        } else {
            self.dirty += size;
            let fg_path = net_path(client, srv);
            let plan = if fg_path.is_empty() {
                plan
            } else {
                plan.then(Stage::leg(FlowLeg::new(size, fg_path)))
            };
            let flush = Stage::leg(FlowLeg::new(size, srv.write_path()));
            plan.with_background(flush, Some(Note::NfsFlushed { bytes: size }))
        }
    }

    fn on_background_done(&mut self, note: Note) {
        match note {
            Note::NfsFlushed { bytes } => {
                self.dirty = self.dirty.saturating_sub(bytes);
            }
        }
    }

    fn on_node_failed(&mut self, _cluster: &Cluster, node: NodeId) -> FailoverResponse {
        if node == self.server {
            // Server reboot: the file data survives on disk, but the page
            // cache is cold, dirty pages were flushed or dropped by the
            // crash, and every client stalls until the mount recovers.
            self.cache = LruBytes::new(self.cache.capacity());
            self.dirty = 0;
            FailoverResponse::StallAll
        } else {
            // A client crash only loses that client's page cache; the
            // data plane is untouched.
            let cap = self.client_caches[node.index()].capacity();
            self.client_caches[node.index()] = LruBytes::new(cap);
            FailoverResponse::Unaffected
        }
    }

    fn local_bytes(&self, _cluster: &Cluster, node: NodeId, files: &[FileRef]) -> u64 {
        // Data lives on the server; it is "local" only to an overloaded
        // server-worker.
        if node == self.server {
            files
                .iter()
                .filter(|(f, _)| self.present.contains(f))
                .map(|(_, s)| *s)
                .sum()
        } else {
            0
        }
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use vcluster::{ClusterSpec, InstanceType};

    fn setup() -> (Sim<()>, Cluster, Nfs) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(
            &mut sim,
            &ClusterSpec::with_server(2, InstanceType::M1Xlarge),
        );
        let nfs = Nfs::new(&mut sim, &c, NfsConfig::default());
        (sim, c, nfs)
    }

    #[test]
    fn server_is_dedicated_node() {
        let (_, c, nfs) = setup();
        assert_eq!(Some(nfs.server()), c.server());
    }

    #[test]
    fn prestaged_read_is_cache_hit_through_nics() {
        let (_, c, mut nfs) = setup();
        nfs.prestage(&c, &[(FileId(0), 1000)]);
        let plan = nfs.plan_read(&c, c.workers()[0], (FileId(0), 1000));
        assert_eq!(plan.stages.len(), 2, "admission + transfer");
        assert_eq!(plan.stages[0].legs[0].path, vec![nfs.ops]);
        let leg = &plan.stages[1].legs[0];
        let srv = c.node(c.server().unwrap());
        let w0 = c.node(c.workers()[0]);
        assert_eq!(leg.path, vec![srv.nic_out, w0.nic_in], "hit skips the disk");
        assert_eq!(nfs.op_stats().cache_hits, 1);
    }

    #[test]
    fn cold_read_includes_server_disk() {
        let (_, c, mut nfs) = setup();
        // Fill the cache far beyond capacity so file 0 is evicted.
        nfs.prestage(&c, &[(FileId(0), 1000)]);
        let cap = nfs.cache.capacity();
        nfs.prestage(&c, &[(FileId(1), cap)]); // evicts file 0
        let plan = nfs.plan_read(&c, c.workers()[0], (FileId(0), 1000));
        let leg = &plan.stages[1].legs[0];
        let srv = c.node(c.server().unwrap());
        assert_eq!(&leg.path[..2], srv.read_path().as_slice());
        assert_eq!(nfs.op_stats().cache_misses, 1);
    }

    #[test]
    fn async_write_is_nic_only_with_background_flush() {
        let (_, c, mut nfs) = setup();
        let plan = nfs.plan_write(&c, c.workers()[0], (FileId(3), 5000));
        let srv = c.node(c.server().unwrap());
        let w0 = c.node(c.workers()[0]);
        let fg = &plan.stages[1].legs[0];
        assert_eq!(fg.path, vec![w0.nic_out, srv.nic_in]);
        assert_eq!(plan.background.len(), 1);
        let (flush, note) = &plan.background[0];
        assert_eq!(flush.legs[0].path, srv.write_path());
        assert_eq!(*note, Some(Note::NfsFlushed { bytes: 5000 }));
        assert_eq!(nfs.dirty_bytes(), 5000);
    }

    #[test]
    fn flush_note_reduces_dirty() {
        let (_, c, mut nfs) = setup();
        nfs.plan_write(&c, c.workers()[0], (FileId(3), 5000));
        nfs.on_background_done(Note::NfsFlushed { bytes: 5000 });
        assert_eq!(nfs.dirty_bytes(), 0);
    }

    #[test]
    fn dirty_overflow_throttles_to_disk() {
        let (_, c, mut nfs) = setup();
        let limit = nfs.dirty_limit;
        nfs.plan_write(&c, c.workers()[0], (FileId(1), limit)); // fills the budget
        let plan = nfs.plan_write(&c, c.workers()[0], (FileId(2), 1000));
        assert!(plan.background.is_empty(), "throttled write is synchronous");
        let leg = &plan.stages[1].legs[0];
        let srv = c.node(c.server().unwrap());
        assert!(leg.path.contains(&srv.disk_write));
        assert_eq!(nfs.throttled_writes(), 1);
    }

    #[test]
    fn sync_mount_always_goes_to_disk() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(
            &mut sim,
            &ClusterSpec::with_server(1, InstanceType::M1Xlarge),
        );
        let mut nfs = Nfs::new(
            &mut sim,
            &c,
            NfsConfig {
                async_writes: false,
                ..NfsConfig::default()
            },
        );
        let plan = nfs.plan_write(&c, c.workers()[0], (FileId(1), 10));
        assert!(plan.background.is_empty());
        assert_eq!(nfs.throttled_writes(), 1);
    }

    #[test]
    fn overloaded_worker_placement_has_no_server_requirement() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(2));
        let nfs = Nfs::new(
            &mut sim,
            &c,
            NfsConfig {
                placement: NfsPlacement::OnWorker,
                ..NfsConfig::default()
            },
        );
        assert_eq!(nfs.server(), c.workers()[0]);
        assert!(!nfs.constraints().needs_server);
    }

    #[test]
    fn overloaded_local_read_hit_is_latency_only() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(2));
        let mut nfs = Nfs::new(
            &mut sim,
            &c,
            NfsConfig {
                placement: NfsPlacement::OnWorker,
                ..NfsConfig::default()
            },
        );
        nfs.prestage(&c, &[(FileId(0), 100)]);
        let plan = nfs.plan_read(&c, c.workers()[0], (FileId(0), 100));
        // Only the admission stage: the data never leaves server RAM.
        assert_eq!(plan.stages.len(), 1);
        assert!(!plan.stages[0].latency.is_zero());
    }

    #[test]
    fn m2_4xlarge_server_has_higher_dirty_limit() {
        let mut sim: Sim<()> = Sim::new();
        let c1 = Cluster::provision(
            &mut sim,
            &ClusterSpec::with_server(1, InstanceType::M1Xlarge),
        );
        let c2 = Cluster::provision(
            &mut sim,
            &ClusterSpec::with_server(1, InstanceType::M24Xlarge),
        );
        let a = Nfs::new(&mut sim, &c1, NfsConfig::default());
        let b = Nfs::new(&mut sim, &c2, NfsConfig::default());
        assert!(b.dirty_limit > 3 * a.dirty_limit);
        assert!(b.cache.capacity() > 3 * a.cache.capacity());
    }

    #[test]
    fn server_failure_stalls_and_chills_the_cache() {
        let (_, c, mut nfs) = setup();
        nfs.prestage(&c, &[(FileId(0), 1000)]);
        nfs.plan_write(&c, c.workers()[0], (FileId(1), 5000));
        assert!(nfs.dirty_bytes() > 0);
        let resp = nfs.on_node_failed(&c, nfs.server());
        assert_eq!(resp, FailoverResponse::StallAll);
        assert_eq!(nfs.dirty_bytes(), 0, "dirty pages gone with the reboot");
        // The next read of the prestaged file misses the (now cold)
        // server cache and goes to disk.
        let plan = nfs.plan_read(&c, c.workers()[1], (FileId(0), 1000));
        assert_eq!(nfs.op_stats().cache_misses, 1);
        assert_eq!(plan.stages.len(), 2);
    }

    #[test]
    fn client_failure_is_harmless_but_cools_its_cache() {
        let (_, c, mut nfs) = setup();
        let w0 = c.workers()[0];
        nfs.plan_write(&c, w0, (FileId(0), 1000));
        let resp = nfs.on_node_failed(&c, w0);
        assert_eq!(resp, FailoverResponse::Unaffected);
        // The re-read can no longer be served from the client cache, but
        // the server still has the file (hot, even).
        let plan = nfs.plan_read(&c, w0, (FileId(0), 1000));
        assert_eq!(plan.stages.len(), 2, "admission + server transfer");
    }

    #[test]
    fn nothing_goes_missing_on_nfs() {
        let (_, c, mut nfs) = setup();
        nfs.prestage(&c, &[(FileId(0), 1000)]);
        nfs.on_node_failed(&c, nfs.server());
        assert!(nfs.missing_files(&[(FileId(0), 1000)]).is_empty());
    }

    #[test]
    fn local_bytes_only_on_server() {
        let (_, c, mut nfs) = setup();
        nfs.prestage(&c, &[(FileId(0), 700)]);
        assert_eq!(nfs.local_bytes(&c, c.workers()[0], &[(FileId(0), 700)]), 0);
        assert_eq!(nfs.local_bytes(&c, nfs.server(), &[(FileId(0), 700)]), 700);
    }
}
