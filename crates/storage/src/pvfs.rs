//! PVFS striped across the worker nodes (§IV.D).
//!
//! The paper used PVFS 2.6.3 (the 2.8 series crashed on EC2), with file
//! data striped over all nodes and metadata distributed — and notes that
//! this old version lacks the small-file optimizations of later releases,
//! which is why Montage and Broadband (thousands of ~MB files) performed
//! poorly on it.
//!
//! Model: every operation pays a metadata latency plus per-stripe-chunk
//! round trips, and a small file is further limited by a low per-stream
//! throughput (no client-side caching, synchronous strided I/O). Data
//! moves in parallel legs, one per I/O server, so large transfers do enjoy
//! striping bandwidth. The `optimized_small_files` flag models the later
//! releases as an ablation.

use crate::op::{FlowLeg, OpPlan, Stage};
use crate::traits::{Constraints, FailoverResponse, FileRef, StorageOpStats, StorageSystem};
use simcore::SimDuration;
use std::collections::HashSet;
use vcluster::{Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Tunables for the PVFS model.
#[derive(Debug, Clone, Copy)]
pub struct PvfsConfig {
    /// Per-operation metadata latency (create/lookup on the distributed
    /// metadata servers).
    pub meta_latency: SimDuration,
    /// Stripe size (the PVFS default, 64 KiB).
    pub stripe_size: u64,
    /// Per-stripe-chunk round-trip overhead for synchronous strided I/O.
    pub chunk_rtt: SimDuration,
    /// Files up to this size behave as "small" (§IV.D's problem case).
    pub small_file_threshold: u64,
    /// Effective per-stream throughput for small files, bytes/s.
    pub small_stream_bps: f64,
    /// Effective per-stream throughput for large files, bytes/s.
    pub large_stream_bps: f64,
    /// Model the small-file optimizations of PVFS ≥ 2.8 (ablation).
    pub optimized_small_files: bool,
}

impl Default for PvfsConfig {
    fn default() -> Self {
        PvfsConfig {
            meta_latency: SimDuration::from_nanos(6_000_000), // 6 ms
            stripe_size: 64 * 1024,
            chunk_rtt: SimDuration::from_nanos(250_000), // 0.25 ms
            small_file_threshold: 10 * 1024 * 1024,
            small_stream_bps: 8.0e6,
            large_stream_bps: 38.0e6,
            optimized_small_files: false,
        }
    }
}

impl PvfsConfig {
    /// The configuration modelling PVFS ≥ 2.8 small-file optimizations.
    pub fn optimized() -> Self {
        PvfsConfig {
            meta_latency: SimDuration::from_nanos(2_000_000),
            chunk_rtt: SimDuration::from_nanos(50_000),
            small_stream_bps: 40.0e6,
            optimized_small_files: true,
            ..PvfsConfig::default()
        }
    }
}

/// The PVFS storage system.
#[derive(Debug)]
pub struct Pvfs {
    cfg: PvfsConfig,
    present: HashSet<FileId>,
    stats: StorageOpStats,
    obs: ObsHandle,
}

impl Pvfs {
    /// Build a PVFS volume striped over the cluster's workers.
    pub fn new(cfg: PvfsConfig) -> Self {
        Pvfs {
            cfg,
            present: HashSet::new(),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Fixed latency of one operation on a file of `size` bytes.
    fn op_latency(&self, size: u64) -> SimDuration {
        let chunks = size.div_ceil(self.cfg.stripe_size).max(1);
        // Strided round trips pipeline poorly in the old release; cap the
        // counted chunks so huge files aren't latency-dominated.
        let counted = chunks.min(64);
        let mut d = self.cfg.meta_latency;
        for _ in 0..counted {
            d += self.cfg.chunk_rtt;
        }
        d
    }

    /// Per-stream throughput limit for a file of `size` bytes.
    fn stream_cap(&self, size: u64) -> f64 {
        if size <= self.cfg.small_file_threshold {
            self.cfg.small_stream_bps
        } else {
            self.cfg.large_stream_bps
        }
    }

    /// Parallel striped legs touching every I/O server.
    fn striped_legs(
        &self,
        cluster: &Cluster,
        client: NodeId,
        size: u64,
        write: bool,
    ) -> Vec<FlowLeg> {
        let workers = cluster.workers();
        let k = workers.len() as u64;
        let per = size / k;
        let rem = size % k;
        let cap = self.stream_cap(size) / k as f64;
        let cnode = cluster.node(client);
        workers
            .iter()
            .enumerate()
            .filter_map(|(i, &srv)| {
                let bytes = per + u64::from((i as u64) < rem);
                if bytes == 0 {
                    return None;
                }
                let snode = cluster.node(srv);
                let mut path;
                if write {
                    path = if srv == client {
                        Vec::new()
                    } else {
                        vec![cnode.nic_out, snode.nic_in]
                    };
                    path.extend(snode.write_path());
                } else {
                    path = snode.read_path();
                    if srv != client {
                        path.extend([snode.nic_out, cnode.nic_in]);
                    }
                }
                Some(FlowLeg::new(bytes, path).with_cap(cap))
            })
            .collect()
    }
}

impl StorageSystem for Pvfs {
    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn name(&self) -> &'static str {
        if self.cfg.optimized_small_files {
            "pvfs-2.8"
        } else {
            "pvfs"
        }
    }

    fn constraints(&self) -> Constraints {
        Constraints {
            min_workers: 2,
            max_workers: None,
            needs_server: false,
        }
    }

    fn prestage(&mut self, _cluster: &Cluster, files: &[FileRef]) {
        for (f, _) in files {
            self.present.insert(*f);
        }
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.contains(&file),
            "read of a file never written: {file:?}"
        );
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        OpPlan::one(Stage {
            latency: self.op_latency(size),
            legs: self.striped_legs(cluster, node, size, false),
        })
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.insert(file),
            "write-once violated for {file:?}"
        );
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        OpPlan::one(Stage {
            latency: self.op_latency(size),
            legs: self.striped_legs(cluster, node, size, true),
        })
    }

    fn on_node_failed(&mut self, cluster: &Cluster, node: NodeId) -> FailoverResponse {
        // Every file is striped over every worker and PVFS (without
        // replication) cannot tolerate losing an I/O server: a stripe of
        // each file lived on the dead node, so everything is lost.
        if !cluster.workers().contains(&node) {
            return FailoverResponse::Unaffected;
        }
        let mut lost: Vec<FileId> = self.present.drain().collect();
        lost.sort_unstable_by_key(|f| f.0);
        FailoverResponse::LostFiles(lost)
    }

    fn missing_files(&self, files: &[FileRef]) -> Vec<FileId> {
        files
            .iter()
            .filter(|(f, _)| !self.present.contains(f))
            .map(|(f, _)| *f)
            .collect()
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use vcluster::ClusterSpec;

    fn cluster(n: u32) -> (Sim<()>, Cluster) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(n));
        (sim, c)
    }

    #[test]
    fn read_stripes_across_all_workers() {
        let (_, c) = cluster(4);
        let mut p = Pvfs::new(PvfsConfig::default());
        p.prestage(&c, &[(FileId(0), 1_000_000)]);
        let plan = p.plan_read(&c, c.workers()[0], (FileId(0), 1_000_000));
        assert_eq!(plan.stages[0].legs.len(), 4);
        let total: u64 = plan.stages[0].legs.iter().map(|l| l.bytes).sum();
        assert_eq!(total, 1_000_000);
        // The self-leg reads the local disk without NICs.
        assert_eq!(plan.stages[0].legs[0].path.len(), 2);
        assert_eq!(plan.stages[0].legs[1].path.len(), 4);
    }

    #[test]
    fn small_files_pay_heavy_latency_and_low_stream_cap() {
        let (_, c) = cluster(2);
        let mut p = Pvfs::new(PvfsConfig::default());
        let size = 1_000_000u64; // ~1 MB: 16 chunks
        let plan = p.plan_write(&c, c.workers()[0], (FileId(0), size));
        let lat = plan.stages[0].latency.as_secs_f64();
        assert!(lat > 0.008, "expected >8 ms, got {lat}");
        for leg in &plan.stages[0].legs {
            assert_eq!(leg.rate_cap, Some(8.0e6 / 2.0));
        }
    }

    #[test]
    fn large_files_get_striping_bandwidth() {
        let (_, c) = cluster(4);
        let mut p = Pvfs::new(PvfsConfig::default());
        let size = 100_000_000u64; // 100 MB
        let plan = p.plan_write(&c, c.workers()[0], (FileId(0), size));
        for leg in &plan.stages[0].legs {
            assert_eq!(leg.rate_cap, Some(38.0e6 / 4.0));
        }
        // Chunk-latency accounting is capped.
        assert!(plan.stages[0].latency.as_secs_f64() < 0.03);
    }

    #[test]
    fn optimized_config_is_faster() {
        let (_, c) = cluster(2);
        let mut old = Pvfs::new(PvfsConfig::default());
        let mut newer = Pvfs::new(PvfsConfig::optimized());
        let size = 1_000_000u64;
        let p_old = old.plan_write(&c, c.workers()[0], (FileId(0), size));
        let p_new = newer.plan_write(&c, c.workers()[0], (FileId(0), size));
        assert!(p_new.stages[0].latency < p_old.stages[0].latency);
        assert!(
            p_new.stages[0].legs[0].rate_cap.unwrap() > p_old.stages[0].legs[0].rate_cap.unwrap()
        );
        assert_eq!(newer.name(), "pvfs-2.8");
    }

    #[test]
    fn tiny_file_has_single_leg() {
        let (_, c) = cluster(4);
        let mut p = Pvfs::new(PvfsConfig::default());
        let plan = p.plan_write(&c, c.workers()[0], (FileId(0), 3));
        // 3 bytes over 4 workers: only 3 non-empty legs.
        assert_eq!(plan.stages[0].legs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_write_panics() {
        let (_, c) = cluster(2);
        let mut p = Pvfs::new(PvfsConfig::default());
        p.plan_write(&c, c.workers()[0], (FileId(0), 10));
        p.plan_write(&c, c.workers()[0], (FileId(0), 10));
    }

    #[test]
    fn io_server_loss_takes_every_stripe() {
        let (_, c) = cluster(2);
        let mut p = Pvfs::new(PvfsConfig::default());
        p.plan_write(&c, c.workers()[0], (FileId(0), 1000));
        p.plan_write(&c, c.workers()[1], (FileId(1), 1000));
        let resp = p.on_node_failed(&c, c.workers()[1]);
        assert_eq!(
            resp,
            FailoverResponse::LostFiles(vec![FileId(0), FileId(1)])
        );
        assert_eq!(
            p.missing_files(&[(FileId(0), 1000), (FileId(1), 1000)]),
            vec![FileId(0), FileId(1)]
        );
        // Lost files may be re-created.
        p.plan_write(&c, c.workers()[0], (FileId(0), 1000));
    }

    #[test]
    fn needs_two_workers() {
        assert_eq!(
            Pvfs::new(PvfsConfig::default()).constraints().min_workers,
            2
        );
    }
}
