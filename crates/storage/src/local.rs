//! The local-disk baseline: all data on one node's RAID 0 array.
//!
//! The paper reports "Local" as a single point in every figure — a single
//! `c1.xlarge` with tasks reading and writing the local ephemeral RAID
//! directly. Writes of fresh data pay the first-write penalty (§III.C).

use crate::lru::LruBytes;
use crate::op::{OpPlan, Stage};
use crate::traits::{Constraints, FileRef, StorageOpStats, StorageSystem};
use simcore::SimDuration;
use std::collections::HashSet;
use vcluster::{Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Tunables for the local file system.
#[derive(Debug, Clone, Copy)]
pub struct LocalConfig {
    /// Per-operation open/close overhead.
    pub open_latency: SimDuration,
    /// Fraction of node memory acting as page cache: recently written or
    /// read files are served from RAM. Write-once data never goes stale.
    pub page_cache_fraction: f64,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            open_latency: SimDuration::from_nanos(200_000), // 0.2 ms
            page_cache_fraction: 0.5,
        }
    }
}

/// Local-disk storage (single worker only).
#[derive(Debug)]
pub struct LocalDisk {
    cfg: LocalConfig,
    present: HashSet<FileId>,
    page_cache: LruBytes,
    stats: StorageOpStats,
    obs: ObsHandle,
}

impl LocalDisk {
    /// A local-disk system over the given cluster's single worker.
    pub fn new(cluster: &Cluster, cfg: LocalConfig) -> Self {
        let mem = cluster.node(cluster.workers()[0]).memory_bytes() as f64;
        LocalDisk {
            cfg,
            present: HashSet::new(),
            page_cache: LruBytes::new((mem * cfg.page_cache_fraction) as u64),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
        }
    }
}

impl StorageSystem for LocalDisk {
    fn name(&self) -> &'static str {
        "local"
    }

    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn constraints(&self) -> Constraints {
        Constraints {
            min_workers: 1,
            max_workers: Some(1),
            needs_server: false,
        }
    }

    fn prestage(&mut self, _cluster: &Cluster, files: &[FileRef]) {
        for (f, _) in files {
            self.present.insert(*f);
        }
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.contains(&file),
            "read of a file never written: {file:?}"
        );
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        if self.page_cache.touch(file) {
            self.stats.cache_hits += 1;
            self.obs.emit(Event::CacheHit { node: node.0 });
            return OpPlan::one(Stage::latency(self.cfg.open_latency));
        }
        self.stats.cache_misses += 1;
        self.obs.emit(Event::CacheMiss { node: node.0 });
        self.page_cache.insert(file, size);
        let n = cluster.node(node);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            crate::op::FlowLeg {
                bytes: size,
                path: n.local_read(size).path,
                rate_cap: None,
            },
        ))
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.insert(file),
            "write-once violated for {file:?}"
        );
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        self.page_cache.insert(file, size);
        let n = cluster.node(node);
        let spec = n.local_write(size);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            crate::op::FlowLeg {
                bytes: size,
                path: spec.path,
                rate_cap: spec.rate_cap,
            },
        ))
    }

    fn local_bytes(&self, _cluster: &Cluster, _node: NodeId, files: &[FileRef]) -> u64 {
        files
            .iter()
            .filter(|(f, _)| self.present.contains(f))
            .map(|(_, s)| *s)
            .sum()
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use vcluster::ClusterSpec;

    fn setup() -> (Sim<()>, Cluster, LocalDisk) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let local = LocalDisk::new(&c, LocalConfig::default());
        (sim, c, local)
    }

    #[test]
    fn read_uses_disk_read_resource() {
        let (_, c, mut s) = setup();
        s.prestage(&c, &[(FileId(0), 1000)]);
        let plan = s.plan_read(&c, c.workers()[0], (FileId(0), 1000));
        assert_eq!(plan.stages.len(), 1);
        let leg = &plan.stages[0].legs[0];
        assert_eq!(leg.bytes, 1000);
        assert_eq!(leg.path, c.node(c.workers()[0]).read_path());
        assert!(leg.rate_cap.is_none());
    }

    #[test]
    fn write_pays_first_write_penalty() {
        let (_, c, mut s) = setup();
        let plan = s.plan_write(&c, c.workers()[0], (FileId(1), 1000));
        let leg = &plan.stages[0].legs[0];
        let n = c.node(c.workers()[0]);
        assert_eq!(leg.path, n.write_path());
        assert_eq!(leg.path.len(), 3, "spindle + write + penalty resource");
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_write_panics() {
        let (_, c, mut s) = setup();
        s.plan_write(&c, c.workers()[0], (FileId(1), 10));
        s.plan_write(&c, c.workers()[0], (FileId(1), 10));
    }

    #[test]
    #[should_panic(expected = "never written")]
    fn read_before_write_panics() {
        let (_, c, mut s) = setup();
        s.plan_read(&c, c.workers()[0], (FileId(7), 10));
    }

    #[test]
    fn stats_and_local_bytes() {
        let (_, c, mut s) = setup();
        let w = c.workers()[0];
        s.prestage(&c, &[(FileId(0), 500)]);
        s.plan_read(&c, w, (FileId(0), 500));
        s.plan_write(&c, w, (FileId(1), 300));
        let st = s.op_stats();
        assert_eq!((st.reads, st.writes), (1, 1));
        assert_eq!((st.bytes_read, st.bytes_written), (500, 300));
        assert_eq!(
            s.local_bytes(&c, w, &[(FileId(0), 500), (FileId(1), 300), (FileId(2), 9)]),
            800
        );
    }

    #[test]
    fn node_failure_leaves_local_data_intact() {
        // The fault model treats a local-disk "failure" as a service
        // restart: the RAID contents survive, so the default
        // (Unaffected, nothing missing) applies.
        use crate::traits::FailoverResponse;
        let (_, c, mut s) = setup();
        s.plan_write(&c, c.workers()[0], (FileId(0), 1000));
        assert_eq!(
            s.on_node_failed(&c, c.workers()[0]),
            FailoverResponse::Unaffected
        );
        assert!(s.missing_files(&[(FileId(0), 1000)]).is_empty());
    }

    #[test]
    fn constraints_limit_to_one_worker() {
        let (_, _, s) = setup();
        assert_eq!(s.constraints().max_workers, Some(1));
    }

    #[test]
    fn rereads_hit_the_page_cache() {
        let (_, c, mut s) = setup();
        let w = c.workers()[0];
        s.plan_write(&c, w, (FileId(0), 1000));
        let plan = s.plan_read(&c, w, (FileId(0), 1000));
        assert!(plan.stages[0].legs.is_empty(), "warm read served from RAM");
        assert_eq!(s.op_stats().cache_hits, 1);
    }

    #[test]
    fn cold_reads_go_to_disk_and_warm_the_cache() {
        let (_, c, mut s) = setup();
        let w = c.workers()[0];
        s.prestage(&c, &[(FileId(0), 1000)]);
        let cold = s.plan_read(&c, w, (FileId(0), 1000));
        assert_eq!(cold.stages[0].legs.len(), 1);
        let warm = s.plan_read(&c, w, (FileId(0), 1000));
        assert!(warm.stages[0].legs.is_empty());
    }
}
