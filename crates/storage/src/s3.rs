//! Amazon S3 with the caching workflow client of §IV.A.
//!
//! S3 has no POSIX interface, so the workflow management system wraps every
//! job with GET operations (copy inputs from S3 to the local disk) and PUT
//! operations (copy outputs back). Consequently every file is written twice
//! (program → disk, disk → S3) and read twice (S3 → disk, disk → program) —
//! unless the per-node whole-file cache added by the authors suppresses the
//! transfer: each file travels from S3 to a given node at most once, and
//! outputs produced on a node are kept for future jobs there. Caching is
//! sound because the workloads are strictly write-once.
//!
//! The model charges a per-request overhead and a per-stream throughput
//! cap (2010-era S3), but gives the backend a large aggregate capacity —
//! S3 scales far beyond a single NFS server, which is exactly why it wins
//! on Broadband's heavily reused inputs (§V.C) while losing on Montage's
//! ~29,000 small files (§V.A).

use crate::lru::LruBytes;
use crate::op::{FlowLeg, OpPlan, Stage};
use crate::traits::{
    Constraints, FailoverResponse, FileRef, StorageBilling, StorageOpStats, StorageSystem,
};
use simcore::{ResourceId, Sim, SimDuration};
use std::collections::{HashMap, HashSet};
use vcluster::{Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Tunables for the S3 model.
#[derive(Debug, Clone, Copy)]
pub struct S3Config {
    /// Request overhead of a GET (connection + first byte).
    pub get_latency: SimDuration,
    /// Request overhead of a PUT.
    pub put_latency: SimDuration,
    /// Per-stream throughput, bytes/s (a single 2010 S3 connection).
    pub stream_bps: f64,
    /// Aggregate backend capacity per direction, bytes/s. Large: S3
    /// scales horizontally.
    pub backend_bps: f64,
    /// Enable the whole-file client cache (ablation A2 turns it off).
    pub client_cache: bool,
    /// Local open latency for disk reads/writes by tasks.
    pub open_latency: SimDuration,
    /// Fraction of node memory acting as OS page cache for the local
    /// copies (staged files a task reads right away are still in RAM).
    pub page_cache_fraction: f64,
}

impl Default for S3Config {
    fn default() -> Self {
        S3Config {
            get_latency: SimDuration::from_nanos(55_000_000), // 55 ms
            put_latency: SimDuration::from_nanos(70_000_000), // 70 ms
            stream_bps: 76.0e6,
            backend_bps: 5.0e9,
            client_cache: true,
            open_latency: SimDuration::from_nanos(200_000),
            page_cache_fraction: 0.5,
        }
    }
}

/// The S3 storage system (object store + caching client).
#[derive(Debug)]
pub struct S3 {
    cfg: S3Config,
    /// Backend ingress (PUTs traverse this).
    backend_in: ResourceId,
    /// Backend egress (GETs traverse this).
    backend_out: ResourceId,
    /// Objects currently in S3.
    objects: HashMap<FileId, u64>,
    /// Per-node whole-file cache (files resident on the node's local disk).
    node_cache: HashMap<NodeId, HashSet<FileId>>,
    /// Per-node OS page caches over the local copies.
    page_caches: Vec<LruBytes>,
    stats: StorageOpStats,
    obs: ObsHandle,
    gets: u64,
    puts: u64,
    stored_bytes: u64,
    peak_bytes: u64,
}

impl S3 {
    /// Build the S3 service, registering its backend resources.
    pub fn new<W>(sim: &mut Sim<W>, cluster: &Cluster, cfg: S3Config) -> Self {
        let page_caches = cluster
            .nodes()
            .iter()
            .map(|n| LruBytes::new((n.memory_bytes() as f64 * cfg.page_cache_fraction) as u64))
            .collect();
        S3 {
            cfg,
            backend_in: sim.add_resource("s3.in", cfg.backend_bps),
            backend_out: sim.add_resource("s3.out", cfg.backend_bps),
            objects: HashMap::new(),
            node_cache: HashMap::new(),
            page_caches,
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
            gets: 0,
            puts: 0,
            stored_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn cache_insert(&mut self, node: NodeId, file: FileId) {
        if self.cfg.client_cache {
            self.node_cache.entry(node).or_default().insert(file);
        }
    }

    fn cached(&self, node: NodeId, file: FileId) -> bool {
        self.cfg.client_cache
            && self
                .node_cache
                .get(&node)
                .is_some_and(|s| s.contains(&file))
    }

    /// (gets, puts) request counters.
    pub fn request_counts(&self) -> (u64, u64) {
        (self.gets, self.puts)
    }
}

impl StorageSystem for S3 {
    fn name(&self) -> &'static str {
        "s3"
    }

    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn constraints(&self) -> Constraints {
        Constraints::default()
    }

    fn prestage(&mut self, _cluster: &Cluster, files: &[FileRef]) {
        for (f, size) in files {
            self.objects.insert(*f, *size);
            self.stored_bytes += size;
        }
        self.peak_bytes = self.peak_bytes.max(self.stored_bytes);
    }

    fn plan_stage_in(&mut self, cluster: &Cluster, node: NodeId, inputs: &[FileRef]) -> OpPlan {
        let n = cluster.node(node);
        let mut plan = OpPlan::empty();
        for &(file, size) in inputs {
            if self.cached(node, file) {
                self.stats.cache_hits += 1;
                self.obs.emit(Event::CacheHit { node: node.0 });
                continue;
            }
            assert!(
                self.objects.contains_key(&file),
                "GET of an object not in S3: {file:?}"
            );
            self.stats.cache_misses += 1;
            self.obs.emit(Event::CacheMiss { node: node.0 });
            self.obs.emit(Event::StorageOp {
                op: OpKind::StageIn,
                node: node.0,
                bytes: size,
            });
            self.gets += 1;
            // Fetch over the network, then write to the local disk: the
            // "each file must be written twice" cost of §IV.A.
            plan = plan
                .then(Stage::lat_leg(
                    self.cfg.get_latency,
                    FlowLeg::new(size, vec![self.backend_out, n.nic_in])
                        .with_cap(self.cfg.stream_bps),
                ))
                .then(Stage::leg(FlowLeg::new(size, n.write_path())));
            self.cache_insert(node, file);
            self.page_caches[node.index()].insert(file, size);
        }
        plan
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        // Tasks read staged copies from the local disk.
        debug_assert!(
            self.cached(node, file) || !self.cfg.client_cache,
            "task read of a file that was never staged to {node:?}: {file:?}"
        );
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        if self.page_caches[node.index()].touch(file) {
            return OpPlan::one(Stage::latency(self.cfg.open_latency));
        }
        self.page_caches[node.index()].insert(file, size);
        let n = cluster.node(node);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            FlowLeg::new(size, n.read_path()),
        ))
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        let n = cluster.node(node);
        // Program writes land on the local disk; the PUT happens at
        // stage-out. The local copy doubles as a cache entry and is hot
        // in the page cache.
        self.cache_insert(node, file);
        self.page_caches[node.index()].insert(file, size);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            FlowLeg::new(size, n.write_path()),
        ))
    }

    fn plan_stage_out(&mut self, cluster: &Cluster, node: NodeId, outputs: &[FileRef]) -> OpPlan {
        let n = cluster.node(node);
        let mut plan = OpPlan::empty();
        for &(file, size) in outputs {
            let prev = self.objects.insert(file, size);
            assert!(prev.is_none(), "write-once violated for S3 object {file:?}");
            self.stored_bytes += size;
            self.obs.emit(Event::StorageOp {
                op: OpKind::StageOut,
                node: node.0,
                bytes: size,
            });
            self.puts += 1;
            // Just-written outputs are usually still in the page cache;
            // cold ones must be read back from disk first.
            if !self.page_caches[node.index()].touch(file) {
                plan = plan.then(Stage::leg(FlowLeg::new(size, n.read_path())));
            }
            plan = plan.then(Stage::lat_leg(
                self.cfg.put_latency,
                FlowLeg::new(size, vec![n.nic_out, self.backend_in]).with_cap(self.cfg.stream_bps),
            ));
        }
        self.peak_bytes = self.peak_bytes.max(self.stored_bytes);
        plan
    }

    fn on_node_failed(&mut self, _cluster: &Cluster, node: NodeId) -> FailoverResponse {
        // Objects live off-cluster; a node failure only loses that node's
        // local whole-file cache and page cache. Its replacement starts
        // cold and re-GETs what it needs.
        self.node_cache.remove(&node);
        let cap = self.page_caches[node.index()].capacity();
        self.page_caches[node.index()] = LruBytes::new(cap);
        FailoverResponse::Unaffected
    }

    fn local_bytes(&self, _cluster: &Cluster, node: NodeId, files: &[FileRef]) -> u64 {
        files
            .iter()
            .filter(|(f, _)| self.cached(node, *f))
            .map(|(_, s)| *s)
            .sum()
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }

    fn billing(&self) -> StorageBilling {
        StorageBilling {
            s3_puts: self.puts,
            s3_gets: self.gets,
            s3_peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::ClusterSpec;

    fn setup(n: u32) -> (Sim<()>, Cluster, S3) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(n));
        let s3 = S3::new(&mut sim, &c, S3Config::default());
        (sim, c, s3)
    }

    #[test]
    fn stage_in_fetches_then_writes_disk() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        let plan = s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        assert_eq!(plan.stages.len(), 2);
        let fetch = &plan.stages[0].legs[0];
        assert_eq!(fetch.path, vec![s3.backend_out, c.node(w).nic_in]);
        assert_eq!(fetch.rate_cap, Some(S3Config::default().stream_bps));
        let spill = &plan.stages[1].legs[0];
        assert_eq!(spill.path, c.node(w).write_path());
        assert_eq!(s3.request_counts(), (1, 0));
    }

    #[test]
    fn node_failure_only_cools_the_cache() {
        let (_, c, mut s3) = setup(2);
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        assert_eq!(s3.request_counts(), (1, 0));
        assert_eq!(s3.on_node_failed(&c, w), FailoverResponse::Unaffected);
        assert!(s3.missing_files(&[(FileId(0), 1000)]).is_empty());
        // The replacement node has to GET the file again.
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        assert_eq!(s3.request_counts(), (2, 0));
    }

    #[test]
    fn cached_file_is_not_refetched() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        let plan = s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        assert!(plan.is_empty(), "second stage-in must hit the cache");
        assert_eq!(s3.request_counts(), (1, 0));
        assert_eq!(s3.op_stats().cache_hits, 1);
    }

    #[test]
    fn each_node_fetches_once() {
        let (_, c, mut s3) = setup(2);
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, c.workers()[0], &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, c.workers()[1], &[(FileId(0), 1000)]);
        assert_eq!(s3.request_counts(), (2, 0), "one GET per node");
    }

    #[test]
    fn outputs_are_cached_for_reuse_and_put_once() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.plan_write(&c, w, (FileId(5), 2000));
        let out_plan = s3.plan_stage_out(&c, w, &[(FileId(5), 2000)]);
        assert_eq!(out_plan.stages.len(), 1, "warm output skips the disk read");
        assert_eq!(s3.request_counts(), (0, 1));
        // A later job on this node reuses the local copy: no GET.
        let plan = s3.plan_stage_in(&c, w, &[(FileId(5), 2000)]);
        assert!(plan.is_empty());
    }

    #[test]
    fn cache_disabled_refetches_every_time() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let mut s3 = S3::new(
            &mut sim,
            &c,
            S3Config {
                client_cache: false,
                ..S3Config::default()
            },
        );
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        assert_eq!(s3.request_counts(), (2, 0));
    }

    #[test]
    fn billing_tracks_requests_and_peak_bytes() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        s3.plan_write(&c, w, (FileId(1), 500));
        s3.plan_stage_out(&c, w, &[(FileId(1), 500)]);
        let b = s3.billing();
        assert_eq!(b.s3_gets, 1);
        assert_eq!(b.s3_puts, 1);
        assert_eq!(b.s3_peak_bytes, 1500);
    }

    #[test]
    fn task_reads_use_local_disk_or_page_cache_only() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w, &[(FileId(0), 1000)]);
        // Just staged -> still in the page cache: latency-only read.
        let warm = s3.plan_read(&c, w, (FileId(0), 1000));
        assert!(warm.stages[0].legs.is_empty());
        // Evict it by pushing huge files through the page cache.
        s3.page_caches[w.index()].insert(FileId(98), 2 << 30);
        s3.page_caches[w.index()].insert(FileId(99), 2 << 30);
        let cold = s3.plan_read(&c, w, (FileId(0), 1000));
        assert_eq!(cold.stages[0].legs[0].path, c.node(w).read_path());
    }

    #[test]
    fn local_bytes_counts_cached_files() {
        let (_, c, mut s3) = setup(2);
        let w0 = c.workers()[0];
        s3.prestage(&c, &[(FileId(0), 1000)]);
        s3.plan_stage_in(&c, w0, &[(FileId(0), 1000)]);
        assert_eq!(s3.local_bytes(&c, w0, &[(FileId(0), 1000)]), 1000);
        assert_eq!(s3.local_bytes(&c, c.workers()[1], &[(FileId(0), 1000)]), 0);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_put_panics() {
        let (_, c, mut s3) = setup(1);
        let w = c.workers()[0];
        s3.plan_write(&c, w, (FileId(1), 10));
        s3.plan_stage_out(&c, w, &[(FileId(1), 10)]);
        s3.plan_stage_out(&c, w, &[(FileId(1), 10)]);
    }
}
