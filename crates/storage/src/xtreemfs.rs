//! XtreemFS, a file system designed for wide-area deployments (§IV).
//!
//! The paper tried it, found workflows took more than twice as long as on
//! any other system, and terminated the experiments without completing
//! them. We model its WAN-oriented object storage: every operation crosses
//! a metadata/OSD service with wide-area-grade latencies and a modest
//! shared service capacity — enough to reproduce the ">2× slower"
//! observation (experiment E8), not a calibrated model of the system.

use crate::op::{FlowLeg, OpPlan, Stage};
use crate::traits::{Constraints, FileRef, StorageOpStats, StorageSystem};
use simcore::{ResourceId, Sim, SimDuration};
use std::collections::HashSet;
use vcluster::{Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Tunables for the XtreemFS model.
#[derive(Debug, Clone, Copy)]
pub struct XtreemFsConfig {
    /// Per-operation latency (MRC metadata + OSD round trips over a
    /// WAN-tuned stack).
    pub op_latency: SimDuration,
    /// Aggregate OSD service bandwidth per direction, bytes/s.
    pub service_bps: f64,
    /// Per-stream throughput, bytes/s.
    pub stream_bps: f64,
}

impl Default for XtreemFsConfig {
    fn default() -> Self {
        XtreemFsConfig {
            op_latency: SimDuration::from_nanos(160_000_000), // 160 ms
            service_bps: 10.0e6,
            stream_bps: 6.0e6,
        }
    }
}

/// The XtreemFS storage system.
#[derive(Debug)]
pub struct XtreemFs {
    cfg: XtreemFsConfig,
    service_in: ResourceId,
    service_out: ResourceId,
    present: HashSet<FileId>,
    stats: StorageOpStats,
    obs: ObsHandle,
}

impl XtreemFs {
    /// Build the service, registering its shared resources.
    pub fn new<W>(sim: &mut Sim<W>, cfg: XtreemFsConfig) -> Self {
        XtreemFs {
            cfg,
            service_in: sim.add_resource("xtreemfs.in", cfg.service_bps),
            service_out: sim.add_resource("xtreemfs.out", cfg.service_bps),
            present: HashSet::new(),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
        }
    }
}

impl StorageSystem for XtreemFs {
    fn name(&self) -> &'static str {
        "xtreemfs"
    }

    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn constraints(&self) -> Constraints {
        Constraints::default()
    }

    fn prestage(&mut self, _cluster: &Cluster, files: &[FileRef]) {
        for (f, _) in files {
            self.present.insert(*f);
        }
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.contains(&file),
            "read of a file never written: {file:?}"
        );
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        let n = cluster.node(node);
        OpPlan::one(Stage::lat_leg(
            self.cfg.op_latency,
            FlowLeg::new(size, vec![self.service_out, n.nic_in]).with_cap(self.cfg.stream_bps),
        ))
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        assert!(
            self.present.insert(file),
            "write-once violated for {file:?}"
        );
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        let n = cluster.node(node);
        OpPlan::one(Stage::lat_leg(
            self.cfg.op_latency,
            FlowLeg::new(size, vec![n.nic_out, self.service_in]).with_cap(self.cfg.stream_bps),
        ))
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::ClusterSpec;

    #[test]
    fn ops_pay_wan_latency_and_low_caps() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let mut x = XtreemFs::new(&mut sim, XtreemFsConfig::default());
        let plan = x.plan_write(&c, c.workers()[0], (FileId(0), 1_000_000));
        assert!(plan.stages[0].latency.as_secs_f64() > 0.1);
        assert_eq!(plan.stages[0].legs[0].rate_cap, Some(6.0e6));
        let rplan = x.plan_read(&c, c.workers()[0], (FileId(0), 1_000_000));
        assert!(rplan.stages[0].latency.as_secs_f64() > 0.1);
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_write_panics() {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(1));
        let mut x = XtreemFs::new(&mut sim, XtreemFsConfig::default());
        x.plan_write(&c, c.workers()[0], (FileId(0), 10));
        x.plan_write(&c, c.workers()[0], (FileId(0), 10));
    }
}
