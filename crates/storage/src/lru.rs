//! A byte-budgeted LRU set of files, used for the NFS server page cache
//! and other whole-file caches.

use std::collections::HashMap;
use wfdag::FileId;

/// Tracks which files are resident in a cache of fixed byte capacity,
/// evicting least-recently-used entries when space runs out.
#[derive(Debug, Clone)]
pub struct LruBytes {
    capacity: u64,
    used: u64,
    stamp: u64,
    entries: HashMap<FileId, (u64, u64)>, // file -> (bytes, last-use stamp)
}

impl LruBytes {
    /// A cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruBytes {
            capacity,
            used: 0,
            stamp: 0,
            entries: HashMap::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `file` resident? (Does not touch recency.)
    pub fn contains(&self, file: FileId) -> bool {
        self.entries.contains_key(&file)
    }

    /// Look up `file`, refreshing its recency on a hit.
    pub fn touch(&mut self, file: FileId) -> bool {
        self.stamp += 1;
        if let Some(e) = self.entries.get_mut(&file) {
            e.1 = self.stamp;
            true
        } else {
            false
        }
    }

    /// Insert `file` of `bytes`, evicting LRU entries as needed. Files
    /// larger than the whole cache are not inserted. Returns the evicted
    /// file ids.
    pub fn insert(&mut self, file: FileId, bytes: u64) -> Vec<FileId> {
        self.stamp += 1;
        if let Some(e) = self.entries.get_mut(&file) {
            // Write-once workloads never change a file's size.
            e.1 = self.stamp;
            return Vec::new();
        }
        if bytes > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            // O(n) LRU scan: caches hold at most tens of thousands of
            // entries and evictions are rare at these workload sizes.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(id, (_, st))| (*st, **id))
                .map(|(id, _)| *id)
                .expect("over budget implies non-empty");
            let (vbytes, _) = self.entries.remove(&victim).expect("victim resident");
            self.used -= vbytes;
            evicted.push(victim);
        }
        self.entries.insert(file, (bytes, self.stamp));
        self.used += bytes;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut c = LruBytes::new(100);
        assert!(c.insert(f(1), 40).is_empty());
        assert!(c.contains(f(1)));
        assert!(!c.contains(f(2)));
        assert_eq!(c.used(), 40);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruBytes::new(100);
        c.insert(f(1), 40);
        c.insert(f(2), 40);
        assert!(c.touch(f(1))); // 2 is now LRU
        let evicted = c.insert(f(3), 40);
        assert_eq!(evicted, vec![f(2)]);
        assert!(c.contains(f(1)));
        assert!(c.contains(f(3)));
        assert_eq!(c.used(), 80);
    }

    #[test]
    fn oversized_file_not_cached() {
        let mut c = LruBytes::new(100);
        assert!(c.insert(f(1), 200).is_empty());
        assert!(!c.contains(f(1)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn reinsert_refreshes_without_double_count() {
        let mut c = LruBytes::new(100);
        c.insert(f(1), 60);
        c.insert(f(1), 60);
        assert_eq!(c.used(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_cascades_until_fit() {
        let mut c = LruBytes::new(100);
        c.insert(f(1), 30);
        c.insert(f(2), 30);
        c.insert(f(3), 30);
        let evicted = c.insert(f(4), 90);
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 90);
    }

    #[test]
    fn touch_miss_returns_false() {
        let mut c = LruBytes::new(100);
        assert!(!c.touch(f(9)));
    }
}
