//! Direct node-to-node file transfers — the paper's future work (§VIII):
//! "In the future we plan to investigate configurations in which files
//! can be transferred directly from one computational node to another."
//!
//! There is no shared file system: every output stays on the node that
//! produced it, and before a job starts the workflow management system
//! pulls each missing input straight from a node that holds a copy
//! (producer or any replica created by earlier pulls). Tasks then read
//! and write the local disk. Compared to S3 staging this removes the
//! central service and its request fees; compared to GlusterFS it removes
//! the shared-namespace lookups — at the price of WMS-managed transfers
//! and replica tracking.

use crate::lru::LruBytes;
use crate::op::{FlowLeg, OpPlan, Stage};
use crate::traits::{Constraints, FileRef, StorageOpStats, StorageSystem};
use simcore::SimDuration;
use std::collections::{HashMap, HashSet};
use vcluster::{Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// Tunables for the direct-transfer model.
#[derive(Debug, Clone, Copy)]
pub struct P2pConfig {
    /// Per-transfer setup latency (WMS transfer job + TCP setup).
    pub transfer_latency: SimDuration,
    /// Per-stream transfer throughput, bytes/s.
    pub stream_bps: f64,
    /// Local open latency for task reads/writes.
    pub open_latency: SimDuration,
    /// Fraction of node memory acting as OS page cache.
    pub page_cache_fraction: f64,
}

impl Default for P2pConfig {
    fn default() -> Self {
        P2pConfig {
            transfer_latency: SimDuration::from_nanos(25_000_000), // 25 ms
            stream_bps: 90.0e6,
            open_latency: SimDuration::from_nanos(200_000),
            page_cache_fraction: 0.5,
        }
    }
}

/// The direct node-to-node transfer system.
#[derive(Debug)]
pub struct DirectTransfer {
    cfg: P2pConfig,
    /// Every node currently holding a full copy of each file.
    replicas: HashMap<FileId, HashSet<NodeId>>,
    /// Per-node OS page caches.
    page_caches: Vec<LruBytes>,
    stats: StorageOpStats,
    obs: ObsHandle,
    transfers: u64,
}

impl DirectTransfer {
    /// Build the system over a provisioned cluster.
    pub fn new(cluster: &Cluster, cfg: P2pConfig) -> Self {
        DirectTransfer {
            cfg,
            replicas: HashMap::new(),
            page_caches: cluster
                .nodes()
                .iter()
                .map(|n| LruBytes::new((n.memory_bytes() as f64 * cfg.page_cache_fraction) as u64))
                .collect(),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
            transfers: 0,
        }
    }

    /// Number of node-to-node transfers performed.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    fn holder_for(&self, file: FileId, wanting: NodeId) -> Option<NodeId> {
        let holders = self.replicas.get(&file)?;
        if holders.contains(&wanting) {
            return Some(wanting);
        }
        // Deterministic choice: the lowest-id holder (a real system would
        // load-balance; determinism matters more here).
        holders.iter().min().copied()
    }
}

impl StorageSystem for DirectTransfer {
    fn name(&self) -> &'static str {
        "direct-transfer"
    }

    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn constraints(&self) -> Constraints {
        Constraints::default()
    }

    fn prestage(&mut self, cluster: &Cluster, files: &[FileRef]) {
        // The WMS distributes workflow inputs round-robin, as with NUFA.
        for (i, (f, _)) in files.iter().enumerate() {
            let owner = cluster.workers()[i % cluster.workers().len()];
            self.replicas.entry(*f).or_default().insert(owner);
        }
    }

    fn plan_stage_in(&mut self, cluster: &Cluster, node: NodeId, inputs: &[FileRef]) -> OpPlan {
        let dst = cluster.node(node);
        let mut plan = OpPlan::empty();
        for &(file, size) in inputs {
            let holder = self
                .holder_for(file, node)
                .unwrap_or_else(|| panic!("stage-in of a file with no replica: {file:?}"));
            if holder == node {
                self.stats.cache_hits += 1;
                self.obs.emit(Event::CacheHit { node: node.0 });
                continue;
            }
            self.stats.cache_misses += 1;
            self.obs.emit(Event::CacheMiss { node: node.0 });
            self.obs.emit(Event::StorageOp {
                op: OpKind::StageIn,
                node: node.0,
                bytes: size,
            });
            self.transfers += 1;
            let src = cluster.node(holder);
            // Pull across the network, spill to the local disk.
            let mut path = src.read_path();
            path.extend([src.nic_out, dst.nic_in]);
            plan = plan
                .then(Stage::lat_leg(
                    self.cfg.transfer_latency,
                    FlowLeg::new(size, path).with_cap(self.cfg.stream_bps),
                ))
                .then(Stage::leg(FlowLeg::new(size, dst.write_path())));
            self.replicas.entry(file).or_default().insert(node);
            self.page_caches[node.index()].insert(file, size);
        }
        plan
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        if self.page_caches[node.index()].touch(file) {
            return OpPlan::one(Stage::latency(self.cfg.open_latency));
        }
        self.page_caches[node.index()].insert(file, size);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            FlowLeg::new(size, cluster.node(node).read_path()),
        ))
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        let holders = self.replicas.entry(file).or_default();
        assert!(holders.is_empty(), "write-once violated for {file:?}");
        holders.insert(node);
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        self.page_caches[node.index()].insert(file, size);
        OpPlan::one(Stage::lat_leg(
            self.cfg.open_latency,
            FlowLeg::new(size, cluster.node(node).write_path()),
        ))
    }

    fn local_bytes(&self, _cluster: &Cluster, node: NodeId, files: &[FileRef]) -> u64 {
        files
            .iter()
            .filter(|(f, _)| self.replicas.get(f).is_some_and(|h| h.contains(&node)))
            .map(|(_, s)| *s)
            .sum()
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use vcluster::ClusterSpec;

    fn setup(n: u32) -> (Sim<()>, Cluster, DirectTransfer) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(n));
        let p = DirectTransfer::new(&c, P2pConfig::default());
        (sim, c, p)
    }

    #[test]
    fn stage_in_pulls_from_holder_once() {
        let (_, c, mut p) = setup(2);
        let (w0, w1) = (c.workers()[0], c.workers()[1]);
        p.prestage(&c, &[(FileId(0), 1000)]); // lands on w0
        let plan = p.plan_stage_in(&c, w1, &[(FileId(0), 1000)]);
        assert_eq!(plan.stages.len(), 2, "network pull + local spill");
        assert_eq!(p.transfer_count(), 1);
        // Second stage-in on w1: already replicated there.
        let plan = p.plan_stage_in(&c, w1, &[(FileId(0), 1000)]);
        assert!(plan.is_empty());
        assert_eq!(p.transfer_count(), 1);
        // And w0 never needed a transfer at all.
        let plan = p.plan_stage_in(&c, w0, &[(FileId(0), 1000)]);
        assert!(plan.is_empty());
    }

    #[test]
    fn outputs_stay_local_and_replicate_on_demand() {
        let (_, c, mut p) = setup(4);
        let w2 = c.workers()[2];
        p.plan_write(&c, w2, (FileId(7), 5000));
        assert_eq!(p.local_bytes(&c, w2, &[(FileId(7), 5000)]), 5000);
        // Another node pulls it directly from w2.
        let plan = p.plan_stage_in(&c, c.workers()[0], &[(FileId(7), 5000)]);
        let pull = &plan.stages[0].legs[0];
        let src = c.node(w2);
        assert!(pull.path.contains(&src.nic_out));
        assert_eq!(pull.rate_cap, Some(90.0e6));
    }

    #[test]
    fn reads_hit_the_page_cache_after_staging() {
        let (_, c, mut p) = setup(2);
        let w1 = c.workers()[1];
        p.prestage(&c, &[(FileId(0), 1000)]);
        p.plan_stage_in(&c, w1, &[(FileId(0), 1000)]);
        let read = p.plan_read(&c, w1, (FileId(0), 1000));
        assert!(read.stages[0].legs.is_empty(), "warm read from RAM");
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_write_panics() {
        let (_, c, mut p) = setup(2);
        p.plan_write(&c, c.workers()[0], (FileId(0), 10));
        p.plan_write(&c, c.workers()[1], (FileId(0), 10));
    }

    #[test]
    #[should_panic(expected = "no replica")]
    fn staging_unknown_file_panics() {
        let (_, c, mut p) = setup(2);
        p.plan_stage_in(&c, c.workers()[0], &[(FileId(9), 10)]);
    }
}
