//! The vocabulary storage systems use to describe I/O work.
//!
//! A storage operation (read a file on a node, write a file, stage a file
//! in from S3…) is *planned* by the storage system as an [`OpPlan`]: a
//! sequence of [`Stage`]s, each of which pays a fixed latency (RPC
//! round-trips, request overhead, metadata lookups) and then moves bytes as
//! one or more parallel fluid-flow legs. The workflow engine executes plans
//! against the simulation; the storage system never touches the event loop
//! directly. Metadata side effects (cache contents, file placement) are
//! committed when the plan is made — sound here because the paper's
//! workloads are strictly write-once (§V).

use serde::{Deserialize, Serialize};
use simcore::{FlowSpec, ResourceId, SimDuration};

/// One fluid-flow leg of a stage.
#[derive(Debug, Clone)]
pub struct FlowLeg {
    /// Bytes to move.
    pub bytes: u64,
    /// Resources crossed (disks, NICs, backend services).
    pub path: Vec<ResourceId>,
    /// Optional per-flow cap in bytes/s (first-write penalty, per-stream
    /// protocol limits).
    pub rate_cap: Option<f64>,
}

impl FlowLeg {
    /// A leg with no per-flow cap.
    pub fn new(bytes: u64, path: Vec<ResourceId>) -> Self {
        FlowLeg {
            bytes,
            path,
            rate_cap: None,
        }
    }

    /// Apply a per-flow rate cap.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }

    /// Apply an *optional* per-flow rate cap.
    pub fn with_cap_opt(mut self, cap: Option<f64>) -> Self {
        self.rate_cap = cap;
        self
    }

    /// Convert to a [`FlowSpec`] for the simulator.
    pub fn to_spec(&self) -> FlowSpec {
        FlowSpec {
            bytes: self.bytes,
            path: self.path.clone(),
            rate_cap: self.rate_cap,
        }
    }
}

/// A latency followed by parallel flow legs. The stage completes when every
/// leg has completed.
#[derive(Debug, Clone, Default)]
pub struct Stage {
    /// Fixed delay before the legs start (request/RPC/metadata overhead).
    pub latency: SimDuration,
    /// Parallel transfers.
    pub legs: Vec<FlowLeg>,
}

impl Stage {
    /// A latency-only stage.
    pub fn latency(d: SimDuration) -> Self {
        Stage {
            latency: d,
            legs: Vec::new(),
        }
    }

    /// A stage with one leg and no latency.
    pub fn leg(leg: FlowLeg) -> Self {
        Stage {
            latency: SimDuration::ZERO,
            legs: vec![leg],
        }
    }

    /// A stage with latency followed by one leg.
    pub fn lat_leg(d: SimDuration, leg: FlowLeg) -> Self {
        Stage {
            latency: d,
            legs: vec![leg],
        }
    }

    /// Total bytes moved by this stage.
    pub fn bytes(&self) -> u64 {
        self.legs.iter().map(|l| l.bytes).sum()
    }
}

/// Bookkeeping messages a background stage can deliver back to the storage
/// system when it completes (see
/// [`StorageSystem::on_background_done`](crate::traits::StorageSystem::on_background_done)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Note {
    /// An NFS write-back flush of `bytes` reached the server disk.
    NfsFlushed {
        /// Bytes flushed.
        bytes: u64,
    },
}

/// The full plan for one storage operation.
#[derive(Debug, Clone, Default)]
pub struct OpPlan {
    /// Foreground stages, executed in order; the operation completes when
    /// the last stage does.
    pub stages: Vec<Stage>,
    /// Background stages (e.g. NFS write-back flushes): started alongside
    /// the first foreground stage, not awaited.
    pub background: Vec<(Stage, Option<Note>)>,
}

impl OpPlan {
    /// A plan that completes instantly (e.g. a cache hit with negligible
    /// cost, or a no-op stage-in).
    pub fn empty() -> Self {
        OpPlan::default()
    }

    /// A single-stage plan.
    pub fn one(stage: Stage) -> Self {
        OpPlan {
            stages: vec![stage],
            background: Vec::new(),
        }
    }

    /// Append a foreground stage.
    pub fn then(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Attach a background stage with an optional completion note.
    pub fn with_background(mut self, stage: Stage, note: Option<Note>) -> Self {
        self.background.push((stage, note));
        self
    }

    /// Total foreground bytes.
    pub fn foreground_bytes(&self) -> u64 {
        self.stages.iter().map(Stage::bytes).sum()
    }

    /// Total fixed latency across foreground stages.
    pub fn total_latency(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.latency)
    }

    /// True when the plan does nothing.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.background.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;

    #[test]
    fn leg_to_spec_round_trip() {
        let mut sim: Sim<()> = Sim::new();
        let r = sim.add_resource("r", 100.0);
        let leg = FlowLeg::new(500, vec![r]).with_cap(50.0);
        let spec = leg.to_spec();
        assert_eq!(spec.bytes, 500);
        assert_eq!(spec.path, vec![r]);
        assert_eq!(spec.rate_cap, Some(50.0));
    }

    #[test]
    fn plan_accounting() {
        let mut sim: Sim<()> = Sim::new();
        let r = sim.add_resource("r", 100.0);
        let plan = OpPlan::one(Stage::lat_leg(
            SimDuration::from_millis(2),
            FlowLeg::new(100, vec![r]),
        ))
        .then(Stage::lat_leg(
            SimDuration::from_millis(3),
            FlowLeg::new(200, vec![r]),
        ));
        assert_eq!(plan.foreground_bytes(), 300);
        assert_eq!(plan.total_latency(), SimDuration::from_millis(5));
        assert!(!plan.is_empty());
        assert!(OpPlan::empty().is_empty());
    }

    #[test]
    fn stage_bytes_sums_parallel_legs() {
        let mut sim: Sim<()> = Sim::new();
        let r = sim.add_resource("r", 100.0);
        let stage = Stage {
            latency: SimDuration::ZERO,
            legs: vec![FlowLeg::new(10, vec![r]), FlowLeg::new(20, vec![r])],
        };
        assert_eq!(stage.bytes(), 30);
    }

    #[test]
    fn background_notes_attach() {
        let plan = OpPlan::empty().with_background(
            Stage::latency(SimDuration::from_millis(1)),
            Some(Note::NfsFlushed { bytes: 42 }),
        );
        assert_eq!(plan.background.len(), 1);
        assert_eq!(plan.background[0].1, Some(Note::NfsFlushed { bytes: 42 }));
    }
}
