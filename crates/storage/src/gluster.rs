//! GlusterFS in the two configurations of §IV.C.
//!
//! In both modes every node is client *and* server: each worker exports
//! its local RAID volume and the volumes are merged into one namespace.
//!
//! * **NUFA** (non-uniform file access): writes to new files always go to
//!   the local disk; reads go wherever the file was created. Because the
//!   workloads are write-once, *every* write is local — which gives the
//!   pipeline-structured Broadband transformations excellent locality
//!   (§V.C).
//! * **distribute**: files are placed by hashing the file name, spreading
//!   reads and writes uniformly across the virtual cluster.

use crate::op::{FlowLeg, OpPlan, Stage};
use crate::traits::{Constraints, FailoverResponse, FileRef, StorageOpStats, StorageSystem};
use simcore::SimDuration;
use std::collections::HashMap;
use vcluster::{net_path, Cluster, NodeId};
use wfdag::FileId;
use wfobs::{Event, ObsHandle, OpKind};

/// GlusterFS translator configuration (§IV.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlusterMode {
    /// Writes local, reads from the creating node.
    Nufa,
    /// Placement by file-name hash.
    Distribute,
}

/// Tunables for the GlusterFS model.
#[derive(Debug, Clone, Copy)]
pub struct GlusterConfig {
    /// Mode: NUFA or distribute.
    pub mode: GlusterMode,
    /// Per-operation lookup latency for data on the local volume.
    pub local_latency: SimDuration,
    /// Per-operation lookup latency when another node's volume is
    /// involved (FUSE + one network round trip).
    pub remote_latency: SimDuration,
    /// Per-stream throughput through the FUSE client for local-volume
    /// data, bytes/s.
    pub local_stream_bps: f64,
    /// Per-stream throughput for remote-volume data, bytes/s — GlusterFS
    /// over 1 GbE was well known to deliver well below line rate per
    /// stream.
    pub remote_stream_bps: f64,
}

impl GlusterConfig {
    /// Defaults for the given mode.
    pub fn new(mode: GlusterMode) -> Self {
        GlusterConfig {
            mode,
            local_latency: SimDuration::from_nanos(600_000), // 0.6 ms
            remote_latency: SimDuration::from_nanos(1_800_000), // 1.8 ms
            local_stream_bps: 160.0e6,
            remote_stream_bps: 30.0e6,
        }
    }
}

/// The GlusterFS storage system.
#[derive(Debug)]
pub struct Gluster {
    cfg: GlusterConfig,
    /// Where each file's data lives.
    placement: HashMap<FileId, NodeId>,
    stats: StorageOpStats,
    obs: ObsHandle,
    /// Reads served without crossing the network.
    local_reads: u64,
    /// Reads that crossed the network.
    remote_reads: u64,
}

impl Gluster {
    /// Build a GlusterFS volume over the cluster's workers.
    pub fn new(cfg: GlusterConfig) -> Self {
        Gluster {
            cfg,
            placement: HashMap::new(),
            stats: StorageOpStats::default(),
            obs: ObsHandle::disabled(),
            local_reads: 0,
            remote_reads: 0,
        }
    }

    /// (local, remote) read counters — NUFA's Broadband advantage shows up
    /// here.
    pub fn read_locality(&self) -> (u64, u64) {
        (self.local_reads, self.remote_reads)
    }

    /// The distribute-mode hash: deterministic placement by file id (the
    /// real system hashes the file name; ids are stable name surrogates).
    fn hash_owner(&self, file: FileId, cluster: &Cluster) -> NodeId {
        let workers = cluster.workers();
        // Fibonacci hashing for a uniform spread of consecutive ids.
        let h = (u64::from(file.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        workers[(h >> 32) as usize % workers.len()]
    }
}

impl StorageSystem for Gluster {
    fn attach_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn name(&self) -> &'static str {
        match self.cfg.mode {
            GlusterMode::Nufa => "glusterfs-nufa",
            GlusterMode::Distribute => "glusterfs-distribute",
        }
    }

    fn constraints(&self) -> Constraints {
        // §V: "the GlusterFS and PVFS configurations used require at least
        // two nodes to construct a valid file system".
        Constraints {
            min_workers: 2,
            max_workers: None,
            needs_server: false,
        }
    }

    fn prestage(&mut self, cluster: &Cluster, files: &[FileRef]) {
        // Input data is copied into the merged namespace before the run:
        // distribute hashes it; NUFA lands it round-robin (the staging
        // client writes from each node in turn).
        for (i, (f, _)) in files.iter().enumerate() {
            let owner = match self.cfg.mode {
                GlusterMode::Distribute => self.hash_owner(*f, cluster),
                GlusterMode::Nufa => {
                    let workers = cluster.workers();
                    workers[i % workers.len()]
                }
            };
            self.placement.insert(*f, owner);
        }
    }

    fn plan_read(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        let owner = *self
            .placement
            .get(&file)
            .unwrap_or_else(|| panic!("read of a file never written: {file:?}"));
        self.stats.reads += 1;
        self.stats.bytes_read += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Read,
            node: node.0,
            bytes: size,
        });
        let owner_node = cluster.node(owner);
        let reader = cluster.node(node);
        if owner == node {
            self.local_reads += 1;
            OpPlan::one(Stage::lat_leg(
                self.cfg.local_latency,
                FlowLeg::new(size, owner_node.read_path()).with_cap(self.cfg.local_stream_bps),
            ))
        } else {
            self.remote_reads += 1;
            let mut path = owner_node.read_path();
            path.extend(net_path(owner_node, reader));
            OpPlan::one(Stage::lat_leg(
                self.cfg.remote_latency,
                FlowLeg::new(size, path).with_cap(self.cfg.remote_stream_bps),
            ))
        }
    }

    fn plan_write(&mut self, cluster: &Cluster, node: NodeId, (file, size): FileRef) -> OpPlan {
        let owner = match self.cfg.mode {
            GlusterMode::Nufa => node,
            GlusterMode::Distribute => self.hash_owner(file, cluster),
        };
        let prev = self.placement.insert(file, owner);
        assert!(prev.is_none(), "write-once violated for {file:?}");
        self.stats.writes += 1;
        self.stats.bytes_written += size;
        self.obs.emit(Event::StorageOp {
            op: OpKind::Write,
            node: node.0,
            bytes: size,
        });
        let owner_node = cluster.node(owner);
        let writer = cluster.node(node);
        if owner == node {
            OpPlan::one(Stage::lat_leg(
                self.cfg.local_latency,
                FlowLeg::new(size, owner_node.write_path()).with_cap(self.cfg.local_stream_bps),
            ))
        } else {
            let mut path = net_path(writer, owner_node);
            path.extend(owner_node.write_path());
            OpPlan::one(Stage::lat_leg(
                self.cfg.remote_latency,
                FlowLeg::new(size, path).with_cap(self.cfg.remote_stream_bps),
            ))
        }
    }

    fn on_node_failed(&mut self, _cluster: &Cluster, node: NodeId) -> FailoverResponse {
        // The brick restarts with an empty volume: every file whose only
        // copy lived there is gone (neither mode replicates). Sorted for
        // determinism — HashMap iteration order is not.
        let mut lost: Vec<FileId> = self
            .placement
            .iter()
            .filter(|(_, &owner)| owner == node)
            .map(|(&f, _)| f)
            .collect();
        lost.sort_unstable_by_key(|f| f.0);
        for f in &lost {
            self.placement.remove(f);
        }
        FailoverResponse::LostFiles(lost)
    }

    fn missing_files(&self, files: &[FileRef]) -> Vec<FileId> {
        files
            .iter()
            .filter(|(f, _)| !self.placement.contains_key(f))
            .map(|(f, _)| *f)
            .collect()
    }

    fn local_bytes(&self, _cluster: &Cluster, node: NodeId, files: &[FileRef]) -> u64 {
        files
            .iter()
            .filter(|(f, _)| self.placement.get(f) == Some(&node))
            .map(|(_, s)| *s)
            .sum()
    }

    fn op_stats(&self) -> StorageOpStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Sim;
    use vcluster::ClusterSpec;

    fn cluster(n: u32) -> (Sim<()>, Cluster) {
        let mut sim: Sim<()> = Sim::new();
        let c = Cluster::provision(&mut sim, &ClusterSpec::workers_only(n));
        (sim, c)
    }

    #[test]
    fn nufa_writes_are_always_local() {
        let (_, c) = cluster(4);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        for (i, &w) in c.workers().iter().enumerate() {
            let plan = g.plan_write(&c, w, (FileId(i as u32), 1000));
            let node = c.node(w);
            assert_eq!(plan.stages[0].legs[0].path, node.write_path(), "worker {i}");
            assert_eq!(plan.stages[0].legs[0].path.len(), 3);
        }
    }

    #[test]
    fn nufa_read_from_creator_is_local() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        let w0 = c.workers()[0];
        let w1 = c.workers()[1];
        g.plan_write(&c, w0, (FileId(0), 1000));
        let local = g.plan_read(&c, w0, (FileId(0), 1000));
        assert_eq!(local.stages[0].legs[0].path.len(), 2, "spindle + read");
        let remote = g.plan_read(&c, w1, (FileId(0), 1000));
        assert_eq!(
            remote.stages[0].legs[0].path.len(),
            4,
            "disk (2) + two NICs"
        );
        assert_eq!(g.read_locality(), (1, 1));
    }

    #[test]
    fn distribute_spreads_files_roughly_uniformly() {
        let (_, c) = cluster(4);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Distribute));
        let mut counts = std::collections::HashMap::new();
        for i in 0..1000u32 {
            let plan = g.plan_write(&c, c.workers()[0], (FileId(i), 10));
            assert!(!plan.stages.is_empty());
            let owner = g.placement[&FileId(i)];
            *counts.entry(owner).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4, "all nodes used");
        for (&node, &n) in &counts {
            assert!((150..=350).contains(&n), "node {node:?} got {n}/1000");
        }
    }

    #[test]
    fn distribute_remote_write_crosses_network() {
        let (_, c) = cluster(4);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Distribute));
        // Find a file hashed to a different node than workers[0].
        let w0 = c.workers()[0];
        let fid = (0..100u32)
            .map(FileId)
            .find(|f| g.hash_owner(*f, &c) != w0)
            .expect("some file hashes elsewhere");
        let plan = g.plan_write(&c, w0, (fid, 1000));
        assert!(
            plan.stages[0].legs[0].path.len() >= 5,
            "NICs + remote write path"
        );
    }

    #[test]
    fn prestage_nufa_round_robins() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        g.prestage(&c, &[(FileId(0), 1), (FileId(1), 1), (FileId(2), 1)]);
        assert_eq!(g.placement[&FileId(0)], c.workers()[0]);
        assert_eq!(g.placement[&FileId(1)], c.workers()[1]);
        assert_eq!(g.placement[&FileId(2)], c.workers()[0]);
    }

    #[test]
    fn local_bytes_reflects_placement() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        let w0 = c.workers()[0];
        g.plan_write(&c, w0, (FileId(0), 500));
        assert_eq!(g.local_bytes(&c, w0, &[(FileId(0), 500)]), 500);
        assert_eq!(g.local_bytes(&c, c.workers()[1], &[(FileId(0), 500)]), 0);
    }

    #[test]
    fn dead_brick_loses_exactly_its_files() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        let (w0, w1) = (c.workers()[0], c.workers()[1]);
        g.plan_write(&c, w0, (FileId(0), 100));
        g.plan_write(&c, w1, (FileId(1), 100));
        g.plan_write(&c, w0, (FileId(2), 100));
        let resp = g.on_node_failed(&c, w0);
        assert_eq!(
            resp,
            FailoverResponse::LostFiles(vec![FileId(0), FileId(2)])
        );
        let refs = [(FileId(0), 100), (FileId(1), 100), (FileId(2), 100)];
        assert_eq!(g.missing_files(&refs), vec![FileId(0), FileId(2)]);
        // The surviving brick still serves its file.
        let plan = g.plan_read(&c, w1, (FileId(1), 100));
        assert!(!plan.stages.is_empty());
    }

    #[test]
    fn lost_files_may_be_rewritten() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Distribute));
        let w0 = c.workers()[0];
        g.plan_write(&c, w0, (FileId(0), 100));
        let owner = g.placement[&FileId(0)];
        g.on_node_failed(&c, owner);
        // Re-creating the lost file is not a write-once violation.
        g.plan_write(&c, w0, (FileId(0), 100));
        assert!(g.missing_files(&[(FileId(0), 100)]).is_empty());
    }

    #[test]
    #[should_panic(expected = "write-once")]
    fn double_write_panics() {
        let (_, c) = cluster(2);
        let mut g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        g.plan_write(&c, c.workers()[0], (FileId(0), 10));
        g.plan_write(&c, c.workers()[1], (FileId(0), 10));
    }

    #[test]
    fn requires_two_workers() {
        let g = Gluster::new(GlusterConfig::new(GlusterMode::Nufa));
        assert_eq!(g.constraints().min_workers, 2);
    }
}
