//! Property tests for the byte-budgeted LRU cache.

use proptest::prelude::*;
use wfdag::FileId;
use wfstorage::LruBytes;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Touch(u32),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..40, 1u64..5000).prop_map(|(f, b)| Op::Insert(f, b)),
            (0u32..40).prop_map(Op::Touch),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache never exceeds its byte budget, usage matches the
    /// resident set, and evicted entries are really gone.
    #[test]
    fn budget_and_accounting_hold(capacity in 1000u64..20_000, ops in ops()) {
        let mut cache = LruBytes::new(capacity);
        let mut model: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Insert(f, b) => {
                    let evicted = cache.insert(FileId(f), b);
                    for e in evicted {
                        prop_assert!(model.remove(&e.0).is_some(), "evicted something not resident");
                    }
                    if b <= capacity {
                        model.entry(f).or_insert(b);
                    }
                }
                Op::Touch(f) => {
                    let hit = cache.touch(FileId(f));
                    prop_assert_eq!(hit, model.contains_key(&f));
                }
            }
            prop_assert!(cache.used() <= capacity, "{} > {capacity}", cache.used());
            let model_bytes: u64 = model.values().sum();
            prop_assert_eq!(cache.used(), model_bytes);
            prop_assert_eq!(cache.len(), model.len());
        }
    }

    /// Entries touched most recently survive a squeeze.
    #[test]
    fn recency_is_respected(n in 3usize..20) {
        let per = 100u64;
        let mut cache = LruBytes::new(per * n as u64);
        for i in 0..n {
            cache.insert(FileId(i as u32), per);
        }
        // Refresh the first entry, then overflow by one: the *second*
        // entry (now the LRU) must be the victim.
        cache.touch(FileId(0));
        let evicted = cache.insert(FileId(999), per);
        prop_assert_eq!(evicted, vec![FileId(1)]);
        prop_assert!(cache.contains(FileId(0)));
    }
}
