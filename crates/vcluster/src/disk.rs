//! Ephemeral-disk model, including the EC2 first-write penalty.
//!
//! Section III.C of the paper measures EC2 ephemeral disks at ~20 MB/s for
//! the *first* write to a region (an artifact of Amazon's disk
//! virtualisation), ~100 MB/s for subsequent writes, and ~110 MB/s reads.
//! A 4-disk software RAID 0 array reaches 80–100 MB/s first writes,
//! 350–400 MB/s rewrites, and ~310 MB/s reads.
//!
//! The simulator models a disk (or array) as two shared resources — one for
//! reads, one for writes — whose capacities are the *device* limits, plus a
//! per-flow rate cap equal to the first-write bandwidth applied to every
//! write of fresh data on an uninitialised device. Workflow workloads are
//! write-once (§V), so in practice every data write pays the penalty unless
//! the disk was pre-initialised (the mitigation Amazon suggests and the
//! paper rejects as uneconomical — our ablation A1 quantifies it).

use serde::{Deserialize, Serialize};

/// One megabyte per second, in bytes/second.
pub const MBPS: f64 = 1e6;

/// Bandwidth profile of a block device (a single ephemeral disk or a RAID 0
/// array of them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Peak sequential read bandwidth, bytes/s.
    pub read_bps: f64,
    /// Sustained write bandwidth to previously written regions, bytes/s.
    pub rewrite_bps: f64,
    /// Write bandwidth to fresh regions (the first-write penalty), bytes/s.
    pub first_write_bps: f64,
    /// Aggregate device bandwidth shared by reads *and* writes (disks are
    /// half-duplex: a mixed workload cannot sum the pure-read and
    /// pure-write rates). Always ≥ max(read, rewrite) so single-direction
    /// microbenchmarks still see the advertised numbers.
    pub spindle_bps: f64,
    /// True when the device was zero-filled before use, removing the
    /// first-write penalty.
    pub initialized: bool,
}

impl DiskProfile {
    /// A single EC2 ephemeral disk as measured in §III.C.
    pub const fn ec2_ephemeral() -> Self {
        DiskProfile {
            read_bps: 110.0 * MBPS,
            rewrite_bps: 100.0 * MBPS,
            first_write_bps: 20.0 * MBPS,
            spindle_bps: (110.0 + 100.0) * 0.55 * MBPS,
            initialized: false,
        }
    }

    /// An idealised local disk with no virtualisation penalty (used to
    /// model non-EC2 platforms in ablations).
    pub const fn ideal(read_bps: f64, write_bps: f64) -> Self {
        DiskProfile {
            read_bps,
            rewrite_bps: write_bps,
            first_write_bps: write_bps,
            // 55 % of the directional sum: a pure read or pure write
            // stream still reaches the advertised directional rate, but a
            // mixed read+write workload seeks away a large part of the
            // sequential bandwidth, as 2010 spinning disks did.
            spindle_bps: (read_bps + write_bps) * 0.55,
            initialized: true,
        }
    }

    /// The profile after zero-filling the device (ablation A1): first
    /// writes run at the rewrite bandwidth.
    pub fn initialized(mut self) -> Self {
        self.initialized = true;
        self
    }

    /// Per-flow cap to apply to a write of fresh data, if any.
    ///
    /// `None` means the write is only constrained by the shared write
    /// resource (i.e. the device is initialised or being rewritten).
    pub fn first_write_cap(&self) -> Option<f64> {
        if self.initialized {
            None
        } else {
            Some(self.first_write_bps)
        }
    }

    /// Combine `n` identical disks into a software RAID 0 array.
    ///
    /// Striping efficiency is below 1.0 in practice; the defaults are
    /// chosen so a 4-disk array of EC2 ephemeral disks lands inside the
    /// ranges the paper reports (§III.C): reads ≈ 310 MB/s, rewrites
    /// ≈ 375 MB/s, first writes ≈ 90 MB/s.
    pub fn raid0(self, n: u32, eff: RaidEfficiency) -> Self {
        assert!(n >= 1, "RAID 0 needs at least one disk");
        let n = f64::from(n);
        let read_bps = self.read_bps * n * eff.read;
        let rewrite_bps = self.rewrite_bps * n * eff.write;
        DiskProfile {
            read_bps,
            rewrite_bps,
            first_write_bps: self.first_write_bps * n * eff.first_write,
            spindle_bps: (read_bps + rewrite_bps) * 0.55,
            initialized: self.initialized,
        }
    }

    /// The stock worker-node storage of the paper: 4 ephemeral disks in
    /// RAID 0 on a `c1.xlarge`.
    pub fn ec2_raid0_x4() -> Self {
        DiskProfile::ec2_ephemeral().raid0(4, RaidEfficiency::default())
    }
}

/// Striping efficiency factors for RAID 0 aggregation (fraction of the
/// ideal `n ×` scaling actually achieved per operation class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaidEfficiency {
    /// Read scaling efficiency.
    pub read: f64,
    /// Rewrite scaling efficiency.
    pub write: f64,
    /// First-write scaling efficiency.
    pub first_write: f64,
}

impl Default for RaidEfficiency {
    /// Calibrated against §III.C: 4 × 110 × 0.70 ≈ 308 MB/s reads,
    /// 4 × 100 × 0.94 ≈ 376 MB/s rewrites, 4 × 20 × 1.00 = 80 MB/s first
    /// writes — the paper reports 80-100 MB/s for the 4-disk array.
    fn default() -> Self {
        RaidEfficiency {
            read: 0.70,
            write: 0.94,
            first_write: 1.00,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ephemeral_matches_paper() {
        let d = DiskProfile::ec2_ephemeral();
        assert_eq!(d.read_bps, 110.0 * MBPS);
        assert_eq!(d.rewrite_bps, 100.0 * MBPS);
        assert_eq!(d.first_write_bps, 20.0 * MBPS);
        assert_eq!(d.first_write_cap(), Some(20.0 * MBPS));
    }

    #[test]
    fn raid0_x4_lands_in_paper_ranges() {
        let r = DiskProfile::ec2_raid0_x4();
        // §III.C: reads ~310, rewrites 350-400, first writes 80-100 MB/s.
        assert!(
            (300.0 * MBPS..=320.0 * MBPS).contains(&r.read_bps),
            "{}",
            r.read_bps
        );
        assert!(
            (350.0 * MBPS..=400.0 * MBPS).contains(&r.rewrite_bps),
            "{}",
            r.rewrite_bps
        );
        assert!(
            (80.0 * MBPS..=100.0 * MBPS).contains(&r.first_write_bps),
            "{}",
            r.first_write_bps
        );
    }

    #[test]
    fn initialization_removes_first_write_cap() {
        let d = DiskProfile::ec2_ephemeral().initialized();
        assert_eq!(d.first_write_cap(), None);
        assert!(d.initialized);
    }

    #[test]
    fn raid_preserves_initialization_flag() {
        let d = DiskProfile::ec2_ephemeral()
            .initialized()
            .raid0(4, RaidEfficiency::default());
        assert!(d.initialized);
        assert_eq!(d.first_write_cap(), None);
    }

    #[test]
    fn ideal_disk_has_no_penalty() {
        let d = DiskProfile::ideal(200.0 * MBPS, 150.0 * MBPS);
        assert_eq!(d.first_write_cap(), None);
        assert_eq!(d.rewrite_bps, d.first_write_bps);
    }

    #[test]
    fn raid0_of_one_disk_scales_by_efficiency_only() {
        let eff = RaidEfficiency {
            read: 1.0,
            write: 1.0,
            first_write: 1.0,
        };
        let d = DiskProfile::ec2_ephemeral().raid0(1, eff);
        assert_eq!(d, DiskProfile::ec2_ephemeral());
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn raid0_of_zero_disks_panics() {
        let _ = DiskProfile::ec2_ephemeral().raid0(0, RaidEfficiency::default());
    }
}
