//! Amazon EC2 instance-type catalog, with the 2010-era attributes and
//! prices the paper used.

use crate::disk::{DiskProfile, RaidEfficiency, MBPS};
use serde::{Deserialize, Serialize};

/// One gibibyte in bytes.
pub const GIB: u64 = 1 << 30;

/// EC2 instance types that appear in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceType {
    /// Worker node of every experiment: 8 cores (2 × quad 2.33–2.66 GHz
    /// Xeon), 7 GB RAM, 4 ephemeral disks, $0.68/h.
    C1Xlarge,
    /// The dedicated NFS server: best NFS performance of the catalog
    /// thanks to 16 GB of RAM for the page cache (§IV.B). $0.68/h.
    M1Xlarge,
    /// The beefier NFS server tried in §V.C: 64 GB RAM, 8 cores, $2.40/h.
    M24Xlarge,
    /// Small instance, included for completeness of the catalog.
    M1Small,
}

impl InstanceType {
    /// All catalog entries.
    pub const ALL: [InstanceType; 4] = [
        InstanceType::C1Xlarge,
        InstanceType::M1Xlarge,
        InstanceType::M24Xlarge,
        InstanceType::M1Small,
    ];

    /// The API name Amazon uses.
    pub fn api_name(self) -> &'static str {
        match self {
            InstanceType::C1Xlarge => "c1.xlarge",
            InstanceType::M1Xlarge => "m1.xlarge",
            InstanceType::M24Xlarge => "m2.4xlarge",
            InstanceType::M1Small => "m1.small",
        }
    }

    /// Parse an Amazon API name back into a catalog entry (the inverse of
    /// [`api_name`](Self::api_name)); `None` for names outside the catalog.
    pub fn from_api_name(name: &str) -> Option<InstanceType> {
        InstanceType::ALL.into_iter().find(|t| t.api_name() == name)
    }

    /// Number of physical cores (Condor slots) exposed.
    pub fn cores(self) -> u32 {
        match self {
            InstanceType::C1Xlarge => 8,
            InstanceType::M1Xlarge => 4,
            InstanceType::M24Xlarge => 8,
            InstanceType::M1Small => 1,
        }
    }

    /// Physical memory in bytes.
    pub fn memory_bytes(self) -> u64 {
        match self {
            InstanceType::C1Xlarge => 7 * GIB,
            InstanceType::M1Xlarge => 16 * GIB,
            InstanceType::M24Xlarge => 64 * GIB,
            InstanceType::M1Small => (17 * GIB) / 10, // 1.7 GB
        }
    }

    /// Relative per-core speed (c1.xlarge ≡ 1.0). The m1 family had slower
    /// cores; this only matters if compute jobs run on a server node.
    pub fn core_speed(self) -> f64 {
        match self {
            InstanceType::C1Xlarge => 1.0,
            InstanceType::M1Xlarge => 0.8,
            InstanceType::M24Xlarge => 1.1,
            InstanceType::M1Small => 0.4,
        }
    }

    /// NIC bandwidth per direction, bytes/s (EC2 2010: ~1 Gbps for large
    /// types, less for m1.small).
    pub fn nic_bps(self) -> f64 {
        match self {
            InstanceType::M1Small => 31.25 * MBPS, // 250 Mbps
            _ => 125.0 * MBPS,                     // 1 Gbps
        }
    }

    /// Number of ephemeral disks.
    pub fn ephemeral_disks(self) -> u32 {
        match self {
            InstanceType::C1Xlarge | InstanceType::M1Xlarge => 4,
            InstanceType::M24Xlarge => 2,
            InstanceType::M1Small => 1,
        }
    }

    /// Hourly on-demand price in US cents (us-east-1, 2010).
    pub fn price_cents_per_hour(self) -> u32 {
        match self {
            InstanceType::C1Xlarge => 68,
            InstanceType::M1Xlarge => 68,
            InstanceType::M24Xlarge => 240,
            InstanceType::M1Small => 9,
        }
    }

    /// Typical hourly *spot* price in US cents (us-east-1, 2010). Spot
    /// capacity traded at roughly 35–40 % of on-demand back then; the
    /// discount is what makes riding out terminations attractive.
    pub fn spot_price_cents_per_hour(self) -> u32 {
        match self {
            InstanceType::C1Xlarge | InstanceType::M1Xlarge => 26,
            InstanceType::M24Xlarge => 92,
            InstanceType::M1Small => 4,
        }
    }

    /// The node's storage device: all ephemeral disks in software RAID 0
    /// (§III.C), uninitialised by default.
    pub fn raid0_profile(self) -> DiskProfile {
        DiskProfile::ec2_ephemeral().raid0(self.ephemeral_disks(), RaidEfficiency::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_xlarge_matches_paper() {
        let t = InstanceType::C1Xlarge;
        assert_eq!(t.cores(), 8);
        assert_eq!(t.memory_bytes(), 7 * GIB);
        assert_eq!(t.ephemeral_disks(), 4);
        assert_eq!(t.price_cents_per_hour(), 68);
        assert_eq!(t.api_name(), "c1.xlarge");
    }

    #[test]
    fn m1_xlarge_has_16_gb_for_nfs_cache() {
        // §IV.B: "m1.xlarge has a comparatively large amount of memory
        // (16GB), which facilitates good cache performance".
        assert_eq!(InstanceType::M1Xlarge.memory_bytes(), 16 * GIB);
        assert_eq!(InstanceType::M1Xlarge.price_cents_per_hour(), 68);
    }

    #[test]
    fn m2_4xlarge_matches_section_v_c() {
        // §V.C: "a different NFS server (m2.4xlarge, 64 GB memory, 8 cores)".
        let t = InstanceType::M24Xlarge;
        assert_eq!(t.memory_bytes(), 64 * GIB);
        assert_eq!(t.cores(), 8);
        assert_eq!(t.price_cents_per_hour(), 240);
    }

    #[test]
    fn worker_raid_is_four_disks() {
        let p = InstanceType::C1Xlarge.raid0_profile();
        assert!(p.first_write_cap().is_some());
        assert!(p.read_bps > 300.0 * MBPS);
    }

    #[test]
    fn spot_prices_discount_on_demand() {
        for t in InstanceType::ALL {
            let spot = t.spot_price_cents_per_hour();
            let demand = t.price_cents_per_hour();
            assert!(spot < demand, "{t:?}: spot {spot} >= on-demand {demand}");
            let ratio = f64::from(spot) / f64::from(demand);
            assert!((0.3..0.5).contains(&ratio), "{t:?}: ratio {ratio}");
        }
    }

    #[test]
    fn api_names_round_trip() {
        for t in InstanceType::ALL {
            assert_eq!(InstanceType::from_api_name(t.api_name()), Some(t));
        }
        assert_eq!(InstanceType::from_api_name("t2.micro"), None);
    }

    #[test]
    fn catalog_is_distinct() {
        let names: Vec<_> = InstanceType::ALL.iter().map(|t| t.api_name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
